//! Failure injection: drive the probabilistic machinery into its error
//! regime on purpose and verify the reported guarantees stay honest.

use psc::core::{CoverAnswer, SubsumptionChecker};
use psc::model::{Range, Schema, Subscription};
use psc::workload::{seeded_rng, ExtremeNonCoverScenario};

/// A needle-in-a-haystack instance: the whole space covered except a single
/// point out of 10^8 — practically undetectable by sampling.
fn needle_instance() -> (Subscription, Vec<Subscription>) {
    let schema = Schema::uniform(2, 0, 9_999);
    let s = Subscription::whole_space(&schema);
    // Cover everything except the point (7777, 7777).
    let mk =
        |r0: Range, r1: Range| Subscription::from_ranges(&schema, vec![r0, r1]).expect("in domain");
    let full = Range::new(0, 9_999).unwrap();
    let set = vec![
        mk(Range::new(0, 7_776).unwrap(), full),
        mk(Range::new(7_778, 9_999).unwrap(), full),
        mk(full, Range::new(0, 7_776).unwrap()),
        mk(full, Range::new(7_778, 9_999).unwrap()),
    ];
    (s, set)
}

#[test]
fn bare_rspc_on_needle_documents_estimate_unsoundness() {
    let (s, set) = needle_instance();
    // Bare RSPC cannot find 1 point in 10^8 within its budget, so it
    // answers YES — wrongly. Notably, Algorithm 2's witness estimate is
    // *heuristic*: it multiplies per-attribute minimal strip widths
    // (2223 × 2223 here ⇒ ρ̂w ≈ 0.049) even though no actual witness box of
    // that size exists — the strips barely intersect in one point. The
    // reported bound (≈ the requested δ) is therefore overconfident on this
    // adversarial geometry. This is faithful to the paper ("the probability
    // of error is problem specific"); the full pipeline's MCS stage is what
    // rescues exactly these instances (see the next test).
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-10)
        .max_iterations(1_000)
        .pairwise_fast_path(false)
        .corollary3_fast_path(false)
        .mcs(false)
        .prefilter_disjoint(false)
        .build();
    let mut rng = seeded_rng(1);
    let d = checker.check(&s, &set, &mut rng);
    match d.answer {
        CoverAnswer::Covered { error_bound } => {
            assert!(!d.is_deterministic());
            // ρ̂w ≈ 0.049 ⇒ theoretical d ≈ 460 < cap ⇒ reported bound ≈ δ.
            assert!(
                error_bound <= 1e-9,
                "estimate regime changed: {error_bound}"
            );
            assert!(
                d.stats.rho_w > 0.01,
                "the overconfident estimate is the point of this test: {}",
                d.stats.rho_w
            );
        }
        CoverAnswer::NotCovered { witness } => {
            // Astronomically unlikely (hitting 1 point in 10^8 within ~460
            // tries) — but if it happens, the witness must be the needle.
            let w = witness.expect("bare RSPC NO carries a witness");
            assert_eq!(w.point(), &[7_777, 7_777]);
        }
    }
}

#[test]
fn full_pipeline_catches_the_needle_deterministically() {
    // The same instance WITH the fast paths: all four rows' strips meet at
    // the needle point, so none of them conflicts — MCS removes every row
    // and certifies non-coverage without a single sample. This is exactly
    // the "neither algorithm alone suffices" point of Section 6.5.
    let (s, set) = needle_instance();
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-10)
        .max_iterations(1_000)
        .build();
    let mut rng = seeded_rng(2);
    let d = checker.check(&s, &set, &mut rng);
    assert!(!d.is_covered(), "needle missed");
    assert!(d.is_deterministic());
    assert_eq!(d.stats.rspc_iterations, 0, "no sampling should be needed");
}

#[test]
fn tiny_gap_error_rate_is_within_theoretical_bound() {
    // Extreme scenario at the smallest paper gap with the loosest delta:
    // measure the false-decision rate over many runs and compare with the
    // *achieved* bound the engine reports (not the requested delta).
    let delta = 1e-2;
    let scenario = ExtremeNonCoverScenario::new(0.005);
    let checker = SubsumptionChecker::builder()
        .error_probability(delta)
        .max_iterations(1_000_000)
        .build();
    let runs = 400;
    let mut false_yes = 0u64;
    let mut max_reported_bound: f64 = 0.0;
    for seed in 0..runs {
        let mut rng = seeded_rng(90_000 + seed);
        let inst = scenario.generate(&mut rng);
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        if let CoverAnswer::Covered { error_bound } = d.answer {
            false_yes += 1;
            max_reported_bound = max_reported_bound.max(error_bound);
        }
    }
    // Some false decisions are expected here (that is the point), but the
    // observed rate must be sane, and every wrong answer must have carried a
    // non-trivial error bound.
    let rate = false_yes as f64 / runs as f64;
    assert!(rate < 0.9, "error rate {rate} looks broken");
    if false_yes > 0 {
        assert!(
            max_reported_bound >= delta * 0.9,
            "reported bound {max_reported_bound} tighter than requested {delta}"
        );
    }
}

#[test]
fn zero_iteration_cap_degrades_gracefully() {
    // A cap of 0 makes RSPC vacuous: the engine must still answer, the
    // error bound must be 1 (no information), and deterministic stages must
    // still fire when applicable.
    let (s, set) = needle_instance();
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .max_iterations(0)
        .pairwise_fast_path(false)
        .corollary3_fast_path(false)
        .mcs(false)
        .prefilter_disjoint(false)
        .build();
    let mut rng = seeded_rng(3);
    let d = checker.check(&s, &set, &mut rng);
    match d.answer {
        CoverAnswer::Covered { error_bound } => {
            assert!(
                error_bound >= 0.99,
                "zero samples cannot justify {error_bound}"
            );
        }
        _ => panic!("budget 0 must fall through to a vacuous YES"),
    }
}

#[test]
fn adversarial_domain_extremes_do_not_overflow() {
    // Full i64 domain: volumes overflow u128, log-space must carry the day.
    let schema = Schema::uniform(4, i64::MIN / 2, i64::MAX / 2);
    let s = Subscription::whole_space(&schema);
    let half = Subscription::from_ranges(
        &schema,
        vec![
            Range::new(i64::MIN / 2, 0).unwrap(),
            Range::new(i64::MIN / 2, i64::MAX / 2).unwrap(),
            Range::new(i64::MIN / 2, i64::MAX / 2).unwrap(),
            Range::new(i64::MIN / 2, i64::MAX / 2).unwrap(),
        ],
    )
    .unwrap();
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .build();
    let mut rng = seeded_rng(4);
    let d = checker.check(&s, &[half], &mut rng);
    // Half the space uncovered: any reasonable path answers NO quickly.
    assert!(!d.is_covered());
    assert!(s.size_exact().is_none(), "domain chosen to overflow u128");
    assert!(s.size().ln().is_finite());
}
