//! Failure injection: drive the probabilistic machinery into its error
//! regime on purpose and verify the reported guarantees stay honest.

use psc::core::{CoverAnswer, SubsumptionChecker};
use psc::model::{Range, Schema, Subscription};
use psc::workload::{seeded_rng, ExtremeNonCoverScenario};

/// A needle-in-a-haystack instance: the whole space covered except a single
/// point out of 10^8 — practically undetectable by sampling.
fn needle_instance() -> (Subscription, Vec<Subscription>) {
    let schema = Schema::uniform(2, 0, 9_999);
    let s = Subscription::whole_space(&schema);
    // Cover everything except the point (7777, 7777).
    let mk =
        |r0: Range, r1: Range| Subscription::from_ranges(&schema, vec![r0, r1]).expect("in domain");
    let full = Range::new(0, 9_999).unwrap();
    let set = vec![
        mk(Range::new(0, 7_776).unwrap(), full),
        mk(Range::new(7_778, 9_999).unwrap(), full),
        mk(full, Range::new(0, 7_776).unwrap()),
        mk(full, Range::new(7_778, 9_999).unwrap()),
    ];
    (s, set)
}

#[test]
fn bare_rspc_on_needle_documents_estimate_unsoundness() {
    let (s, set) = needle_instance();
    // Bare RSPC cannot find 1 point in 10^8 within its budget, so it
    // answers YES — wrongly. Notably, Algorithm 2's witness estimate is
    // *heuristic*: it multiplies per-attribute minimal strip widths
    // (2223 × 2223 here ⇒ ρ̂w ≈ 0.049) even though no actual witness box of
    // that size exists — the strips barely intersect in one point. The
    // reported bound (≈ the requested δ) is therefore overconfident on this
    // adversarial geometry. This is faithful to the paper ("the probability
    // of error is problem specific"); the full pipeline's MCS stage is what
    // rescues exactly these instances (see the next test).
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-10)
        .max_iterations(1_000)
        .pairwise_fast_path(false)
        .corollary3_fast_path(false)
        .mcs(false)
        .prefilter_disjoint(false)
        .build();
    let mut rng = seeded_rng(1);
    let d = checker.check(&s, &set, &mut rng);
    match d.answer {
        CoverAnswer::Covered { error_bound } => {
            assert!(!d.is_deterministic());
            // ρ̂w ≈ 0.049 ⇒ theoretical d ≈ 460 < cap ⇒ reported bound ≈ δ.
            assert!(
                error_bound <= 1e-9,
                "estimate regime changed: {error_bound}"
            );
            assert!(
                d.stats.rho_w > 0.01,
                "the overconfident estimate is the point of this test: {}",
                d.stats.rho_w
            );
        }
        CoverAnswer::NotCovered { witness } => {
            // Astronomically unlikely (hitting 1 point in 10^8 within ~460
            // tries) — but if it happens, the witness must be the needle.
            let w = witness.expect("bare RSPC NO carries a witness");
            assert_eq!(w.point(), &[7_777, 7_777]);
        }
    }
}

#[test]
fn full_pipeline_catches_the_needle_deterministically() {
    // The same instance WITH the fast paths: all four rows' strips meet at
    // the needle point, so none of them conflicts — MCS removes every row
    // and certifies non-coverage without a single sample. This is exactly
    // the "neither algorithm alone suffices" point of Section 6.5.
    let (s, set) = needle_instance();
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-10)
        .max_iterations(1_000)
        .build();
    let mut rng = seeded_rng(2);
    let d = checker.check(&s, &set, &mut rng);
    assert!(!d.is_covered(), "needle missed");
    assert!(d.is_deterministic());
    assert_eq!(d.stats.rspc_iterations, 0, "no sampling should be needed");
}

#[test]
fn tiny_gap_error_rate_is_within_theoretical_bound() {
    // Extreme scenario at the smallest paper gap with the loosest delta:
    // measure the false-decision rate over many runs and compare with the
    // *achieved* bound the engine reports (not the requested delta).
    let delta = 1e-2;
    let scenario = ExtremeNonCoverScenario::new(0.005);
    let checker = SubsumptionChecker::builder()
        .error_probability(delta)
        .max_iterations(1_000_000)
        .build();
    let runs = 400;
    let mut false_yes = 0u64;
    let mut max_reported_bound: f64 = 0.0;
    for seed in 0..runs {
        let mut rng = seeded_rng(90_000 + seed);
        let inst = scenario.generate(&mut rng);
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        if let CoverAnswer::Covered { error_bound } = d.answer {
            false_yes += 1;
            max_reported_bound = max_reported_bound.max(error_bound);
        }
    }
    // Some false decisions are expected here (that is the point), but the
    // observed rate must be sane, and every wrong answer must have carried a
    // non-trivial error bound.
    let rate = false_yes as f64 / runs as f64;
    assert!(rate < 0.9, "error rate {rate} looks broken");
    if false_yes > 0 {
        assert!(
            max_reported_bound >= delta * 0.9,
            "reported bound {max_reported_bound} tighter than requested {delta}"
        );
    }
}

#[test]
fn zero_iteration_cap_degrades_gracefully() {
    // A cap of 0 makes RSPC vacuous: the engine must still answer, the
    // error bound must be 1 (no information), and deterministic stages must
    // still fire when applicable.
    let (s, set) = needle_instance();
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .max_iterations(0)
        .pairwise_fast_path(false)
        .corollary3_fast_path(false)
        .mcs(false)
        .prefilter_disjoint(false)
        .build();
    let mut rng = seeded_rng(3);
    let d = checker.check(&s, &set, &mut rng);
    match d.answer {
        CoverAnswer::Covered { error_bound } => {
            assert!(
                error_bound >= 0.99,
                "zero samples cannot justify {error_bound}"
            );
        }
        _ => panic!("budget 0 must fall through to a vacuous YES"),
    }
}

#[test]
fn adversarial_domain_extremes_do_not_overflow() {
    // Full i64 domain: volumes overflow u128, log-space must carry the day.
    let schema = Schema::uniform(4, i64::MIN / 2, i64::MAX / 2);
    let s = Subscription::whole_space(&schema);
    let half = Subscription::from_ranges(
        &schema,
        vec![
            Range::new(i64::MIN / 2, 0).unwrap(),
            Range::new(i64::MIN / 2, i64::MAX / 2).unwrap(),
            Range::new(i64::MIN / 2, i64::MAX / 2).unwrap(),
            Range::new(i64::MIN / 2, i64::MAX / 2).unwrap(),
        ],
    )
    .unwrap();
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .build();
    let mut rng = seeded_rng(4);
    let d = checker.check(&s, &[half], &mut rng);
    // Half the space uncovered: any reasonable path answers NO quickly.
    assert!(!d.is_covered());
    assert!(s.size_exact().is_none(), "domain chosen to overflow u128");
    assert!(s.size().ln().is_finite());
}

/// Crash injection for the durable storage stack: a scripted shard
/// workload runs over [`CrashFs`], which kills the filesystem at every
/// possible mutating-operation boundary in turn — mid-append, between
/// the appends of a commit group and its fsync, during segment rotation,
/// during the snapshot tmp-write/rename, and during manifest advance and
/// segment pruning. After each injected crash the directory is rebooted
/// from what the crash model says survives, and the recovered store must
/// equal a never-crashed reference that saw exactly some prefix of the
/// script — at least the acknowledged prefix, at most what was actually
/// appended. An acknowledged operation that fails to survive is a test
/// failure, as is a recovery refusing to boot from crash debris.
mod crash_injection {
    use proptest::prelude::*;
    use psc::core::SubsumptionChecker;
    use psc::matcher::CoveringStore;
    use psc::model::{Range, Schema, Subscription, SubscriptionId};
    use psc::service::storage::{
        snapshot, CrashFs, FsyncPolicy, LogRecord, ShardStorage, StorageConfig,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;
    use std::sync::Arc;

    const RNG_SEED: u64 = 0x5eed_cafe;
    /// Tiny cap so a ~60-byte subscription record rotates segments every
    /// couple of appends — the sweep then crosses many rotation and
    /// pruning boundaries in a short script.
    const SEGMENT_BYTES: u64 = 96;
    const SNAPSHOT_EVERY: u64 = 5;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn checker() -> SubsumptionChecker {
        SubsumptionChecker::builder()
            .error_probability(1e-12)
            .build()
    }

    fn config(fsync: FsyncPolicy, segment_bytes: u64) -> StorageConfig {
        StorageConfig {
            dir: PathBuf::from("/shard"),
            fsync,
            snapshot_every: SNAPSHOT_EVERY,
            segment_bytes,
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Admit(u64),
        Unsub(u64),
    }

    fn subscription(schema: &Schema, i: u64) -> Subscription {
        let lo0 = (i * 13) % 80;
        let hi0 = (lo0 + 3 + (i * 7) % 17).min(99);
        let lo1 = (i * 29) % 70;
        let hi1 = (lo1 + 2 + (i * 11) % 23).min(99);
        Subscription::from_ranges(
            schema,
            vec![
                Range::new(lo0 as i64, hi0 as i64).unwrap(),
                Range::new(lo1 as i64, hi1 as i64).unwrap(),
            ],
        )
        .unwrap()
    }

    /// A fixed mixed script: mostly admissions, an unsubscribe of an
    /// earlier id every fifth op.
    fn script(n: u64) -> Vec<Op> {
        (0..n)
            .map(|i| {
                if i % 5 == 4 {
                    Op::Unsub(i - 2)
                } else {
                    Op::Admit(i)
                }
            })
            .collect()
    }

    fn record_of(schema: &Schema, op: &Op) -> LogRecord {
        match op {
            Op::Admit(i) => LogRecord::Admit(vec![(SubscriptionId(*i), subscription(schema, *i))]),
            Op::Unsub(i) => LogRecord::Unsubscribe(SubscriptionId(*i)),
        }
    }

    /// Applies one op the way the shard worker does: duplicate ids are
    /// dropped before admission (so replay is idempotent) and removals of
    /// absent ids are no-ops. Identical code drives the live run, the
    /// recovery replay, and the reference store, so the deterministic RNG
    /// streams stay aligned and store equality is exact.
    fn apply_op(store: &mut CoveringStore, rng: &mut StdRng, schema: &Schema, op: &Op) {
        match op {
            Op::Admit(i) => {
                let id = SubscriptionId(*i);
                if !store.contains(id) {
                    for _ in store.admit_batch(vec![(id, subscription(schema, *i))], rng) {}
                }
            }
            Op::Unsub(i) => {
                let _ = store.remove(SubscriptionId(*i), rng);
            }
        }
    }

    /// Runs the scripted workload against `fs` in commit groups of
    /// varying size until completion or the first injected failure (the
    /// simulated kill point — a real crash would not run recovery code in
    /// the dying process either). Returns `(acked, applied)`: operations
    /// covered by a successful commit — the durably acknowledged prefix —
    /// and operations applied in memory when the run ended.
    fn crash_run(
        fs: &CrashFs,
        schema: &Schema,
        ops: &[Op],
        fsync: FsyncPolicy,
        segment_bytes: u64,
    ) -> (usize, usize) {
        let opened =
            ShardStorage::open_with_fs(config(fsync, segment_bytes), schema, Arc::new(fs.clone()));
        let Ok((mut storage, recovery)) = opened else {
            return (0, 0); // Crashed while opening the empty directory.
        };
        assert!(
            recovery.image.is_none() && recovery.records.is_empty(),
            "crash_run expects an empty directory"
        );
        let sink = storage.sink();
        let mut store = CoveringStore::new(checker());
        let mut rng = StdRng::seed_from_u64(RNG_SEED);
        let (mut acked, mut applied) = (0usize, 0usize);
        let group_sizes = [1usize, 3, 2, 4];
        let mut next = 0usize;
        let mut group = 0usize;
        while next < ops.len() {
            let take = group_sizes[group % group_sizes.len()].min(ops.len() - next);
            group += 1;
            for op in &ops[next..next + take] {
                if storage.append(&record_of(schema, op)).is_err() {
                    return (acked, applied);
                }
                apply_op(&mut store, &mut rng, schema, op);
                applied += 1;
            }
            next += take;
            if storage.commit().is_err() {
                return (acked, applied);
            }
            acked = applied;
            if storage.snapshot_due() {
                // The harness writes snapshots synchronously (production
                // uses the off-thread writer) so the sweep injects
                // failures into every snapshot-side boundary too: the tmp
                // write, the rename, the manifest advance, and each
                // segment deletion.
                let mark = storage.wal_position();
                let entries: Vec<_> = store
                    .iter_entries()
                    .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
                    .collect();
                let bytes = snapshot::encode_entries(&entries, schema, rng.state(), mark);
                storage.snapshot_dispatched();
                if sink.write_snapshot(&bytes).is_err()
                    || sink.prune_segments(mark.segment).is_err()
                {
                    return (acked, applied);
                }
            }
        }
        (acked, applied)
    }

    /// Boots from `view` (what the crash model says survived) and asserts
    /// the recovered store equals the reference store after some prefix
    /// `ops[..k]` with `floor <= k <= applied`: no surviving state below
    /// the durability floor, nothing invented beyond what was appended.
    fn assert_recovers_prefix(
        view: CrashFs,
        schema: &Schema,
        ops: &[Op],
        floor: usize,
        applied: usize,
        segment_bytes: u64,
        label: &str,
    ) {
        let (storage, recovery) = ShardStorage::open_with_fs(
            config(FsyncPolicy::Always, segment_bytes),
            schema,
            Arc::new(view),
        )
        .unwrap_or_else(|e| panic!("{label}: recovery refused to boot: {e}"));
        drop(storage);
        let (mut recovered, mut rng) = match recovery.image {
            Some(image) => {
                let rng = StdRng::from_state(image.rng_state);
                let store = CoveringStore::from_entries(checker(), image.entries)
                    .unwrap_or_else(|e| panic!("{label}: snapshot image rejected: {e}"));
                (store, rng)
            }
            None => (
                CoveringStore::new(checker()),
                StdRng::seed_from_u64(RNG_SEED),
            ),
        };
        for record in recovery.records {
            match record {
                LogRecord::Admit(batch) => {
                    let fresh: Vec<_> = batch
                        .into_iter()
                        .filter(|(id, _)| !recovered.contains(*id))
                        .collect();
                    if !fresh.is_empty() {
                        for _ in recovered.admit_batch(fresh, &mut rng) {}
                    }
                }
                LogRecord::Unsubscribe(id) => {
                    let _ = recovered.remove(id, &mut rng);
                }
            }
        }
        let got = recovered.snapshot();

        let mut reference = CoveringStore::new(checker());
        let mut ref_rng = StdRng::seed_from_u64(RNG_SEED);
        for op in &ops[..floor] {
            apply_op(&mut reference, &mut ref_rng, schema, op);
        }
        let mut k = floor;
        loop {
            if reference.snapshot() == got {
                return;
            }
            assert!(
                k < applied,
                "{label}: recovered state ({} entries) matches no prefix ops[..k] \
                 with {floor} <= k <= {applied} — an acknowledged operation was lost \
                 or phantom state appeared",
                got.len(),
            );
            apply_op(&mut reference, &mut ref_rng, schema, &ops[k]);
            k += 1;
        }
    }

    /// Tentpole sweep, power-loss model: with `FsyncPolicy::Always`, kill
    /// the storage at *every* mutating-operation boundary of the scripted
    /// run, keep only fsynced bytes (un-fsynced directory entries
    /// vanish), and require recovery to preserve the acknowledged prefix
    /// exactly.
    #[test]
    fn crash_sweep_power_loss_never_loses_acked_ops() {
        let schema = schema();
        let ops = script(40);
        let clean = CrashFs::new();
        let (acked, applied) = crash_run(&clean, &schema, &ops, FsyncPolicy::Always, SEGMENT_BYTES);
        assert_eq!((acked, applied), (ops.len(), ops.len()));
        let total = clean.ops();
        // The script must be big enough to cross rotation, snapshot, and
        // prune boundaries, or the sweep proves nothing.
        assert!(total >= 60, "script exercises only {total} fs operations");
        for fail_at in 0..total {
            let fs = CrashFs::new();
            fs.fail_at(fail_at);
            let (acked, applied) =
                crash_run(&fs, &schema, &ops, FsyncPolicy::Always, SEGMENT_BYTES);
            assert!(fs.crashed(), "failpoint {fail_at} never tripped");
            assert_recovers_prefix(
                fs.power_loss_view(),
                &schema,
                &ops,
                acked,
                applied,
                SEGMENT_BYTES,
                &format!("power loss at fs op {fail_at}"),
            );
        }
    }

    /// Same sweep under the process-crash model: every written byte
    /// survives (the page cache outlives the process), so even with
    /// `FsyncPolicy::Never` recovery must come back with *exactly* the
    /// applied prefix — appends are atomic in this model, and nothing
    /// beyond the crash point exists to be recovered.
    #[test]
    fn crash_sweep_process_crash_recovers_every_applied_op() {
        let schema = schema();
        let ops = script(40);
        let clean = CrashFs::new();
        let (_, applied) = crash_run(&clean, &schema, &ops, FsyncPolicy::Never, SEGMENT_BYTES);
        assert_eq!(applied, ops.len());
        let total = clean.ops();
        assert!(total >= 40, "script exercises only {total} fs operations");
        for fail_at in 0..total {
            let fs = CrashFs::new();
            fs.fail_at(fail_at);
            let (_, applied) = crash_run(&fs, &schema, &ops, FsyncPolicy::Never, SEGMENT_BYTES);
            assert!(fs.crashed(), "failpoint {fail_at} never tripped");
            assert_recovers_prefix(
                fs.process_crash_view(),
                &schema,
                &ops,
                applied,
                applied,
                SEGMENT_BYTES,
                &format!("process crash at fs op {fail_at}"),
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Randomized variant: arbitrary admit/unsubscribe scripts (with
        /// duplicate ids and removals of absent ids) and arbitrary
        /// segment caps, swept under the power-loss model at a strided
        /// subset of failpoints.
        #[test]
        fn crash_sweep_random_scripts_hold_the_ack_contract(
            raw in proptest::collection::vec((0u64..4, 0u64..24), 8..40),
            segment_bytes in 48u64..256,
            stride in 1u64..4,
            offset in 0u64..3,
        ) {
            let schema = schema();
            // Three admissions for every unsubscribe, with duplicate ids
            // and removals of absent ids all in play.
            let ops: Vec<Op> = raw
                .into_iter()
                .map(|(kind, i)| if kind > 0 { Op::Admit(i) } else { Op::Unsub(i) })
                .collect();
            let clean = CrashFs::new();
            let (acked, applied) =
                crash_run(&clean, &schema, &ops, FsyncPolicy::Always, segment_bytes);
            prop_assert_eq!((acked, applied), (ops.len(), ops.len()));
            let total = clean.ops();
            let mut fail_at = offset.min(total.saturating_sub(1));
            while fail_at < total {
                let fs = CrashFs::new();
                fs.fail_at(fail_at);
                let (acked, applied) =
                    crash_run(&fs, &schema, &ops, FsyncPolicy::Always, segment_bytes);
                assert_recovers_prefix(
                    fs.power_loss_view(),
                    &schema,
                    &ops,
                    acked,
                    applied,
                    segment_bytes,
                    &format!("random script, power loss at fs op {fail_at}"),
                );
                fail_at += stride;
            }
        }
    }
}
