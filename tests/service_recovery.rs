//! Crash-recovery tests for the durable shard stores.
//!
//! The core property: a durable service stopped at an arbitrary point in
//! a random subscribe/unsubscribe stream and restarted from its
//! `data_dir` is indistinguishable from a reference service that never
//! crashed — same membership, same active/covered split, same match
//! results. Covered separately: recovery from the write-ahead log alone
//! (snapshots disabled), recovery through snapshot + log-suffix replay
//! spanning several rotated segments, a deliberately torn final WAL
//! record (truncated, not fatal), trailing garbage after valid records,
//! a kill mid-snapshot-write (boots from the previous intact snapshot),
//! admissions racing the background snapshot writer, and the full TCP
//! `ServiceServer` restart path against naive-matcher ground truth.

use proptest::prelude::*;
use psc::matcher::NaiveMatcher;
use psc::model::{Publication, Range, Schema, Subscription, SubscriptionId};
use psc::service::storage::{segment_file_name, FsyncPolicy};
use psc::service::{PubSubService, ServiceClient, ServiceConfig, ServiceServer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn schema() -> Schema {
    Schema::uniform(2, 0, 99)
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "psc-recovery-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone)]
enum Op {
    Subscribe(u64, (i64, i64), (i64, i64)),
    Unsubscribe(u64),
}

fn apply(service: &PubSubService, schema: &Schema, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Subscribe(id, (lo0, hi0), (lo1, hi1)) => {
                let sub = Subscription::from_ranges(
                    schema,
                    vec![Range::new(lo0, hi0).unwrap(), Range::new(lo1, hi1).unwrap()],
                )
                .unwrap();
                service.subscribe(SubscriptionId(id), sub).unwrap();
            }
            Op::Unsubscribe(id) => {
                let _ = service.unsubscribe(SubscriptionId(id));
            }
        }
    }
}

/// Asserts `rebuilt` serves exactly what `reference` serves: same
/// membership and active/covered split, and identical match results over
/// a probe grid.
fn assert_equivalent(rebuilt: &PubSubService, reference: &PubSubService, schema: &Schema) {
    assert_eq!(rebuilt.snapshot(), reference.snapshot());
    let (a, b) = (rebuilt.metrics().totals(), reference.metrics().totals());
    assert_eq!(a.active_subscriptions, b.active_subscriptions);
    assert_eq!(a.covered_subscriptions, b.covered_subscriptions);
    for x in (0..100).step_by(7) {
        for y in (0..100).step_by(13) {
            let p = Publication::builder(schema)
                .set("x0", x)
                .set("x1", y)
                .build()
                .unwrap();
            assert_eq!(
                rebuilt.publish(&p).unwrap(),
                reference.publish(&p).unwrap(),
                "mismatch at ({x}, {y})"
            );
        }
    }
}

prop_compose! {
    fn arb_op()(
        kind in 0usize..5,
        id in 0u64..48,
        lo0 in 0i64..90,
        w0 in 0i64..40,
        lo1 in 0i64..90,
        w1 in 0i64..40,
    ) -> Op {
        match kind {
            0 => Op::Unsubscribe(id),
            // A sprinkle of very wide subscriptions keeps the covered
            // pool (and its parent links) well populated.
            1 => Op::Subscribe(id, (0, 99), (lo1.min(20), 99)),
            _ => Op::Subscribe(id, (lo0, (lo0 + w0).min(99)), (lo1, (lo1 + w1).min(99))),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op streams; restart from disk must reproduce a
    /// never-crashed reference exactly. `snapshot_every` sweeps from
    /// "never snapshot" (pure WAL replay) to "snapshot every few
    /// records" (snapshot restore + log-suffix replay).
    #[test]
    fn restart_matches_never_crashed_reference(
        ops in proptest::collection::vec(arb_op(), 1..70),
        shards in 1usize..4,
        batch_size in 1usize..9,
        snapshot_every in 0u64..6,
    ) {
        let schema = schema();
        let dir = temp_dir("prop");
        let config = ServiceConfig {
            shards,
            batch_size,
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Never,
            snapshot_every,
            // Make probabilistic decisions effectively deterministic so
            // the reference comparison cannot flake on a δ-probability
            // disagreement between RNG streams.
            error_probability: 1e-12,
            ..Default::default()
        };
        let reference_config = ServiceConfig { data_dir: None, ..config.clone() };

        let reference = PubSubService::start(schema.clone(), reference_config);
        apply(&reference, &schema, &ops);

        {
            let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
            apply(&durable, &schema, &ops);
            // Dropping without any explicit flush: the graceful-stop path
            // must push buffered admissions through the WAL by itself.
        }

        let rebuilt = PubSubService::open(schema.clone(), config).unwrap();
        let stored = rebuilt.snapshot().len() as u64;
        prop_assert_eq!(rebuilt.metrics().totals().subscriptions_recovered, stored);
        assert_equivalent(&rebuilt, &reference, &schema);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

fn subscribe_ops(n: u64) -> Vec<Op> {
    (0..n)
        .map(|i| {
            let lo = (i as i64 * 11) % 80;
            Op::Subscribe(i, (lo, lo + 15), (0, 99 - (i as i64 % 30)))
        })
        .collect()
}

/// A torn final record (the file ends mid-record, as after a crash during
/// an append) is truncated: the service reboots with every *fully
/// written* record and keeps serving.
#[test]
fn torn_final_wal_record_loses_only_the_torn_operation() {
    let schema = schema();
    let dir = temp_dir("torn");
    // One shard and batch_size 1 so each subscribe is one WAL record and
    // the torn record maps to exactly the last operation.
    let config = ServiceConfig {
        shards: 1,
        batch_size: 1,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 0,
        ..Default::default()
    };
    let ops = subscribe_ops(6);
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        apply(&durable, &schema, &ops);
        durable.flush();
        let _ = durable.metrics(); // barrier: all records appended
    }
    // Tear the last record: chop a few bytes off the log's tail.
    let wal = dir.join("shard-0").join(segment_file_name(1));
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 5).unwrap();
    drop(file);

    let rebuilt = PubSubService::open(schema.clone(), config.clone()).unwrap();
    let reference = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            data_dir: None,
            ..config
        },
    );
    apply(&reference, &schema, &ops[..5]); // the 6th op was torn away
    assert_equivalent(&rebuilt, &reference, &schema);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Trailing garbage after the last intact record (a torn tail that never
/// formed a frame header) is likewise dropped without losing anything.
#[test]
fn trailing_garbage_after_valid_records_is_dropped() {
    let schema = schema();
    let dir = temp_dir("garbage");
    let config = ServiceConfig {
        shards: 1,
        batch_size: 1,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 0,
        ..Default::default()
    };
    let ops = subscribe_ops(4);
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        apply(&durable, &schema, &ops);
    }
    let wal = dir.join("shard-0").join(segment_file_name(1));
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xAB, 0xCD, 0xEF]); // partial frame header
    std::fs::write(&wal, &bytes).unwrap();

    let rebuilt = PubSubService::open(schema.clone(), config.clone()).unwrap();
    let reference = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            data_dir: None,
            ..config
        },
    );
    apply(&reference, &schema, &ops);
    assert_equivalent(&rebuilt, &reference, &schema);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Polls service metrics until `done` returns true for the shard totals
/// (each call wakes the shard workers, which absorb finished background
/// snapshot outcomes at group boundaries). Panics on timeout.
fn wait_for_totals(
    service: &PubSubService,
    what: &str,
    done: impl Fn(&psc::service::ShardMetrics) -> bool,
) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let totals = service.metrics().totals();
        if done(&totals) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}; totals: {totals:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

/// Snapshots happen at the configured cadence (on the background writer
/// thread), prune the segments they cover, and the snapshot-restore path
/// (not just WAL replay) reproduces the store.
#[test]
fn snapshot_cadence_prunes_segments_and_restores() {
    let schema = schema();
    let dir = temp_dir("cadence");
    let config = ServiceConfig {
        shards: 2,
        batch_size: 4,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 3,
        // Tiny segments so snapshots actually retire covered segments.
        wal_segment_bytes: 256,
        // Hash placement spreads the workload over both shards so each
        // one's snapshot cadence actually fires — this test is about
        // storage mechanics, not placement.
        placement_enabled: false,
        ..Default::default()
    };
    let ops = subscribe_ops(40);
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        apply(&durable, &schema, &ops);
        durable.flush();
        // Snapshots are written off-thread: poll until both the write
        // and the pruning it unlocks have been absorbed into metrics.
        wait_for_totals(&durable, "a background snapshot and a prune", |t| {
            t.snapshots_written > 0 && t.wal_segments_pruned > 0
        });
        let totals = durable.metrics().totals();
        assert!(totals.wal_segments_rotated > 0, "256-byte cap must rotate");
        assert_eq!(totals.storage_errors, 0);
    }
    for shard in 0..2 {
        assert!(
            dir.join(format!("shard-{shard}"))
                .join("snapshot.bin")
                .exists(),
            "shard {shard} wrote a snapshot"
        );
    }
    let rebuilt = PubSubService::open(schema.clone(), config.clone()).unwrap();
    let reference = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            data_dir: None,
            ..config
        },
    );
    apply(&reference, &schema, &ops);
    assert_equivalent(&rebuilt, &reference, &schema);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// With a tiny segment cap and snapshots disabled, the log rotates into
/// several segments and recovery replays across every boundary — the
/// result must equal a never-crashed reference, exactly as if the log
/// were one file.
#[test]
fn replay_spans_rotated_segments_and_matches_reference() {
    let schema = schema();
    let dir = temp_dir("segments");
    let config = ServiceConfig {
        shards: 1,
        batch_size: 1,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 0,
        wal_segment_bytes: 128,
        ..Default::default()
    };
    let ops = subscribe_ops(30);
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        apply(&durable, &schema, &ops);
    }
    let segments = std::fs::read_dir(dir.join("shard-0"))
        .unwrap()
        .filter(|e| {
            let name = e.as_ref().unwrap().file_name();
            let name = name.to_string_lossy();
            name.starts_with("wal.") && name.ends_with(".log")
        })
        .count();
    assert!(
        segments >= 3,
        "30 records over a 128-byte cap must span >= 3 segments, found {segments}"
    );
    let rebuilt = PubSubService::open(schema.clone(), config.clone()).unwrap();
    let reference = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            data_dir: None,
            ..config
        },
    );
    apply(&reference, &schema, &ops);
    assert_equivalent(&rebuilt, &reference, &schema);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash in the middle of writing a snapshot leaves a partial
/// `snapshot.tmp` next to the previous intact `snapshot.bin`. The reboot
/// must ignore the debris and recover from the intact snapshot plus the
/// (never truncated at snapshot time) log suffix.
#[test]
fn mid_snapshot_kill_boots_from_previous_intact_snapshot() {
    let schema = schema();
    let dir = temp_dir("midsnap");
    let config = ServiceConfig {
        shards: 1,
        batch_size: 2,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 4,
        wal_segment_bytes: 256,
        ..Default::default()
    };
    let ops = subscribe_ops(24);
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        apply(&durable, &schema, &ops);
        durable.flush();
        wait_for_totals(&durable, "a background snapshot", |t| {
            t.snapshots_written > 0
        });
    }
    // Simulate the kill: a half-written tmp file that never reached its
    // rename. Recovery must not even look at it.
    std::fs::write(
        dir.join("shard-0").join("snapshot.tmp"),
        b"PSCSNAP2 interrupted mid-write",
    )
    .unwrap();
    let rebuilt = PubSubService::open(schema.clone(), config.clone()).unwrap();
    let reference = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            data_dir: None,
            ..config
        },
    );
    apply(&reference, &schema, &ops);
    assert_equivalent(&rebuilt, &reference, &schema);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Admissions racing the background snapshot writer: with a snapshot
/// dispatched at practically every group boundary, subscribes,
/// unsubscribes, and publishes keep flowing while images are being
/// encoded and written off-thread. Nothing deadlocks, later operations
/// never leak into earlier frozen images, and a restart reproduces the
/// reference exactly.
#[test]
fn admissions_racing_background_snapshots_recover_exactly() {
    let schema = schema();
    let dir = temp_dir("race");
    let config = ServiceConfig {
        shards: 2,
        batch_size: 1,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 1, // a snapshot is due after every record
        wal_segment_bytes: 192,
        error_probability: 1e-12,
        ..Default::default()
    };
    let ops: Vec<Op> = (0..120u64)
        .map(|i| {
            if i % 7 == 6 {
                Op::Unsubscribe(i - 3)
            } else {
                let lo = (i as i64 * 13) % 70;
                Op::Subscribe(i, (lo, lo + 20), ((i as i64 * 5) % 60, 99))
            }
        })
        .collect();
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        for (i, chunk) in ops.chunks(10).enumerate() {
            apply(&durable, &schema, chunk);
            // Interleave reads so scrapes and publishes race the writer
            // too, and give the writer thread slices to finish jobs so
            // multiple images get written during the run.
            let p = Publication::builder(&schema)
                .set("x0", (i as i64 * 17) % 100)
                .set("x1", (i as i64 * 23) % 100)
                .build()
                .unwrap();
            durable.publish(&p).unwrap();
            std::thread::yield_now();
        }
        durable.flush();
        wait_for_totals(&durable, "several background snapshots", |t| {
            t.snapshots_written >= 2
        });
        assert_eq!(durable.metrics().totals().storage_errors, 0);
    }
    let rebuilt = PubSubService::open(schema.clone(), config.clone()).unwrap();
    let reference = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            data_dir: None,
            ..config.clone()
        },
    );
    apply(&reference, &schema, &ops);
    assert_equivalent(&rebuilt, &reference, &schema);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The durability barrier and the graceful-stop path: `barrier()` blocks
/// until every previously applied operation is committed (it would hang
/// forever if group commit failed to release deferred acks), unsubscribe
/// acknowledgements come back after their covering commit, and a drop
/// right after the last admission still flushes the pending group.
#[test]
fn barrier_and_shutdown_flush_the_pending_group() {
    let schema = schema();
    let dir = temp_dir("barrier");
    let config = ServiceConfig {
        shards: 2,
        batch_size: 8,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Always,
        snapshot_every: 0,
        ..Default::default()
    };
    let ops = subscribe_ops(20);
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        assert!(durable.is_durable());
        apply(&durable, &schema, &ops);
        durable.barrier();
        let totals = durable.metrics().totals();
        assert!(
            totals.wal_group_commits >= 1,
            "a barrier implies at least one commit group"
        );
        // Admissions batch up to `batch_size` per record: 20 subscribes
        // over 2 shards at batch_size 8 is a handful of records, not 20.
        assert!(totals.wal_records_appended >= 2);
        // A deferred unsubscribe ack arrives (after its commit), and
        // reports the membership truthfully.
        assert!(durable.unsubscribe(SubscriptionId(7)));
        assert!(!durable.unsubscribe(SubscriptionId(999)));
        // Admissions right before drop: the shutdown path must commit
        // this last group and release its acks before the worker exits.
        apply(&durable, &schema, &subscribe_ops_from(20, 5));
    }
    let rebuilt = PubSubService::open(schema.clone(), config.clone()).unwrap();
    assert_eq!(
        rebuilt.metrics().totals().subscriptions_recovered,
        24,
        "20 subscribed - 1 unsubscribed + 5 at shutdown"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

fn subscribe_ops_from(start: u64, n: u64) -> Vec<Op> {
    (start..start + n)
        .map(|i| {
            let lo = (i as i64 * 11) % 80;
            Op::Subscribe(i, (lo, lo + 15), (0, 99 - (i as i64 % 30)))
        })
        .collect()
}

/// The full TCP path: a `ServiceServer` stopped and rebound on the same
/// `data_dir` serves the same match results as before the stop, checked
/// against naive-matcher ground truth.
#[test]
fn service_server_restart_preserves_matching_over_tcp() {
    let schema = schema();
    let dir = temp_dir("tcp");
    let config = ServiceConfig {
        shards: 2,
        batch_size: 4,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 5,
        ..Default::default()
    };

    let mut naive = NaiveMatcher::new();
    let subs: Vec<(SubscriptionId, Subscription)> = (0..30u64)
        .map(|i| {
            let lo = (i as i64 * 7) % 70;
            let sub = Subscription::builder(&schema)
                .range("x0", lo, lo + 25)
                .range("x1", (i as i64 * 3) % 50, 99)
                .build()
                .unwrap();
            (SubscriptionId(i), sub)
        })
        .collect();

    let server = ServiceServer::bind("127.0.0.1:0", schema.clone(), config.clone()).unwrap();
    {
        let mut client = ServiceClient::connect(server.local_addr()).unwrap();
        for (id, sub) in &subs {
            client.subscribe(*id, sub).unwrap();
            naive.insert(*id, sub.clone());
        }
        for id in [3u64, 17, 26] {
            assert!(client.unsubscribe(SubscriptionId(id)).unwrap());
            naive.remove(SubscriptionId(id));
        }
    }
    server.stop();

    let server = ServiceServer::bind("127.0.0.1:0", schema.clone(), config).unwrap();
    let mut client = ServiceClient::connect(server.local_addr()).unwrap();
    let recovered = client.stats().unwrap().totals().subscriptions_recovered;
    assert_eq!(recovered, 27, "30 subscribed, 3 unsubscribed");
    for x in (0..100).step_by(9) {
        for y in (0..100).step_by(11) {
            let p = Publication::builder(&schema)
                .set("x0", x)
                .set("x1", y)
                .build()
                .unwrap();
            let mut expected: Vec<u64> = naive.matches(&p).iter().map(|id| id.0).collect();
            expected.sort_unstable();
            let matched: Vec<u64> = client
                .publish(&p)
                .unwrap()
                .into_iter()
                .map(|id| id.0)
                .collect();
            assert_eq!(matched, expected, "mismatch at ({x}, {y})");
        }
    }
    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An unwritable `data_dir` fails loudly at bind time, before clients can
/// connect to a server that would silently not persist.
#[test]
fn unusable_data_dir_fails_at_boot() {
    let dir = temp_dir("unusable");
    std::fs::create_dir_all(&dir).unwrap();
    // Occupy the shard-0 path with a *file* so the directory can't be
    // created.
    std::fs::write(dir.join("shard-0"), b"not a directory").unwrap();
    let config = ServiceConfig {
        shards: 1,
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let err = match ServiceServer::bind("127.0.0.1:0", schema(), config) {
        Err(e) => e,
        Ok(_) => panic!("bind must fail when the shard directory is unusable"),
    };
    assert!(!err.to_string().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The placement directory is rebuilt from per-shard WAL replay on
/// recovery: clustered subscriptions that greedy placement moved off
/// their hash shards must still be found — and removable — through the
/// rebuilt directory, and ids unsubscribed before the crash must stay
/// gone.
#[test]
fn placement_directory_rebuilds_from_recovery() {
    let schema = schema();
    let dir = temp_dir("directory");
    let config = ServiceConfig {
        shards: 4,
        batch_size: 4,
        placement_enabled: true,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Never,
        snapshot_every: 5, // mix snapshot-image and log-suffix entries
        ..Default::default()
    };
    // Two tight attribute-space clusters: greedy placement packs each
    // onto one shard, so most ids live away from their hash shard and a
    // hash-based unsubscribe lookup would miss them.
    let cluster = |base: i64, id: u64| Op::Subscribe(id, (base, base + 9), (base, base + 9));
    let mut ops: Vec<Op> = Vec::new();
    for i in 0..12u64 {
        ops.push(cluster(0, i));
        ops.push(cluster(80, 100 + i));
    }
    // A few removals before the crash: replay must drop them from the
    // rebuilt directory too.
    ops.push(Op::Unsubscribe(3));
    ops.push(Op::Unsubscribe(105));
    {
        let durable = PubSubService::open(schema.clone(), config.clone()).unwrap();
        apply(&durable, &schema, &ops);
        let moves = durable.metrics().placement.placement_moves;
        assert!(moves > 0, "clusters never moved off their hash shards");
    }

    let rebuilt = PubSubService::open(schema.clone(), config).unwrap();
    let placement = rebuilt.metrics().placement;
    assert!(placement.enabled);
    assert_eq!(placement.directory_entries, 22, "24 placed - 2 removed");
    // Pre-crash removals stayed removed.
    assert!(!rebuilt.unsubscribe(SubscriptionId(3)));
    assert!(!rebuilt.unsubscribe(SubscriptionId(105)));
    // Every surviving id resolves through the rebuilt directory.
    for id in (0..12u64).chain(100..112).filter(|&i| i != 3 && i != 105) {
        assert!(
            rebuilt.unsubscribe(SubscriptionId(id)),
            "recovered directory lost id {id}"
        );
    }
    assert_eq!(rebuilt.metrics().placement.directory_entries, 0);
    // The stores drained along with the directory.
    let p = Publication::builder(&schema)
        .set("x0", 5)
        .set("x1", 5)
        .build()
        .unwrap();
    assert!(rebuilt.publish(&p).unwrap().is_empty());
    // Join the shard workers (and their snapshot writers) before deleting
    // the data dir, or an in-flight background snapshot can recreate
    // files under a directory being removed.
    drop(rebuilt);
    std::fs::remove_dir_all(&dir).unwrap();
}
