//! Tests of the latency-telemetry subsystem end to end: the router's
//! `publications_total` identity under content-aware routing, histogram
//! merge/quantile properties against a sorted-vector reference, and the
//! `stats` wire response carrying per-stage quantiles over real TCP —
//! including decoding stats emitted by pre-telemetry peers.

use proptest::prelude::*;
use psc::model::wire::{Json, LatencyStats};
use psc::model::SubscriptionId;
use psc::service::telemetry::LogHistogram;
use psc::service::{PubSubService, ServiceClient, ServiceConfig, ServiceServer};

/// Router-side publish counting under routing: summing per-shard
/// `publications` undercounts whenever a summary prunes a shard (the PR 5
/// max-merge workaround hid, rather than fixed, that). The router's own
/// ingress counter reports the true total, and at quiescence every shard
/// satisfies `publications + shards_pruned == publications_total`.
#[test]
fn publications_total_identity_under_routing() {
    // The skewed fixture concentrates subscribers on hot topics, so the
    // per-shard value-set summaries prune most long-tail publications.
    let (schema, subs, pubs) = psc_bench::skewed_fixture(4, 120, 200, 250, 0x1D1D);
    let service = PubSubService::start(
        schema,
        ServiceConfig {
            shards: 4,
            batch_size: 16,
            ..Default::default()
        },
    );
    for (i, s) in subs.iter().enumerate() {
        service
            .subscribe(SubscriptionId(i as u64), s.clone())
            .expect("subscribe");
    }
    service.flush();
    for p in &pubs {
        service.publish(p).expect("publish");
    }

    let metrics = service.metrics();
    assert_eq!(
        metrics.publications_total,
        pubs.len() as u64,
        "router counts every publish at ingress"
    );
    let mut any_pruned = false;
    for shard in &metrics.shards {
        assert_eq!(
            shard.publications_processed + shard.shards_pruned,
            metrics.publications_total,
            "per shard: every publication either visits or is pruned"
        );
        any_pruned |= shard.shards_pruned > 0;
    }
    assert!(
        any_pruned,
        "skewed workload should prune; otherwise this test is vacuous"
    );

    // In-process latency view: route and match stages have samples, the
    // reactor-owned stages stay empty without a TCP front-end.
    let latency = service.latency();
    assert!(latency.route.count() > 0, "route stage recorded");
    assert!(latency.shard_match.count() > 0, "match stage recorded");
    assert_eq!(latency.decode.count(), 0);
    assert_eq!(latency.end_to_end.count(), 0);
}

/// The full acceptance path: a real TCP server answers `stats` with
/// per-stage latency, and the e2e stage counts exactly the publishes.
#[test]
fn stats_over_tcp_carries_stage_quantiles() {
    let (schema, subs, pubs) = psc_bench::uniform_fixture(4, 60, 40, 300, 0x7E7E);
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema,
        ServiceConfig {
            shards: 2,
            batch_size: 8,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    for (i, s) in subs.iter().enumerate() {
        client
            .subscribe(SubscriptionId(i as u64), s)
            .expect("subscribe");
    }
    client.flush().expect("flush");
    for p in &pubs {
        client.publish(p).expect("publish");
    }

    let (metrics, reactor, latency) = client.stats_full().expect("stats");
    let reactor = reactor.expect("TCP server reports reactor metrics");
    let latency = latency.expect("TCP server reports latency stats");
    assert_eq!(metrics.publications_total, pubs.len() as u64);
    assert!(reactor.requests_handled > 0);

    // Publish→deliver latency: one e2e sample per publish, quantile
    // ladder monotone and bounded by the exact max.
    let e2e = &latency.end_to_end;
    assert_eq!(e2e.count, pubs.len() as u64);
    assert!(e2e.min_ns > 0);
    assert!(e2e.p50_ns <= e2e.p90_ns);
    assert!(e2e.p90_ns <= e2e.p99_ns);
    assert!(e2e.p99_ns <= e2e.p999_ns);
    assert!(e2e.p999_ns <= e2e.max_ns);

    // Every per-stage timer saw traffic: decode covers all request
    // lines, deliver covers all responses queued so far, route/match ran
    // per shard visit.
    assert!(latency.decode.count > e2e.count);
    assert!(latency.deliver.count > e2e.count);
    assert!(latency.route.count > 0);
    assert!(latency.shard_match.count > 0);
    server.stop();
}

/// A pre-telemetry stats line (no `latency`, no `publications_total`)
/// still decodes, and `LatencyStats::from_json` tolerates partially
/// populated stage maps — the version-skew contract.
#[test]
fn version_skew_tolerates_absent_latency() {
    let old = Json::parse(
        r#"{"e2e":{"count":3,"p50":10,"p90":20,"p99":30,"p999":31,"min":1,"max":32,"mean":12.5}}"#,
    )
    .expect("parse");
    let stats = LatencyStats::from_json(&old);
    assert_eq!(stats.end_to_end.count, 3);
    assert_eq!(stats.end_to_end.p999_ns, 31);
    // Stages the old peer never emitted default to empty, not error.
    assert_eq!(stats.decode.count, 0);
    assert_eq!(stats.route, Default::default());
}

proptest! {
    /// Merging split histograms is bucket-exactly equivalent to having
    /// recorded every value into one histogram, regardless of how the
    /// values are partitioned.
    #[test]
    fn histogram_merge_equals_record_all(
        values in proptest::collection::vec(0u64..1 << 48, 1..300),
        splits in proptest::collection::vec(0usize..4, 1..300),
    ) {
        let mut parts = [
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        ];
        let mut all = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            parts[splits[i % splits.len()]].record(v);
            all.record(v);
        }
        let mut merged = LogHistogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert!(merged.same_distribution(&all));
        prop_assert_eq!(merged.quantile(0.5), all.quantile(0.5));
        prop_assert_eq!(merged.quantile(0.999), all.quantile(0.999));
    }

    /// Quantiles against a sorted-vector reference: the reported value
    /// never understates the exact rank statistic and overstates by at
    /// most one sub-bucket width (relative error ≤ 1/32).
    #[test]
    fn histogram_quantiles_bound_sorted_reference(
        mut values in proptest::collection::vec(0u64..1 << 40, 1..500),
        permille in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for &k in &permille {
            let q = f64::from(k) / 1000.0;
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank];
            let reported = h.quantile(q);
            prop_assert!(reported >= exact, "q={} reported {} < exact {}", q, reported, exact);
            prop_assert!(
                reported <= exact + exact / 32 + 1,
                "q={} reported {} above error bound over {}", q, reported, exact
            );
        }
        prop_assert_eq!(h.min(), values[0]);
        prop_assert_eq!(h.max(), *values.last().unwrap());
    }
}
