//! Crash injection at federation protocol boundaries.
//!
//! Two sweeps, mirroring `failure_injection.rs`'s storage sweeps one
//! layer up:
//!
//! 1. **Broker-boundary sweep** — the middle node of a 3-node chain is
//!    killed at *every* federation protocol boundary (mid-forward,
//!    mid-retract, mid-publish; before apply and before ack), then
//!    restarted over its WAL and resynced. Every operation a client got
//!    an ack for must still deliver mesh-wide; no subscription may be
//!    silently dropped.
//! 2. **Shipping sweep** — a WAL follower mirrors a durable leader
//!    through a [`CrashFs`], power-lossed at every mutating filesystem
//!    operation of the shipping path (mid-segment-ship, mid-manifest
//!    rename); a resumed follower over the surviving bytes must
//!    converge to a byte-identical replica.

use psc::broker::{BrokerId, CoveringPolicy};
use psc::model::{Publication, Range, Schema, Subscription, SubscriptionId};
use psc::service::federation::{FederatedNode, FederationConfig, FollowerHandle, WalFollower};
use psc::service::storage::CrashFs;
use psc::service::{ServiceClient, ServiceConfig};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    Schema::uniform(2, 0, 99)
}

fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
    Subscription::from_ranges(
        schema,
        vec![
            Range::new(lo, hi).expect("range"),
            Range::new(lo, hi).expect("range"),
        ],
    )
    .expect("subscription")
}

fn dummy_addr() -> SocketAddr {
    "127.0.0.1:9".parse().expect("addr")
}

fn fed_config(node_id: usize, peers: &[usize], fail_after_ops: Option<u64>) -> FederationConfig {
    FederationConfig {
        node_id: BrokerId(node_id),
        listen: "127.0.0.1:0".to_string(),
        peers: peers.iter().map(|&p| (BrokerId(p), dummy_addr())).collect(),
        policy: CoveringPolicy::Pairwise,
        seed: 3,
        // Reconnects are driven explicitly by the sweep; a heartbeat
        // thread would race the crash windows.
        heartbeat_interval: None,
        fail_after_ops,
    }
}

fn service_config() -> ServiceConfig {
    let mut config = ServiceConfig::with_shards(1);
    // Bound the worst case when a link dies mid round trip.
    config.io_timeout = Some(Duration::from_secs(2));
    config
}

fn wire_chain(a: &FederatedNode, b: &FederatedNode, c: &FederatedNode) {
    a.set_peer_addr(BrokerId(1), b.local_addr());
    b.set_peer_addr(BrokerId(0), a.local_addr());
    b.set_peer_addr(BrokerId(2), c.local_addr());
    c.set_peer_addr(BrokerId(1), b.local_addr());
}

/// Kills B at federation-boundary `fail_at`, restarts it over its WAL,
/// and verifies no acknowledged subscription was lost mesh-wide.
fn sweep_broker_crash_at(fail_at: u64, dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("mkdir");
    let s = schema();

    let a = FederatedNode::start(s.clone(), service_config(), fed_config(0, &[1], None))
        .expect("start A");
    let mut b_service = service_config();
    b_service.data_dir = Some(dir.to_path_buf());
    let b = FederatedNode::start(s.clone(), b_service, fed_config(1, &[0, 2], Some(fail_at)))
        .expect("start B");
    let c = FederatedNode::start(s.clone(), service_config(), fed_config(2, &[1], None))
        .expect("start C");
    wire_chain(&a, &b, &c);

    let mut at_c = ServiceClient::connect_binary(c.local_addr()).expect("connect C");
    let mut at_a = ServiceClient::connect_binary(a.local_addr()).expect("connect A");

    // The script crosses every boundary kind: forwards (narrow subs),
    // a covering forward that triggers retract-and-replace upstream
    // (mid-retract), publishes routed through B, and an unsubscribe.
    // Link failures are absorbed by the edge nodes, so every subscribe
    // and unsubscribe here is ACKED no matter when B dies; publishes
    // may error while the chain is severed.
    let mut acked: Vec<(u64, Subscription)> = Vec::new();
    for (id, lo, hi) in [(1u64, 10i64, 20i64), (2, 30, 40), (3, 5, 45)] {
        let spec = sub(&s, lo, hi);
        at_c.subscribe(SubscriptionId(id), &spec)
            .expect("subscribe at C is acked locally");
        acked.push((id, spec));
    }
    let _ = at_a.publish(&Publication::from_values(&s, vec![15, 15]).expect("pub"));
    at_a.subscribe(SubscriptionId(4), &sub(&s, 60, 70))
        .expect("subscribe at A is acked locally");
    acked.push((4, sub(&s, 60, 70)));
    assert!(at_c
        .unsubscribe(SubscriptionId(2))
        .expect("unsubscribe at C is acked locally"));
    acked.retain(|(id, _)| *id != 2);
    let _ = at_a.publish(&Publication::from_values(&s, vec![35, 35]).expect("pub"));

    // Restart B: new port, same WAL, failpoint disarmed — then re-point
    // peers and force a resync, exactly like a supervisor would.
    b.stop();
    drop(b);
    let mut b_service = service_config();
    b_service.data_dir = Some(dir.to_path_buf());
    let b2 = FederatedNode::start(s.clone(), b_service, fed_config(1, &[0, 2], None))
        .expect("restart B");
    wire_chain(&a, &b2, &c);
    assert_eq!(a.resync(), 1, "fail_at {fail_at}: A must re-reach B");
    assert_eq!(c.resync(), 1, "fail_at {fail_at}: C must re-reach B");

    // Every acked subscription delivers mesh-wide from the far end.
    for (id, spec) in &acked {
        let probe = Publication::from_values(
            &s,
            spec.ranges()
                .iter()
                .map(|r| (r.lo() + r.hi()) / 2)
                .collect(),
        )
        .expect("probe");
        let got = at_a
            .publish(&probe)
            .unwrap_or_else(|e| panic!("fail_at {fail_at}: publish after heal failed: {e}"));
        assert!(
            got.contains(&SubscriptionId(*id)),
            "fail_at {fail_at}: acked subscription {id} was silently dropped \
             mesh-wide (matched {got:?})"
        );
    }
    // The unsubscribed one: if B crashed after durably applying the
    // forward but before the retract reached it, the interest survives
    // B's WAL recovery as soft state (provenance is not persisted — see
    // docs/FEDERATION.md). It must never be *hidden*, though: a retract
    // by id at the recovered node purges it mesh-wide.
    let got = at_a
        .publish(&Publication::from_values(&s, vec![35, 35]).expect("pub"))
        .expect("publish after heal");
    if got.contains(&SubscriptionId(2)) {
        let mut at_b = ServiceClient::connect_binary(b2.local_addr()).expect("connect B");
        assert!(
            at_b.unsubscribe(SubscriptionId(2)).expect("retract zombie"),
            "fail_at {fail_at}: surviving interest must be retractable at B"
        );
        let got = at_a
            .publish(&Publication::from_values(&s, vec![35, 35]).expect("pub"))
            .expect("publish after purge");
        assert!(
            !got.contains(&SubscriptionId(2)),
            "fail_at {fail_at}: retracted subscription resurfaced even after purge"
        );
    }

    drop(at_a);
    drop(at_c);
    a.stop();
    b2.stop();
    c.stop();
    drop((a, b2, c));
    let _ = std::fs::remove_dir_all(dir);
}

/// Broker-boundary sweep. The scripted run crosses ~14 failpoint
/// boundaries (two per forward/retract/publish op through B); sweeping
/// past the end just runs crash-free, so the bound needs no measuring
/// pass.
#[test]
fn broker_crash_sweep_never_loses_acked_subscriptions() {
    let dir = std::env::temp_dir().join(format!("psc-fed-crash-{}", std::process::id()));
    for fail_at in 0..12 {
        sweep_broker_crash_at(fail_at, &dir);
    }
}

/// Builds a durable leader whose WAL spans several segments, so the
/// shipping path crosses rotation boundaries.
fn start_leader(dir: &Path) -> FederatedNode {
    let s = schema();
    let mut config = service_config();
    config.data_dir = Some(dir.to_path_buf());
    // Tiny segments force rotation; a huge snapshot interval keeps every
    // record in the WAL (shipping covers segments, not snapshots).
    config.wal_segment_bytes = 256;
    config.snapshot_every = 1_000_000;
    // Admissions buffer per shard and flush as one record; a batch of 1
    // turns every subscribe into its own WAL append so rotation actually
    // happens at the tiny segment size above.
    config.batch_size = 1;
    let leader = FederatedNode::start(s.clone(), config, fed_config(0, &[], None)).expect("leader");
    let mut client = ServiceClient::connect_binary(leader.local_addr()).expect("connect");
    for i in 0..60i64 {
        client
            .subscribe(SubscriptionId(i as u64), &sub(&s, i, i + 10))
            .expect("subscribe");
    }
    client.flush().expect("durability barrier");
    leader
}

/// Byte-compares the replica (inside `fs`) against the leader's real
/// on-disk WAL.
fn assert_replica_matches(fs: &CrashFs, replica_dir: &Path, leader_dir: &Path) {
    let shard_dir = leader_dir.join("shard-0");
    let replica_shard = replica_dir.join("shard-0");
    let mut segments = 0;
    for entry in std::fs::read_dir(&shard_dir).expect("leader shard dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with("wal.") && name != "manifest.bin" {
            continue;
        }
        let leader_bytes = std::fs::read(entry.path()).expect("leader file");
        let replica_bytes = fs
            .peek(&replica_shard.join(&name))
            .unwrap_or_else(|| panic!("replica is missing {name}"));
        assert_eq!(
            replica_bytes, leader_bytes,
            "replica diverges from leader in {name}"
        );
        if name.starts_with("wal.") {
            segments += 1;
        }
    }
    assert!(
        segments >= 3,
        "leader produced only {segments} segments; the sweep proves nothing"
    );
}

/// Shipping sweep: power-loss the follower's filesystem at every
/// mutating operation; a resumed follower must converge byte-for-byte.
#[test]
fn shipping_crash_sweep_resumes_to_identical_replica() {
    let dir = std::env::temp_dir().join(format!("psc-fed-ship-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let leader = start_leader(&dir);
    let replica_dir = std::path::PathBuf::from("/replica");

    // Measuring pass: a clean follower syncs to completion.
    let clean = CrashFs::new();
    let mut follower = WalFollower::with_fs(
        leader.local_addr(),
        replica_dir.clone(),
        Some(Duration::from_secs(2)),
        Arc::new(clean.clone()),
    );
    follower.sync().expect("clean sync");
    assert_replica_matches(&clean, &replica_dir, &dir);
    let total = clean.ops();
    assert!(total >= 10, "shipping exercises only {total} fs operations");

    for fail_at in 0..total {
        let fs = CrashFs::new();
        fs.fail_at(fail_at);
        let mut follower = WalFollower::with_fs(
            leader.local_addr(),
            replica_dir.clone(),
            Some(Duration::from_secs(2)),
            Arc::new(fs.clone()),
        );
        assert!(
            follower.sync().is_err(),
            "failpoint {fail_at} never tripped"
        );
        // Power loss: only synced bytes survive. A fresh follower over
        // the survivors must finish the job.
        let survived = fs.power_loss_view();
        let mut resumed = WalFollower::with_fs(
            leader.local_addr(),
            replica_dir.clone(),
            Some(Duration::from_secs(2)),
            Arc::new(survived.clone()),
        );
        resumed
            .sync()
            .unwrap_or_else(|e| panic!("resume after power loss at op {fail_at} failed: {e}"));
        assert_replica_matches(&survived, &replica_dir, &dir);
    }

    leader.stop();
    drop(leader);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Leader death mid-ship: the follower keeps the partial replica, a
/// restarted leader (same WAL, new port) serves the rest, and a fresh
/// follower session over the same replica state converges.
#[test]
fn leader_crash_mid_ship_resumes_after_restart() {
    let dir = std::env::temp_dir().join(format!("psc-fed-shiplead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let s = schema();
    // A leader that crashes partway into serving WAL fetches.
    let mut config = service_config();
    config.data_dir = Some(dir.to_path_buf());
    config.wal_segment_bytes = 256;
    config.snapshot_every = 1_000_000;
    // Admissions buffer per shard and flush as one record; a batch of 1
    // turns every subscribe into its own WAL append so rotation actually
    // happens at the tiny segment size above.
    config.batch_size = 1;
    let leader = FederatedNode::start(s.clone(), config.clone(), fed_config(0, &[], Some(2)))
        .expect("leader");
    let mut client = ServiceClient::connect_binary(leader.local_addr()).expect("connect");
    for i in 0..60i64 {
        client
            .subscribe(SubscriptionId(i as u64), &sub(&s, i, i + 10))
            .expect("subscribe");
    }
    client.flush().expect("durability barrier");
    drop(client);

    let fs = CrashFs::new();
    let replica_dir = std::path::PathBuf::from("/replica");
    let mut follower = WalFollower::with_fs(
        leader.local_addr(),
        replica_dir.clone(),
        Some(Duration::from_secs(2)),
        Arc::new(fs.clone()),
    );
    assert!(
        follower.sync().is_err(),
        "the leader's failpoint must sever the ship mid-flight"
    );
    leader.stop();
    drop(leader);

    // Restart the leader over the same WAL on a new port; a new follower
    // session over the SAME replica filesystem resumes where it left off.
    let leader2 = FederatedNode::start(s, config, fed_config(0, &[], None)).expect("restart");
    let mut resumed = WalFollower::with_fs(
        leader2.local_addr(),
        replica_dir.clone(),
        Some(Duration::from_secs(2)),
        Arc::new(fs.clone()),
    );
    resumed.sync().expect("resume after leader restart");
    assert_replica_matches(&fs, &replica_dir, &dir);

    leader2.stop();
    drop(leader2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The silent-divergence scenario: the follower mirrors the live
/// segment including a tail the leader loses in a crash; recovery
/// truncates the torn tail in place and new appends grow the segment
/// back PAST the follower's mirrored length. A pure length comparison
/// never fires — the follower would append fresh bytes after its stale
/// ones and corrupt the replica. The prefix CRC on every fetch (plus
/// the boot-epoch probe for equal-length segments) must detect the
/// stale prefix, rewind the segment, and reconverge byte-for-byte.
#[test]
fn leader_restart_after_torn_tail_cannot_diverge_replica() {
    let dir = std::env::temp_dir().join(format!("psc-fed-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let s = schema();
    let leader = start_leader(&dir);

    let fs = CrashFs::new();
    let replica_dir = std::path::PathBuf::from("/replica");
    let mut follower = WalFollower::with_fs(
        leader.local_addr(),
        replica_dir.clone(),
        Some(Duration::from_secs(2)),
        Arc::new(fs.clone()),
    );
    follower.sync().expect("initial sync");
    assert_replica_matches(&fs, &replica_dir, &dir);
    leader.stop();
    drop(leader);

    // Crash aftermath: the live (highest) segment loses a torn tail the
    // follower already mirrored.
    let shard_dir = dir.join("shard-0");
    let live = std::fs::read_dir(&shard_dir)
        .expect("shard dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|n| n.starts_with("wal."))
        .max()
        .expect("live segment");
    let live_path = shard_dir.join(&live);
    let len = std::fs::metadata(&live_path).expect("metadata").len();
    assert!(len > 40, "live segment too small to tear ({len} bytes)");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&live_path)
        .expect("open live segment")
        .set_len(len - 30)
        .expect("tear tail");

    // Restart over the torn WAL (recovery truncates to a record
    // boundary and reopens the same segment for append), then append
    // enough records to grow past everything the follower mirrored.
    let mut config = service_config();
    config.data_dir = Some(dir.to_path_buf());
    config.wal_segment_bytes = 256;
    config.snapshot_every = 1_000_000;
    config.batch_size = 1;
    let leader2 =
        FederatedNode::start(s.clone(), config, fed_config(0, &[], None)).expect("restart leader");
    let mut client = ServiceClient::connect_binary(leader2.local_addr()).expect("connect");
    for i in 60..90i64 {
        client
            .subscribe(SubscriptionId(i as u64), &sub(&s, i, i + 10))
            .expect("subscribe after restart");
    }
    client.flush().expect("durability barrier");
    drop(client);

    // A fresh follower session (the restarted leader is on a new port)
    // over the SAME replica bytes must converge, not silently append
    // after the stale torn tail.
    let mut resumed = WalFollower::with_fs(
        leader2.local_addr(),
        replica_dir.clone(),
        Some(Duration::from_secs(2)),
        Arc::new(fs.clone()),
    );
    resumed.sync().expect("sync after leader restart");
    assert_replica_matches(&fs, &replica_dir, &dir);
    // A second pass over the converged replica is a no-op.
    let report = resumed.sync().expect("steady-state sync");
    assert_eq!(report.bytes_fetched, 0, "converged replica refetched bytes");

    leader2.stop();
    drop(leader2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shipping trouble is not evidence of leader death: against a live but
/// non-durable leader, heartbeats land while every sync pass fails
/// (there is no WAL to ship). The follower must keep reporting the peer
/// alive — only counting the failures — instead of tripping a spurious
/// take-over.
#[test]
fn sync_failures_against_live_leader_do_not_trip_failover() {
    let root = std::env::temp_dir().join(format!("psc-fed-synfail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir");
    // No data_dir: the leader answers heartbeats but fails WAL requests.
    let leader =
        FederatedNode::start(schema(), service_config(), fed_config(0, &[], None)).expect("leader");

    let handle = FollowerHandle::spawn(
        leader.local_addr(),
        root.join("replica"),
        Duration::from_millis(50),
        3,
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.sync_failures() < 5 {
        assert!(
            std::time::Instant::now() < deadline,
            "sync failures against a non-durable leader were never counted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        handle.peer_alive(),
        "failed syncs against a live leader must not count as missed heartbeats"
    );
    assert_eq!(handle.syncs_completed(), 0);

    leader.stop();
    drop(leader);
    let _ = std::fs::remove_dir_all(&root);
}

/// Fail-over: a background follower tails the leader's WAL, notices the
/// missed heartbeats once the leader dies, and takes over — the replica
/// opens as an ordinary service answering every subscription the dead
/// leader had acknowledged.
#[test]
fn follower_takes_over_after_missed_heartbeats() {
    let root = std::env::temp_dir().join(format!("psc-fed-takeover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir");
    let s = schema();
    let leader = start_leader(&root.join("leader"));

    let handle = FollowerHandle::spawn(
        leader.local_addr(),
        root.join("replica"),
        Duration::from_millis(50),
        3,
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.syncs_completed() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "follower never completed a sync pass"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(handle.peer_alive(), "leader is up; heartbeats must land");

    leader.stop();
    drop(leader);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.peer_alive() {
        assert!(
            std::time::Instant::now() < deadline,
            "missed heartbeats never crossed the threshold"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Take over: standard recovery over the shipped segments.
    let successor = handle
        .take_over(s.clone(), service_config())
        .expect("take over");
    for i in [0i64, 17, 42, 59] {
        let p = Publication::from_values(&s, vec![i + 5, i + 5]).expect("publication");
        let matched = successor.publish(&p).expect("publish on successor");
        assert!(
            matched.contains(&SubscriptionId(i as u64)),
            "acked subscription {i} must survive fail-over (matched {matched:?})"
        );
    }

    drop(successor);
    let _ = std::fs::remove_dir_all(&root);
}
