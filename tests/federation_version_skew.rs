//! Version-skew tests for the federation additions: the new stats keys
//! decode optionally (a pre-federation peer's stats still parse, and a
//! plain node's response simply omits the `federation` block), and a
//! mixed mesh degrades cleanly — an old node answers unknown broker
//! opcodes with an ordinary error frame instead of desyncing, and keeps
//! serving clients afterwards.

use psc::model::codec::{self, BinFrame, BinaryFramer, BINARY_PREAMBLE};
use psc::model::wire::{FederationStats, Json};
use psc::model::{Publication, Range, Schema, Subscription, SubscriptionId};
use psc::service::federation::{BrokerRequest, FederatedNode, FederationConfig};
use psc::service::{ServiceClient, ServiceConfig, ServiceServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn schema() -> Schema {
    Schema::uniform(2, 0, 99)
}

fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
    Subscription::from_ranges(
        schema,
        vec![
            Range::new(lo, hi).expect("range"),
            Range::new(lo, hi).expect("range"),
        ],
    )
    .expect("subscription")
}

/// The new stats keys are decode-optional one by one: a peer that emits
/// only some of them (or none) parses with zeros, never an error.
#[test]
fn federation_stats_keys_decode_optionally() {
    let partial = Json::parse(r#"{"peers_connected":2,"subs_forwarded":5}"#).expect("parse");
    let stats = FederationStats::from_json(&partial);
    assert_eq!(stats.peers_connected, 2);
    assert_eq!(stats.subs_forwarded, 5);
    assert_eq!(stats.subs_suppressed, 0);
    assert_eq!(stats.segments_shipped, 0);

    assert_eq!(
        FederationStats::from_json(&Json::obj([])),
        FederationStats::default()
    );

    // Round trip: everything emitted is read back exactly.
    let full = FederationStats {
        peers_connected: 1,
        subs_forwarded: 2,
        subs_received: 3,
        subs_suppressed: 4,
        subs_retracted: 5,
        remote_publishes: 6,
        segments_shipped: 7,
    };
    assert_eq!(
        FederationStats::from_json(&Json::Obj(full.to_json_fields())),
        full
    );
}

/// A plain (pre-federation) node's stats response has no `federation`
/// block; a new client sees `None`, not a decode error.
#[test]
fn plain_node_stats_have_no_federation_block() {
    let server =
        ServiceServer::bind("127.0.0.1:0", schema(), ServiceConfig::with_shards(1)).expect("bind");
    let mut client = ServiceClient::connect_binary(server.local_addr()).expect("connect");
    assert_eq!(client.stats_federation().expect("stats"), None);
    server.stop();
}

/// Reads one length-prefixed binary frame off a raw stream.
fn read_frame(stream: &mut TcpStream, framer: &mut BinaryFramer) -> Vec<u8> {
    loop {
        if framer.has_frames() {
            match framer.next_frame().expect("frame ready") {
                BinFrame::Frame(payload) => return payload.to_vec(),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        let mut buf = [0u8; 1024];
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "server closed the connection");
        framer.feed(&buf[..n]);
    }
}

/// An old node receiving the new broker opcodes answers each with an
/// ordinary error frame (0xFF) and stays in sync: a second broker frame
/// on the same connection gets the same clean rejection, not a hang or
/// a dropped connection.
#[test]
fn old_node_rejects_broker_opcodes_without_desyncing() {
    let server =
        ServiceServer::bind("127.0.0.1:0", schema(), ServiceConfig::with_shards(1)).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(&BINARY_PREAMBLE).expect("preamble");
    let mut framer = BinaryFramer::new(1 << 20);
    // Consume the Ready frame; its exact shape is the client's concern.
    let _ready = read_frame(&mut stream, &mut framer);

    for attempt in 0..2 {
        let mut frame = Vec::new();
        codec::write_frame(&mut frame, |out| {
            BrokerRequest::Hello { node_id: 7 }.encode_binary(out);
        });
        stream.write_all(&frame).expect("send broker hello");
        let reply = read_frame(&mut stream, &mut framer);
        assert_eq!(
            reply.first(),
            Some(&0xFF),
            "attempt {attempt}: old node must answer an unknown opcode \
             with an error frame, got {reply:?}"
        );
    }

    // The server is not wedged: a normal client still gets service.
    let mut client = ServiceClient::connect_binary(server.local_addr()).expect("connect");
    let (_, shards) = client.hello().expect("hello");
    assert_eq!(shards, 1);
    server.stop();
}

/// A mixed mesh: a new federated node whose peer is an old plain node.
/// The link never comes up (the old node rejects broker hellos), but the
/// new node keeps serving its own clients, and the old node keeps
/// serving its own — no desync, no crash, clean degradation.
#[test]
fn mixed_mesh_degrades_cleanly() {
    let s = schema();
    let old = ServiceServer::bind("127.0.0.1:0", s.clone(), ServiceConfig::with_shards(1))
        .expect("bind old");
    let mut fed = FederationConfig::new(psc::broker::BrokerId(0));
    fed.peers = vec![(psc::broker::BrokerId(1), old.local_addr())];
    fed.heartbeat_interval = None;
    let mut config = ServiceConfig::with_shards(1);
    config.io_timeout = Some(Duration::from_secs(2));
    let new = FederatedNode::start(s.clone(), config, fed).expect("start new");

    // The broker session is rejected by the old node.
    assert_eq!(new.resync(), 0, "no broker link to a pre-federation node");

    // The new node still acks local work; the forward failure is
    // absorbed (resync heals it if the peer ever upgrades).
    let mut at_new = ServiceClient::connect_binary(new.local_addr()).expect("connect new");
    at_new
        .subscribe(SubscriptionId(1), &sub(&s, 10, 20))
        .expect("subscribe at new");
    let p = Publication::from_values(&s, vec![15, 15]).expect("pub");
    assert_eq!(
        at_new.publish(&p).expect("publish at new"),
        vec![SubscriptionId(1)]
    );
    assert_eq!(new.federation_stats().peers_connected, 0);

    // And the old node is entirely unbothered.
    let mut at_old = ServiceClient::connect_binary(old.local_addr()).expect("connect old");
    at_old
        .subscribe(SubscriptionId(2), &sub(&s, 10, 20))
        .expect("subscribe at old");
    assert_eq!(
        at_old.publish(&p).expect("publish at old"),
        vec![SubscriptionId(2)]
    );

    drop(at_new);
    drop(at_old);
    new.stop();
    old.stop();
}
