//! End-to-end broker-network tests on realistic workloads: delivery
//! completeness for deterministic policies, bounded loss for the
//! probabilistic one, and traffic ordering between policies.

use psc::broker::{BrokerId, CoveringPolicy, Network, Topology};
use psc::model::SubscriptionId;
use psc::workload::{seeded_rng, ComparisonWorkload};
use rand::Rng;

fn build_network(policy: CoveringPolicy, brokers: usize, subs: usize, seed: u64) -> Network {
    let wl = ComparisonWorkload::new(8);
    let schema = wl.schema();
    let mut rng = seeded_rng(seed);
    let topo = Topology::random_tree(brokers, &mut rng);
    let mut net = Network::new(topo, policy, seed ^ 0xF00D);
    for i in 0..subs {
        let at = BrokerId(rng.gen_range(0..brokers));
        net.subscribe(
            at,
            SubscriptionId(i as u64),
            wl.subscription(&schema, &mut rng),
        );
    }
    net
}

#[test]
fn deterministic_policies_lose_nothing_on_random_trees() {
    let wl = ComparisonWorkload::new(8);
    let schema = wl.schema();
    for policy in [CoveringPolicy::Flooding, CoveringPolicy::Pairwise] {
        let mut net = build_network(policy, 15, 120, 9);
        let mut rng = seeded_rng(10);
        for _ in 0..100 {
            let at = BrokerId(rng.gen_range(0..15));
            let p = wl.publication(&schema, &mut rng);
            let mut actual = net.publish(at, &p).delivered_to;
            let mut expected = net.expected_recipients(&p);
            actual.sort_unstable_by_key(|s| s.0);
            expected.sort_unstable_by_key(|s| s.0);
            assert_eq!(actual, expected, "publication {p} from {at}");
        }
    }
}

#[test]
fn group_policy_reduces_traffic_and_rarely_loses() {
    let flooding = build_network(CoveringPolicy::Flooding, 15, 120, 9);
    let pairwise = build_network(CoveringPolicy::Pairwise, 15, 120, 9);
    let mut group = build_network(CoveringPolicy::group(1e-9), 15, 120, 9);

    let f = flooding.metrics();
    let p = pairwise.metrics();
    let g = group.metrics();
    assert!(p.subscription_messages < f.subscription_messages);
    assert!(g.subscription_messages <= p.subscription_messages);
    assert!(g.table_entries <= p.table_entries);

    // With delta = 1e-9 deliveries are complete w.h.p. on this scale.
    let wl = ComparisonWorkload::new(8);
    let schema = wl.schema();
    let mut rng = seeded_rng(11);
    let mut missed = 0usize;
    for _ in 0..100 {
        let at = BrokerId(rng.gen_range(0..15));
        let publ = wl.publication(&schema, &mut rng);
        let actual = group.publish(at, &publ).delivered_to.len();
        let expected = group.expected_recipients(&publ).len();
        missed += expected - actual;
    }
    assert_eq!(missed, 0, "losses despite delta = 1e-9");
}

#[test]
fn star_and_chain_topologies_route_correctly() {
    let wl = ComparisonWorkload::new(8);
    let schema = wl.schema();
    for topo in [Topology::star(10), Topology::chain(10)] {
        let mut rng = seeded_rng(33);
        let mut net = Network::new(topo, CoveringPolicy::Pairwise, 34);
        for i in 0..60 {
            let at = BrokerId(rng.gen_range(0..10));
            net.subscribe(at, SubscriptionId(i), wl.subscription(&schema, &mut rng));
        }
        for _ in 0..60 {
            let at = BrokerId(rng.gen_range(0..10));
            let p = wl.publication(&schema, &mut rng);
            let mut actual = net.publish(at, &p).delivered_to;
            let mut expected = net.expected_recipients(&p);
            actual.sort_unstable_by_key(|s| s.0);
            expected.sort_unstable_by_key(|s| s.0);
            assert_eq!(actual, expected);
        }
    }
}

#[test]
fn suppressed_subscriptions_save_table_state() {
    // Table entries are the broker-memory cost the paper argues covering
    // saves; covering must never *increase* them.
    let flooding = build_network(CoveringPolicy::Flooding, 20, 200, 77);
    let pairwise = build_network(CoveringPolicy::Pairwise, 20, 200, 77);
    let group = build_network(CoveringPolicy::group(1e-6), 20, 200, 77);
    let f = flooding.metrics().table_entries;
    let p = pairwise.metrics().table_entries;
    let g = group.metrics().table_entries;
    assert!(p < f, "pairwise {p} !< flooding {f}");
    assert!(g <= p, "group {g} !<= pairwise {p}");
}
