//! Property tests of the service wire codec under the incremental framer:
//! round-trips survive arbitrary read fragmentation (lines split across
//! reads at random points, down to byte-by-byte), oversized lines are
//! capped mid-stream without desynchronizing framing, and nesting-depth
//! bombs fed through the decoder are rejected instead of overflowing the
//! stack.

use proptest::prelude::*;
use psc::model::wire::{Frame, LineFramer, PublicationDto, SubscriptionDto};
use psc::service::wire::{Request, Response};

prop_compose! {
    fn arb_request()(
        kind in 0usize..6,
        id in 0u64..=u64::MAX,
        ranges in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 0..6),
        values in proptest::collection::vec(-1000i64..1000, 0..6),
    ) -> Request {
        match kind {
            0 => Request::Hello,
            1 => Request::Subscribe(SubscriptionDto { id, ranges }),
            2 => Request::Unsubscribe(id),
            3 => Request::Publish(PublicationDto { values }),
            4 => Request::Flush,
            _ => Request::Stats,
        }
    }
}

prop_compose! {
    fn arb_response()(
        kind in 0usize..4,
        ids in proptest::collection::vec(0u64..=u64::MAX, 0..8),
        removed in proptest::bool::ANY,
    ) -> Response {
        match kind {
            0 => Response::Queued,
            1 => Response::Removed(removed),
            2 => Response::Matched(ids),
            _ => Response::Flushed,
        }
    }
}

/// Feeds `bytes` to `framer` in chunks whose sizes cycle through
/// `chunk_sizes` (0 entries fall back to byte-by-byte), asserting the
/// mid-stream buffering bound the whole way.
fn feed_chunked(framer: &mut LineFramer, bytes: &[u8], chunk_sizes: &[usize], cap: usize) {
    let mut offset = 0;
    let mut i = 0;
    while offset < bytes.len() {
        let size = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, bytes.len() - offset);
        framer.feed(&bytes[offset..offset + size]);
        assert!(
            framer.buffered_bytes() <= cap,
            "framer buffered {} bytes, cap is {cap}",
            framer.buffered_bytes()
        );
        offset += size;
        i += 1;
    }
}

fn drain_lines(framer: &mut LineFramer) -> Vec<Frame> {
    let mut out = Vec::new();
    while let Some(frame) = framer.next_frame() {
        out.push(frame);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A pipeline of requests split across reads at arbitrary points
    /// decodes to exactly the requests that were encoded, in order.
    #[test]
    fn requests_round_trip_through_fragmented_reads(
        requests in proptest::collection::vec(arb_request(), 1..12),
        chunk_sizes in proptest::collection::vec(1usize..40, 1..8),
    ) {
        let mut wire = Vec::new();
        for request in &requests {
            wire.extend_from_slice(request.encode().as_bytes());
            wire.push(b'\n');
        }
        let cap = 1 << 20;
        let mut framer = LineFramer::new(cap);
        feed_chunked(&mut framer, &wire, &chunk_sizes, cap);
        let decoded: Vec<Request> = drain_lines(&mut framer)
            .into_iter()
            .map(|frame| match frame {
                Frame::Line(line) => Request::decode(&line).expect("valid request line"),
                Frame::TooLong { len } => panic!("spurious TooLong of {len} bytes"),
            })
            .collect();
        prop_assert_eq!(decoded, requests);
    }

    /// Same for responses, at the harshest fragmentation: one byte per
    /// read (the client's framer sees this shape under small TCP
    /// segments).
    #[test]
    fn responses_round_trip_byte_by_byte(
        responses in proptest::collection::vec(arb_response(), 1..10),
    ) {
        let mut wire = Vec::new();
        for response in &responses {
            wire.extend_from_slice(response.encode().as_bytes());
            wire.push(b'\n');
        }
        let cap = 1 << 20;
        let mut framer = LineFramer::new(cap);
        for b in &wire {
            framer.feed(std::slice::from_ref(b));
        }
        let decoded: Vec<Response> = drain_lines(&mut framer)
            .into_iter()
            .map(|frame| match frame {
                Frame::Line(line) => Response::decode(&line).expect("valid response line"),
                Frame::TooLong { len } => panic!("spurious TooLong of {len} bytes"),
            })
            .collect();
        prop_assert_eq!(decoded, responses);
    }

    /// An oversized line is reported as `TooLong` with its true length,
    /// never buffers more than the cap (even when fed in fragments), and
    /// does not desynchronize the frames around it.
    #[test]
    fn oversized_lines_are_capped_mid_stream_and_framing_recovers(
        cap in 16usize..128,
        excess in 1usize..4096,
        chunk_sizes in proptest::collection::vec(1usize..64, 1..6),
        request in arb_request(),
    ) {
        let good = request.encode();
        let oversized_len = cap + excess;
        let mut wire = Vec::new();
        wire.extend_from_slice(good.as_bytes());
        wire.push(b'\n');
        wire.extend(std::iter::repeat_n(b'x', oversized_len));
        wire.push(b'\n');
        wire.extend_from_slice(good.as_bytes());
        wire.push(b'\n');

        // The cap must not reject the good line itself in this scenario.
        let cap = cap.max(good.len());
        let mut framer = LineFramer::new(cap);
        feed_chunked(&mut framer, &wire, &chunk_sizes, cap);
        let frames = drain_lines(&mut framer);
        let expected_oversized = if oversized_len > cap {
            Frame::TooLong { len: oversized_len }
        } else {
            Frame::Line("x".repeat(oversized_len))
        };
        prop_assert_eq!(frames, vec![
            Frame::Line(good.clone()),
            expected_oversized,
            Frame::Line(good),
        ]);
    }

    /// A nesting-depth bomb fed byte-by-byte is rejected by the decoder's
    /// depth cap (a `WireError`, not a stack overflow), and the framer
    /// keeps serving the connection afterwards.
    #[test]
    fn depth_bombs_fed_byte_by_byte_are_rejected(
        depth in 65usize..2000,
        close in proptest::bool::ANY,
    ) {
        let mut bomb = String::from("{\"op\":\"publish\",\"values\":");
        bomb.push_str(&"[".repeat(depth));
        if close {
            bomb.push_str(&"]".repeat(depth));
        }
        bomb.push('}');
        bomb.push('\n');
        let mut framer = LineFramer::new(1 << 20);
        for b in bomb.as_bytes() {
            framer.feed(std::slice::from_ref(b));
        }
        framer.feed(b"{\"op\":\"hello\"}\n");
        let frames = drain_lines(&mut framer);
        prop_assert_eq!(frames.len(), 2);
        match &frames[0] {
            Frame::Line(line) => {
                prop_assert!(
                    Request::decode(line).is_err(),
                    "depth bomb of {} must not decode", depth
                );
            }
            Frame::TooLong { .. } => panic!("bomb fits the line cap"),
        }
        match &frames[1] {
            Frame::Line(line) => {
                prop_assert_eq!(Request::decode(line).unwrap(), Request::Hello);
            }
            Frame::TooLong { .. } => panic!("hello line is small"),
        }
    }

    /// Arbitrary garbage bytes never panic the framer or the decoder:
    /// every completed frame either decodes or returns a structured
    /// error.
    #[test]
    fn garbage_bytes_never_panic_the_codec(
        garbage in proptest::collection::vec(0u8..=255, 0..512),
        chunk_sizes in proptest::collection::vec(1usize..32, 1..5),
    ) {
        let cap = 256;
        let mut framer = LineFramer::new(cap);
        feed_chunked(&mut framer, &garbage, &chunk_sizes, cap);
        framer.finish();
        for frame in drain_lines(&mut framer) {
            if let Frame::Line(line) = frame {
                let _ = Request::decode(&line); // must not panic
                let _ = Response::decode(&line);
            }
        }
    }
}
