//! Relative-link checker for the operator documentation.
//!
//! Scans `README.md` and every file under `docs/` for Markdown links and
//! asserts each *relative* target exists on disk, so renames and typos
//! fail CI instead of silently 404-ing for readers. External links
//! (`http(s)://`, `mailto:`) and pure in-page anchors (`#...`) are out of
//! scope — this is a filesystem check, not a network crawler.

use std::path::{Path, PathBuf};

/// Extracts Markdown link targets — the `target` of `[text](target)` and
/// `![alt](target)` — from one document. A fence-aware scan would be
/// overkill: a dead-looking path inside a code block is worth flagging
/// too, and the repo's docs quote no such paths.
fn link_targets(markdown: &str) -> Vec<String> {
    let bytes = markdown.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(len) = markdown[start..].find(')') {
                let target = markdown[start..start + len].trim();
                // Inline titles: `](path "title")`.
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    targets.push(target.to_string());
                }
                i = start + len;
            }
        }
        i += 1;
    }
    targets
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

fn docs_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    files
}

#[test]
fn relative_links_in_docs_resolve() {
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in docs_files() {
        let content = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("doc files live in a directory");
        for target in link_targets(&content) {
            if is_external(&target) {
                continue;
            }
            // Strip an in-page anchor: `PROTOCOL.md#requests` checks the
            // file only (heading anchors are renderer-specific).
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: {target}", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links in docs:\n  {}",
        broken.join("\n  ")
    );
    assert!(
        checked >= 3,
        "the checker should find the docs cross-links; did the extractor break? (found {checked})"
    );
}

#[test]
fn extractor_finds_links_and_skips_externals() {
    let md = "See [a](docs/A.md), ![img](img.png \"t\"), [ext](https://x.y), \
              [anchor](#here), and [b](B.md#section).";
    let targets = link_targets(md);
    assert_eq!(
        targets,
        vec![
            "docs/A.md",
            "img.png",
            "https://x.y",
            "#here",
            "B.md#section"
        ]
    );
    assert!(is_external("https://x.y"));
    assert!(is_external("#here"));
    assert!(!is_external("docs/A.md"));
}
