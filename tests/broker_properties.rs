//! Property-based tests of the broker network: delivery completeness and
//! traffic ordering hold for arbitrary trees, subscription placements and
//! publication contents — not just the fixed seeds of the example tests.

use proptest::prelude::*;
use psc::broker::{BrokerId, CoveringPolicy, Network, Topology};
use psc::model::{Publication, Range, Schema, Subscription, SubscriptionId};
use psc::workload::seeded_rng;

fn schema2() -> Schema {
    Schema::uniform(2, 0, 49)
}

prop_compose! {
    fn arb_sub()(lo0 in 0i64..50, w0 in 0i64..25, lo1 in 0i64..50, w1 in 0i64..25)
        -> Subscription {
        let schema = schema2();
        Subscription::from_ranges(&schema, vec![
            Range::new(lo0, (lo0 + w0).min(49)).unwrap(),
            Range::new(lo1, (lo1 + w1).min(49)).unwrap(),
        ]).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deterministic covering policies deliver exactly the expected set on
    /// arbitrary random trees.
    #[test]
    fn deterministic_policies_complete_on_arbitrary_trees(
        tree_seed in 0u64..10_000,
        subs in proptest::collection::vec((arb_sub(), 0usize..12), 1..15),
        pubs in proptest::collection::vec((0i64..50, 0i64..50, 0usize..12), 1..8),
        pairwise in proptest::bool::ANY,
    ) {
        let brokers = 12;
        let schema = schema2();
        let policy = if pairwise { CoveringPolicy::Pairwise } else { CoveringPolicy::Flooding };
        let mut rng = seeded_rng(tree_seed);
        let topo = Topology::random_tree(brokers, &mut rng);
        let mut net = Network::new(topo, policy, tree_seed ^ 0xABC);
        for (i, (sub, at)) in subs.iter().enumerate() {
            net.subscribe(BrokerId(at % brokers), SubscriptionId(i as u64), sub.clone());
        }
        for (x, y, at) in pubs {
            let p = Publication::from_values(&schema, vec![x, y]).unwrap();
            let mut actual = net.publish(BrokerId(at % brokers), &p).delivered_to;
            let mut expected = net.expected_recipients(&p);
            actual.sort_unstable_by_key(|s| s.0);
            expected.sort_unstable_by_key(|s| s.0);
            prop_assert_eq!(actual, expected);
        }
    }

    /// Completeness survives arbitrary interleavings of unsubscriptions
    /// (promotion of suppressed subscriptions must kick in).
    #[test]
    fn completeness_survives_unsubscription(
        tree_seed in 0u64..10_000,
        subs in proptest::collection::vec((arb_sub(), 0usize..10), 2..12),
        kill_mask in proptest::collection::vec(proptest::bool::ANY, 2..12),
        probe in (0i64..50, 0i64..50, 0usize..10),
    ) {
        let brokers = 10;
        let schema = schema2();
        let mut rng = seeded_rng(tree_seed);
        let topo = Topology::random_tree(brokers, &mut rng);
        let mut net = Network::new(topo, CoveringPolicy::Pairwise, tree_seed ^ 0xDEF);
        for (i, (sub, at)) in subs.iter().enumerate() {
            net.subscribe(BrokerId(at % brokers), SubscriptionId(i as u64), sub.clone());
        }
        for (i, kill) in kill_mask.iter().enumerate() {
            if *kill && i < subs.len() {
                prop_assert!(net.unsubscribe(SubscriptionId(i as u64)));
            }
        }
        let (x, y, at) = probe;
        let p = Publication::from_values(&schema, vec![x, y]).unwrap();
        let mut actual = net.publish(BrokerId(at % brokers), &p).delivered_to;
        let mut expected = net.expected_recipients(&p);
        actual.sort_unstable_by_key(|s| s.0);
        expected.sort_unstable_by_key(|s| s.0);
        prop_assert_eq!(actual, expected);
    }

    /// Covering traffic ordering: pairwise never sends more subscription
    /// messages than flooding; group (strict delta) never more than pairwise.
    #[test]
    fn traffic_ordering_holds(
        tree_seed in 0u64..10_000,
        subs in proptest::collection::vec((arb_sub(), 0usize..12), 1..15),
    ) {
        let brokers = 12;
        let run = |policy: CoveringPolicy| {
            let mut rng = seeded_rng(tree_seed);
            let topo = Topology::random_tree(brokers, &mut rng);
            let mut net = Network::new(topo, policy, tree_seed ^ 0x123);
            for (i, (sub, at)) in subs.iter().enumerate() {
                net.subscribe(BrokerId(at % brokers), SubscriptionId(i as u64), sub.clone());
            }
            net.metrics().subscription_messages
        };
        let flooding = run(CoveringPolicy::Flooding);
        let pairwise = run(CoveringPolicy::Pairwise);
        let group = run(CoveringPolicy::group(1e-9));
        prop_assert!(pairwise <= flooding);
        prop_assert!(group <= pairwise);
    }
}
