//! Integration tests of the readiness-based reactor front-end: the
//! many-idle-connections scenario the old thread-per-connection design
//! could not even open, plus the protection policies (slow-consumer
//! backpressure, idle reaping, connection cap) and client I/O timeouts.

use psc::matcher::NaiveMatcher;
use psc::model::{Publication, Schema, Subscription, SubscriptionId};
use psc::service::{ServiceClient, ServiceConfig, ServiceServer};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Threads of this test process right now (Linux: one entry per task).
fn process_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("read /proc/self/task")
        .count()
}

fn wide_sub(schema: &Schema) -> Subscription {
    Subscription::builder(schema)
        .range("x0", 0, 99)
        .range("x1", 0, 99)
        .build()
        .expect("build subscription")
}

/// Waits (with a deadline) until `probe` returns true.
fn eventually(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    probe()
}

/// The acceptance scenario: ≥1000 concurrently connected subscribers are
/// held by ONE reactor thread (thread count stays O(shards), not
/// O(connections)) while publishes still match naive ground truth.
#[test]
fn thousand_idle_subscriber_connections_on_one_reactor_thread() {
    const SUBSCRIBERS: usize = 1_000;
    let schema = Schema::uniform(2, 0, 99);
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema.clone(),
        ServiceConfig {
            shards: 2,
            batch_size: 64,
            max_connections: 2 * SUBSCRIBERS,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Baseline AFTER server start: reactor + shard threads are counted in
    // the baseline, so connection-driven growth is isolated.
    let baseline_threads = process_thread_count();

    let mut naive = NaiveMatcher::new();
    let mut subscribers = Vec::with_capacity(SUBSCRIBERS);
    for i in 0..SUBSCRIBERS {
        let mut client = ServiceClient::connect(addr).expect("connect subscriber");
        let lo = ((i * 7) % 90) as i64;
        let sub = Subscription::builder(&schema)
            .range("x0", lo, lo + 9)
            .range("x1", 0, 99)
            .build()
            .expect("build subscription");
        client
            .subscribe(SubscriptionId(i as u64), &sub)
            .expect("subscribe over TCP");
        naive.insert(SubscriptionId(i as u64), sub);
        subscribers.push(client); // keep the connection open and idle
    }

    let metrics = server.reactor_metrics();
    assert!(
        metrics.connections_current >= SUBSCRIBERS as u64,
        "reactor should hold all {SUBSCRIBERS} subscriber connections, \
         holds {}",
        metrics.connections_current
    );

    let after_threads = process_thread_count();
    assert!(
        after_threads <= baseline_threads + 2,
        "thread count must not grow with connections: \
         {baseline_threads} before, {after_threads} after {SUBSCRIBERS} connections"
    );

    // With 1000 idle subscribers attached, publishing still works and
    // matches ground truth exactly.
    let mut publisher = ServiceClient::connect(addr).expect("connect publisher");
    publisher.flush().expect("flush tail batches");
    for v in (0..100).step_by(7) {
        let p = Publication::builder(&schema)
            .set("x0", v)
            .set("x1", 50)
            .build()
            .expect("build publication");
        let mut truth = naive.matches(&p);
        truth.sort_unstable();
        assert_eq!(
            publisher.publish(&p).expect("publish over TCP"),
            truth,
            "match set diverged with 1000 idle connections attached (x0={v})"
        );
    }

    drop(subscribers);
    assert!(
        eventually(Duration::from_secs(10), || {
            server.reactor_metrics().connections_current <= 1
        }),
        "reactor should observe the mass disconnect"
    );
    server.stop();
}

/// A subscriber that stops reading gets its bounded write queue overrun
/// and is disconnected, without stalling publishes on other connections.
#[test]
fn slow_consumer_is_disconnected_without_stalling_others() {
    let schema = Schema::uniform(2, 0, 99);
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema.clone(),
        ServiceConfig {
            shards: 1,
            batch_size: 64,
            max_write_buffer_bytes: 64 * 1024,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // 1000 everything-matching subscriptions make each publish response
    // several KB, so an unread backlog builds fast.
    let mut setup = ServiceClient::connect(addr).expect("connect setup");
    for i in 0..1_000u64 {
        setup
            .subscribe(SubscriptionId(i), &wide_sub(&schema))
            .expect("subscribe");
    }
    setup.flush().expect("flush");

    // The slow consumer: keep pipelining publishes, never read a byte.
    // Each ~31-byte request draws a ~4.5 KiB response (1000 matched ids),
    // so the unread response volume grows ~150x faster than the requests;
    // once it exceeds what the kernel's socket buffers absorb, the
    // server-side backlog crosses the 64 KiB bound and the policy fires.
    // (Kernel autotuning can absorb tens of MB, hence the pump loop
    // rather than a fixed volume.)
    let mut slow = TcpStream::connect(addr).expect("connect slow consumer");
    let batch = "{\"op\":\"publish\",\"values\":[5,5]}\n".repeat(500);
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if server.reactor_metrics().slow_consumer_disconnects >= 1 {
            break;
        }
        // A failed write means the server already reset this connection.
        if slow.write_all(batch.as_bytes()).is_err() {
            break;
        }
    }
    assert!(
        eventually(Duration::from_secs(10), || {
            server.reactor_metrics().slow_consumer_disconnects >= 1
        }),
        "server never applied the slow-consumer policy: {:?}",
        server.reactor_metrics()
    );

    // The victim's socket is dead: draining it hits EOF/reset in bounded
    // time rather than hanging.
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    let mut sink = [0u8; 64 * 1024];
    loop {
        match slow.read(&mut sink) {
            Ok(0) => break,    // EOF: server closed
            Ok(_) => continue, // draining what was flushed pre-disconnect
            Err(_) => break,   // reset also proves the disconnect
        }
    }

    // Other connections were never stalled: a healthy publisher still
    // gets exact results.
    let mut healthy = ServiceClient::connect(addr).expect("connect healthy");
    let p = Publication::builder(&schema)
        .set("x0", 5)
        .set("x1", 5)
        .build()
        .expect("build publication");
    let matched = healthy.publish(&p).expect("publish on healthy connection");
    assert_eq!(matched.len(), 1_000, "all wide subscriptions match");

    server.stop();
}

/// Connections silent past `idle_timeout` are reaped by the timer wheel;
/// a fresh connection still gets served afterwards.
#[test]
fn idle_connections_are_reaped_by_the_timeout_wheel() {
    let schema = Schema::uniform(2, 0, 99);
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema.clone(),
        ServiceConfig {
            shards: 1,
            idle_timeout: Some(Duration::from_millis(200)),
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut idlers = Vec::new();
    for _ in 0..5 {
        let mut client = ServiceClient::connect(addr).expect("connect idler");
        client.hello().expect("hello");
        idlers.push(client);
    }

    assert!(
        eventually(Duration::from_secs(10), || {
            server.reactor_metrics().idle_disconnects >= 5
        }),
        "idle connections were not reaped: {:?}",
        server.reactor_metrics()
    );

    // A reaped client's next request fails (EOF/reset), not hangs.
    let mut reaped = idlers.pop().expect("an idler");
    assert!(
        reaped.hello().is_err(),
        "request on a reaped connection must fail"
    );

    // The server itself is healthy: new connections are served.
    let mut fresh = ServiceClient::connect(addr).expect("connect fresh");
    fresh.hello().expect("hello after reaping");
    server.stop();
}

/// Accepts beyond `max_connections` are closed immediately; capacity
/// freed by a disconnect is usable again.
#[test]
fn connection_cap_rejects_excess_connections() {
    let schema = Schema::uniform(2, 0, 99);
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema,
        ServiceConfig {
            shards: 1,
            max_connections: 8,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut held = Vec::new();
    for _ in 0..8 {
        let mut client = ServiceClient::connect(addr).expect("connect");
        client.hello().expect("hello");
        held.push(client);
    }

    // The 9th connect succeeds at the TCP level (the listener accepts to
    // enforce the cap) but is closed before any request is served.
    let mut ninth = ServiceClient::connect(addr).expect("TCP connect");
    assert!(
        ninth.hello().is_err(),
        "connection beyond the cap must not be served"
    );
    assert!(
        server.reactor_metrics().connections_rejected_at_cap >= 1,
        "cap rejection must be counted: {:?}",
        server.reactor_metrics()
    );

    // Freeing one slot lets a new client in.
    drop(held.pop());
    assert!(
        eventually(Duration::from_secs(10), || {
            server.reactor_metrics().connections_current < 8
        }),
        "disconnect not observed"
    );
    let mut replacement = ServiceClient::connect(addr).expect("connect");
    replacement.hello().expect("hello after a slot freed");
    server.stop();
}

/// A client that pipelines requests and then shuts down its write half
/// (classic pipeline-then-shutdown) still receives every response before
/// the server closes: the reactor drains the backlog instead of dropping
/// it on peer EOF.
#[test]
fn half_closed_connection_receives_every_pipelined_response() {
    const PUBLISHES: usize = 100;
    let schema = Schema::uniform(2, 0, 99);
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema.clone(),
        ServiceConfig {
            shards: 1,
            batch_size: 64,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Wide subscriptions make each response ~KBs, so the backlog spans
    // multiple flushes.
    let mut setup = ServiceClient::connect(addr).expect("connect setup");
    for i in 0..500u64 {
        setup
            .subscribe(SubscriptionId(i), &wide_sub(&schema))
            .expect("subscribe");
    }
    setup.flush().expect("flush");

    let mut pipeliner = TcpStream::connect(addr).expect("connect pipeliner");
    pipeliner
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let requests = "{\"op\":\"publish\",\"values\":[5,5]}\n".repeat(PUBLISHES);
    pipeliner
        .write_all(requests.as_bytes())
        .expect("pipeline publishes");
    pipeliner
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close write side");

    let mut received = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match pipeliner.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => received.extend_from_slice(&buf[..n]),
            Err(e) => panic!("reading pipelined responses failed: {e}"),
        }
    }
    let responses = received.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(
        responses, PUBLISHES,
        "every pipelined request must get its response before the close"
    );
    server.stop();
}

/// A hung server (accepts, never responds) surfaces as a timeout error
/// on the client instead of wedging the caller forever.
#[test]
fn client_read_timeout_fires_against_a_hung_server() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind silent listener");
    let addr = listener.local_addr().expect("local addr");
    // Keep accepting (and holding) connections, never answering.
    let silent = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
            if held.len() >= 2 {
                break;
            }
        }
        std::thread::sleep(Duration::from_secs(2));
    });

    let mut client =
        ServiceClient::connect_with(addr, Some(Duration::from_millis(200))).expect("connect");
    let start = Instant::now();
    let err = client.hello().expect_err("hello against a silent server");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout must fire promptly, took {:?}",
        start.elapsed()
    );
    let message = err.to_string();
    assert!(
        message.contains("timed out"),
        "error should identify the timeout: {message}"
    );
    // Unblock the accept loop so the thread can be joined.
    let _ = TcpStream::connect(addr);
    silent.join().expect("silent server thread");
}

/// An oversized request line (streamed in small chunks, crossing the cap
/// mid-stream) draws an error response and the connection keeps working.
#[test]
fn oversized_request_line_is_rejected_mid_stream_and_connection_survives() {
    let schema = Schema::uniform(2, 0, 99);
    let server = ServiceServer::bind("127.0.0.1:0", schema, ServiceConfig::with_shards(1))
        .expect("bind loopback");
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    // Stream > 1 MiB of an unterminated line in 64 KiB chunks.
    let chunk = vec![b'x'; 64 * 1024];
    for _ in 0..20 {
        raw.write_all(&chunk).expect("stream oversized line");
    }
    raw.write_all(b"\n").expect("terminate oversized line");
    raw.write_all(b"{\"op\":\"hello\"}\n")
        .expect("valid request");

    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    while response.iter().filter(|&&b| b == b'\n').count() < 2 {
        let n = raw.read(&mut buf).expect("read responses");
        assert!(n > 0, "server closed instead of answering");
        response.extend_from_slice(&buf[..n]);
    }
    let text = String::from_utf8_lossy(&response);
    let mut lines = text.lines();
    let first = lines.next().expect("error response line");
    assert!(
        first.contains("\"ok\":false") && first.contains("exceeds"),
        "oversized line should draw an error response: {first}"
    );
    let second = lines.next().expect("hello response line");
    assert!(
        second.contains("\"ok\":true") && second.contains("shards"),
        "connection should keep serving after the oversized line: {second}"
    );
    assert!(server.reactor_metrics().oversized_lines >= 1);
    server.stop();
}
