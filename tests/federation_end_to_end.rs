//! End-to-end federation: a 3-node broker chain A — B — C serving real
//! clients over both wire protocols, with a mid-run restart of the
//! middle node (WAL recovery + re-forwarded subscriptions), checked
//! against a single-node reference for delivery equivalence.

use psc::broker::{BrokerId, CoveringPolicy};
use psc::model::{Publication, Range, Schema, Subscription, SubscriptionId};
use psc::service::federation::{FederatedNode, FederationConfig};
use psc::service::{ClientProtocol, PubSubService, ServiceClient, ServiceConfig};
use std::net::SocketAddr;
use std::path::Path;
use std::time::Duration;

fn schema() -> Schema {
    Schema::uniform(2, 0, 99)
}

fn sub(schema: &Schema, lo0: i64, hi0: i64, lo1: i64, hi1: i64) -> Subscription {
    Subscription::from_ranges(
        schema,
        vec![
            Range::new(lo0, hi0).expect("range"),
            Range::new(lo1, hi1).expect("range"),
        ],
    )
    .expect("subscription")
}

fn publication(schema: &Schema, v0: i64, v1: i64) -> Publication {
    Publication::from_values(schema, vec![v0, v1]).expect("publication")
}

/// An address no node listens on — every peer is re-pointed via
/// `set_peer_addr` once real ports are known.
fn dummy_addr() -> SocketAddr {
    "127.0.0.1:9".parse().expect("addr")
}

fn fed_config(node_id: usize, peers: &[usize]) -> FederationConfig {
    FederationConfig {
        node_id: BrokerId(node_id),
        listen: "127.0.0.1:0".to_string(),
        peers: peers.iter().map(|&p| (BrokerId(p), dummy_addr())).collect(),
        policy: CoveringPolicy::Pairwise,
        seed: 7,
        heartbeat_interval: Some(Duration::from_millis(100)),
        fail_after_ops: None,
    }
}

fn service_config() -> ServiceConfig {
    let mut config = ServiceConfig::with_shards(1);
    config.io_timeout = Some(Duration::from_secs(5));
    config
}

/// Starts the chain A(0) — B(1) — C(2) and wires every link's real
/// address. `b_data_dir` makes the middle node durable.
fn start_chain(b_data_dir: Option<&Path>) -> (FederatedNode, FederatedNode, FederatedNode) {
    let a = FederatedNode::start(schema(), service_config(), fed_config(0, &[1])).expect("start A");
    let mut b_service = service_config();
    b_service.data_dir = b_data_dir.map(Path::to_path_buf);
    let b = FederatedNode::start(schema(), b_service, fed_config(1, &[0, 2])).expect("start B");
    let c = FederatedNode::start(schema(), service_config(), fed_config(2, &[1])).expect("start C");
    wire_chain(&a, &b, &c);
    (a, b, c)
}

fn wire_chain(a: &FederatedNode, b: &FederatedNode, c: &FederatedNode) {
    a.set_peer_addr(BrokerId(1), b.local_addr());
    b.set_peer_addr(BrokerId(0), a.local_addr());
    b.set_peer_addr(BrokerId(2), c.local_addr());
    c.set_peer_addr(BrokerId(1), b.local_addr());
}

fn connect(node: &FederatedNode, protocol: ClientProtocol) -> ServiceClient {
    match protocol {
        ClientProtocol::Json => ServiceClient::connect(node.local_addr()).expect("connect json"),
        ClientProtocol::Binary => {
            ServiceClient::connect_binary(node.local_addr()).expect("connect binary")
        }
    }
}

/// The single-node naive reference: the same subscriptions in one plain
/// service must match the same ids.
fn reference_matches(
    subs: &[(u64, Subscription)],
    pubs: &[Publication],
) -> Vec<Vec<SubscriptionId>> {
    let service = PubSubService::open(schema(), service_config()).expect("reference");
    for (id, sub) in subs {
        service
            .subscribe(SubscriptionId(*id), sub.clone())
            .expect("reference subscribe");
    }
    service.flush();
    pubs.iter()
        .map(|p| {
            let mut ids = service.publish(p).expect("reference publish");
            ids.sort_unstable();
            ids
        })
        .collect()
}

fn run_chain_delivery(protocol: ClientProtocol) {
    let (a, b, c) = start_chain(None);
    let s = schema();

    // Subscriber on C, publisher on A: interest must cross two hops.
    let mut subscriber = connect(&c, protocol);
    let narrow = sub(&s, 10, 20, 10, 20);
    let broad = sub(&s, 0, 50, 0, 50);
    subscriber
        .subscribe(SubscriptionId(1), &narrow)
        .expect("subscribe narrow");
    subscriber
        .subscribe(SubscriptionId(2), &broad)
        .expect("subscribe broad");

    let mut publisher = connect(&a, protocol);
    let pubs = [
        publication(&s, 15, 15),
        publication(&s, 40, 40),
        publication(&s, 90, 90),
    ];
    let subs: Vec<(u64, Subscription)> = vec![(1, narrow.clone()), (2, broad.clone())];
    let expected = reference_matches(&subs, &pubs);
    for (p, want) in pubs.iter().zip(&expected) {
        let mut got = publisher.publish(p).expect("publish");
        got.sort_unstable();
        assert_eq!(&got, want, "mesh delivery must equal the flat reference");
    }

    // The broad subscription covers the narrow one, so B and A each saw
    // a single forwarded subscription stream with covering applied.
    let stats_b = b.federation_stats();
    assert!(
        stats_b.subs_received >= 1,
        "B must have received forwarded interest"
    );

    drop(subscriber);
    drop(publisher);
    a.stop();
    b.stop();
    c.stop();
}

#[test]
fn chain_delivers_over_json() {
    run_chain_delivery(ClientProtocol::Json);
}

#[test]
fn chain_delivers_over_binary() {
    run_chain_delivery(ClientProtocol::Binary);
}

#[test]
fn covering_suppresses_upstream_forwarding() {
    let (a, b, c) = start_chain(None);
    let s = schema();

    let mut subscriber = connect(&c, ClientProtocol::Binary);
    // Broad first, then narrow ones it covers: only the broad interest
    // may cross toward B.
    subscriber
        .subscribe(SubscriptionId(10), &sub(&s, 0, 80, 0, 80))
        .expect("broad");
    for (i, lo) in [(11u64, 5i64), (12, 20), (13, 40)] {
        subscriber
            .subscribe(SubscriptionId(i), &sub(&s, lo, lo + 10, lo, lo + 10))
            .expect("narrow");
    }

    let (forwarded, suppressed) = c.link_tables(BrokerId(1));
    assert_eq!(
        forwarded.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
        vec![10],
        "only the covering subscription crosses the uplink"
    );
    assert_eq!(suppressed.len(), 3, "the covered three are suppressed");

    let stats = c.federation_stats();
    assert_eq!(stats.subs_forwarded, 1);
    assert_eq!(stats.subs_suppressed, 3);
    assert!(
        stats.subs_forwarded < 4,
        "control traffic must shrink under covering"
    );

    // Deliveries are unaffected: a publication inside a covered narrow
    // subscription still reaches it from the far end of the chain.
    let mut publisher = connect(&a, ClientProtocol::Binary);
    let mut got = publisher
        .publish(&publication(&s, 25, 25))
        .expect("publish");
    got.sort_unstable();
    assert_eq!(
        got,
        vec![SubscriptionId(10), SubscriptionId(12)],
        "covered subscriptions still match"
    );

    drop(subscriber);
    drop(publisher);
    a.stop();
    b.stop();
    c.stop();
}

#[test]
fn middle_node_restart_recovers_and_resyncs() {
    let dir = std::env::temp_dir().join(format!("psc-fed-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let (a, b, c) = start_chain(Some(&dir));
    let s = schema();

    let mut subscriber = connect(&c, ClientProtocol::Json);
    subscriber
        .subscribe(SubscriptionId(1), &sub(&s, 10, 30, 10, 30))
        .expect("subscribe before restart");
    // A subscriber directly on B: its interest must survive B's restart
    // through WAL recovery.
    let mut b_subscriber = connect(&b, ClientProtocol::Binary);
    b_subscriber
        .subscribe(SubscriptionId(2), &sub(&s, 60, 70, 60, 70))
        .expect("subscribe on B");
    b_subscriber.flush().expect("durability barrier");
    drop(b_subscriber);

    let mut publisher = connect(&a, ClientProtocol::Json);
    let mut got = publisher
        .publish(&publication(&s, 20, 20))
        .expect("publish before restart");
    got.sort_unstable();
    assert_eq!(got, vec![SubscriptionId(1)]);

    // Kill B mid-run and bring it back on a NEW port over the same data
    // directory (a fresh port avoids TIME_WAIT collisions; peers are
    // re-pointed, exactly like a supervisor would).
    b.stop();
    drop(b);
    let mut b_service = service_config();
    b_service.data_dir = Some(dir.clone());
    let b2 = FederatedNode::start(schema(), b_service, fed_config(1, &[0, 2])).expect("restart B");
    wire_chain(&a, &b2, &c);
    // Force the links up now; a heartbeat pass would do the same within
    // its interval.
    assert_eq!(a.resync(), 1, "A must re-reach the restarted B");
    assert_eq!(c.resync(), 1, "C must re-reach the restarted B");
    assert!(b2.resync() >= 1, "B must re-reach at least one neighbor");

    // B recovered its durable subscription and C's interest was
    // re-forwarded by the resync: publishes from A see both again.
    let mut got = publisher
        .publish(&publication(&s, 20, 20))
        .expect("publish after restart");
    got.sort_unstable();
    assert_eq!(
        got,
        vec![SubscriptionId(1)],
        "re-forwarded interest must survive the restart"
    );
    let mut got = publisher
        .publish(&publication(&s, 65, 65))
        .expect("publish to recovered sub");
    got.sort_unstable();
    assert_eq!(
        got,
        vec![SubscriptionId(2)],
        "B's durable subscription must survive the restart"
    );

    // New subscriptions keep flowing after the restart.
    subscriber
        .subscribe(SubscriptionId(3), &sub(&s, 80, 90, 80, 90))
        .expect("subscribe after restart");
    let mut got = publisher
        .publish(&publication(&s, 85, 85))
        .expect("publish after new subscribe");
    got.sort_unstable();
    assert_eq!(got, vec![SubscriptionId(3)]);

    drop(subscriber);
    drop(publisher);
    a.stop();
    b2.stop();
    c.stop();
    drop((a, b2, c));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_id_with_different_filter_is_rejected_not_swallowed() {
    let (a, b, c) = start_chain(None);
    let s = schema();

    // C's interest crosses to B; a B-local client then reuses the id
    // with a DIFFERENT filter. Before the conflict check, B treated any
    // seen id as an idempotent duplicate and acked it — leaving the
    // client subscribed nowhere.
    let mut at_c = connect(&c, ClientProtocol::Binary);
    at_c.subscribe(SubscriptionId(1), &sub(&s, 10, 20, 10, 20))
        .expect("subscribe at C");

    let mut at_b = connect(&b, ClientProtocol::Binary);
    assert!(
        at_b.subscribe(SubscriptionId(1), &sub(&s, 60, 70, 60, 70))
            .is_err(),
        "an id collision with a different filter must be an error, not a silent ack"
    );
    // The colliding filter installed nothing: publications inside it
    // match nobody, while the original keeps matching.
    let mut publisher = connect(&a, ClientProtocol::Binary);
    assert_eq!(
        publisher
            .publish(&publication(&s, 65, 65))
            .expect("publish into rejected filter"),
        Vec::<SubscriptionId>::new(),
        "the rejected filter must not be routable"
    );
    assert_eq!(
        publisher
            .publish(&publication(&s, 15, 15))
            .expect("publish into original filter"),
        vec![SubscriptionId(1)],
        "the original subscription must be untouched"
    );
    // An exact retransmission of the original body stays idempotent.
    at_c.subscribe(SubscriptionId(1), &sub(&s, 10, 20, 10, 20))
        .expect("exact resend must ack idempotently");

    drop(at_c);
    drop(at_b);
    drop(publisher);
    a.stop();
    b.stop();
    c.stop();
}

#[test]
fn unsubscribe_retracts_across_the_mesh() {
    let (a, b, c) = start_chain(None);
    let s = schema();

    let mut subscriber = connect(&c, ClientProtocol::Binary);
    subscriber
        .subscribe(SubscriptionId(1), &sub(&s, 0, 40, 0, 40))
        .expect("subscribe");
    let mut publisher = connect(&a, ClientProtocol::Binary);
    assert_eq!(
        publisher.publish(&publication(&s, 5, 5)).expect("publish"),
        vec![SubscriptionId(1)]
    );

    assert!(subscriber
        .unsubscribe(SubscriptionId(1))
        .expect("unsubscribe"));
    assert_eq!(
        publisher
            .publish(&publication(&s, 5, 5))
            .expect("publish after retract"),
        Vec::<SubscriptionId>::new(),
        "retract must propagate to every node"
    );
    let stats = c.federation_stats();
    assert!(
        stats.subs_retracted >= 1,
        "retract decision must be counted"
    );

    drop(subscriber);
    drop(publisher);
    a.stop();
    b.stop();
    c.stop();
}

#[test]
fn federation_stats_ride_the_stats_response() {
    let (a, b, c) = start_chain(None);
    let s = schema();

    let mut subscriber = connect(&c, ClientProtocol::Json);
    subscriber
        .subscribe(SubscriptionId(1), &sub(&s, 0, 30, 0, 30))
        .expect("subscribe");

    let fed = subscriber
        .stats_federation()
        .expect("stats round trip")
        .expect("federated node must attach federation stats");
    assert_eq!(fed.subs_forwarded, 1);

    // The same scrape over binary, against a different node.
    let mut b_client = connect(&b, ClientProtocol::Binary);
    let fed_b = b_client
        .stats_federation()
        .expect("stats round trip")
        .expect("federated node must attach federation stats");
    assert!(
        fed_b.subs_received >= 1,
        "B received C's forwarded interest"
    );

    drop(subscriber);
    drop(b_client);
    a.stop();
    b.stop();
    c.stop();
}
