//! End-to-end tests of the sharded TCP service: concurrent subscribers and
//! publishers drive a real `ServiceServer` over loopback TCP, and the
//! shard-merged match results are compared against `matcher::naive` ground
//! truth on the same workload. Every scenario runs twice — once over the
//! JSON line protocol and once over the length-prefixed binary protocol —
//! so both wire formats are held to the same ground truth.

use psc::matcher::NaiveMatcher;
use psc::model::{Publication, Schema, Subscription, SubscriptionId};
use psc::service::{ClientProtocol, ServiceClient, ServiceConfig, ServiceServer};
use std::sync::Arc;

/// The paper's uniform workload, shared with the `service_throughput`
/// bench so test and bench drive the same distribution.
fn uniform_workload(
    m: usize,
    subs: usize,
    pubs: usize,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    psc_bench::uniform_fixture(m, subs, pubs, 300, seed)
}

/// Connects speaking `proto` with the default I/O timeout — the one
/// knob these scenarios vary.
fn connect(
    addr: std::net::SocketAddr,
    proto: ClientProtocol,
) -> Result<ServiceClient, psc::service::ClientError> {
    ServiceClient::connect_with_protocol(addr, ServiceConfig::default().io_timeout, proto)
}

fn ground_truth(subs: &[Subscription], publications: &[Publication]) -> Vec<Vec<SubscriptionId>> {
    let mut naive = NaiveMatcher::new();
    for (i, s) in subs.iter().enumerate() {
        naive.insert(SubscriptionId(i as u64), s.clone());
    }
    publications
        .iter()
        .map(|p| {
            let mut ids = naive.matches(p);
            ids.sort_unstable();
            ids
        })
        .collect()
}

fn concurrent_tcp_clients_match_naive_ground_truth(proto: ClientProtocol) {
    let (schema, subs, pubs) = uniform_workload(4, 300, 80, 0xE2E);
    let truth = ground_truth(&subs, &pubs);

    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema.clone(),
        ServiceConfig {
            shards: 4,
            batch_size: 16,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Phase 1: four concurrent subscriber connections, interleaved ids.
    let subs = Arc::new(subs);
    let mut joins = Vec::new();
    for t in 0..4usize {
        let subs = Arc::clone(&subs);
        joins.push(std::thread::spawn(move || {
            let mut client = connect(addr, proto).expect("connect subscriber");
            for i in (t..subs.len()).step_by(4) {
                client
                    .subscribe(SubscriptionId(i as u64), &subs[i])
                    .expect("subscribe over TCP");
            }
            client.flush().expect("flush tail batch");
        }));
    }
    for join in joins {
        join.join().expect("subscriber thread");
    }

    // Phase 2: two concurrent publisher connections, disjoint publication
    // slices; each must observe exactly the naive match set.
    let pubs = Arc::new(pubs);
    let truth = Arc::new(truth);
    let mut joins = Vec::new();
    for t in 0..2usize {
        let pubs = Arc::clone(&pubs);
        let truth = Arc::clone(&truth);
        joins.push(std::thread::spawn(move || {
            let mut client = connect(addr, proto).expect("connect publisher");
            for i in (t..pubs.len()).step_by(2) {
                let matched = client.publish(&pubs[i]).expect("publish over TCP");
                assert_eq!(
                    matched, truth[i],
                    "shard-merged match set diverged from naive ground truth on publication {i}"
                );
            }
        }));
    }
    for join in joins {
        join.join().expect("publisher thread");
    }

    // The service really sharded the store and saw the whole workload.
    let mut client = connect(addr, proto).expect("connect inspector");
    let metrics = client.stats().expect("stats over TCP");
    assert_eq!(metrics.shards.len(), 4);
    let totals = metrics.totals();
    assert_eq!(totals.subscriptions_ingested, 300);
    // Every publication either visited a shard or was pruned away from it
    // by the shard's routing summary — the two counters partition the
    // 80-publication fan-out exactly, on every shard.
    for (i, shard) in metrics.shards.iter().enumerate() {
        assert_eq!(
            shard.publications_processed + shard.shards_pruned,
            80,
            "shard {i}: processed + pruned must cover every publication"
        );
    }
    assert!(totals.publications_processed as usize <= 80);
    // Content-aware placement is the default: shard population follows
    // attribute-space clusters and may be uneven (a shard can even stay
    // empty on a workload its clusters never touch), but the router's
    // directory must have tracked every subscription and more than one
    // shard must carry load.
    assert!(metrics.placement.enabled);
    assert_eq!(metrics.placement.directory_entries, 300);
    assert!(
        metrics
            .shards
            .iter()
            .filter(|s| s.subscriptions_ingested > 0)
            .count()
            > 1,
        "placement routed everything to a single shard: {metrics}"
    );

    server.stop();
}

fn interleaved_subscribe_publish_and_unsubscribe_stay_consistent(proto: ClientProtocol) {
    let (schema, subs, pubs) = uniform_workload(3, 120, 40, 0xFACE);

    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema.clone(),
        ServiceConfig {
            shards: 3,
            batch_size: 8,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Subscribers and publishers run at the same time: match contents are
    // racy by design, but every returned id must be a subscribed id and
    // the protocol must never wedge.
    let subs = Arc::new(subs);
    let pubs = Arc::new(pubs);
    let mut joins = Vec::new();
    for t in 0..3usize {
        let subs = Arc::clone(&subs);
        joins.push(std::thread::spawn(move || {
            let mut client = connect(addr, proto).expect("connect subscriber");
            for i in (t..subs.len()).step_by(3) {
                client
                    .subscribe(SubscriptionId(i as u64), &subs[i])
                    .expect("subscribe over TCP");
            }
        }));
    }
    let max_id = subs.len() as u64;
    for _ in 0..2 {
        let pubs = Arc::clone(&pubs);
        joins.push(std::thread::spawn(move || {
            let mut client = connect(addr, proto).expect("connect publisher");
            for p in pubs.iter() {
                let matched = client.publish(p).expect("publish over TCP");
                for id in matched {
                    assert!(id.0 < max_id, "match returned an id never subscribed");
                }
            }
        }));
    }
    for join in joins {
        join.join().expect("worker thread");
    }

    // Quiesced: now the service must agree with naive ground truth, and
    // unsubscription must remove matches.
    let truth = ground_truth(&subs, &pubs);
    let mut client = connect(addr, proto).expect("connect checker");
    for (i, p) in pubs.iter().enumerate() {
        assert_eq!(client.publish(p).expect("publish"), truth[i]);
    }

    let victim = truth
        .iter()
        .enumerate()
        .find_map(|(i, ids)| ids.first().map(|id| (i, *id)))
        .expect("some publication matched something");
    assert!(client.unsubscribe(victim.1).expect("unsubscribe"));
    let after = client
        .publish(&pubs[victim.0])
        .expect("publish after unsubscribe");
    assert!(!after.contains(&victim.1), "unsubscribed id still matching");

    server.stop();
}

#[test]
fn concurrent_tcp_clients_match_naive_ground_truth_json() {
    concurrent_tcp_clients_match_naive_ground_truth(ClientProtocol::Json);
}

#[test]
fn concurrent_tcp_clients_match_naive_ground_truth_binary() {
    concurrent_tcp_clients_match_naive_ground_truth(ClientProtocol::Binary);
}

#[test]
fn interleaved_subscribe_publish_and_unsubscribe_stay_consistent_json() {
    interleaved_subscribe_publish_and_unsubscribe_stay_consistent(ClientProtocol::Json);
}

#[test]
fn interleaved_subscribe_publish_and_unsubscribe_stay_consistent_binary() {
    interleaved_subscribe_publish_and_unsubscribe_stay_consistent(ClientProtocol::Binary);
}
