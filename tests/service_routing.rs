//! Content-aware routing: conservatism and pruning, end to end.
//!
//! The core property: a routed service (the default) returns **exactly**
//! the match results of an all-shard fan-out — per-shard attribute-space
//! summaries may only skip shards that provably cannot match. The
//! property test drives random subscribe/unsubscribe/publish streams over
//! both uniform range subscriptions and skewed topic-style (point)
//! subscriptions, compares a routed service against a routing-disabled
//! twin *and* a naive reference matcher, and repeats the comparison after
//! a durable restart (summaries are rebuilt from recovered stores, not
//! persisted). Deterministic tests pin down the observable pruning
//! behavior: empty and off-interval shards are skipped, bounded staleness
//! re-tightens summaries after unsubscriptions, and disabling routing
//! really disables it.

use proptest::prelude::*;
use psc::model::{Publication, Range, Schema, Subscription, SubscriptionId};
use psc::service::storage::FsyncPolicy;
use psc::service::{PubSubService, ServiceConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn schema() -> Schema {
    Schema::uniform(2, 0, 999)
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "psc-routing-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
    Subscription::from_ranges(
        schema,
        vec![
            Range::new(x0.0, x0.1).unwrap(),
            Range::new(x1.0, x1.1).unwrap(),
        ],
    )
    .unwrap()
}

fn publication(schema: &Schema, x0: i64, x1: i64) -> Publication {
    Publication::from_values(schema, vec![x0, x1]).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Subscribe(u64, (i64, i64), (i64, i64)),
    Unsubscribe(u64),
}

/// Applies ops to a service and, in lockstep, to a naive reference map.
fn apply(
    service: &PubSubService,
    reference: &mut BTreeMap<u64, Subscription>,
    schema: &Schema,
    ops: &[Op],
) {
    for op in ops {
        match *op {
            Op::Subscribe(id, x0, x1) => {
                let s = sub(schema, x0, x1);
                // The service drops duplicate ids at admission; mirror
                // that in the reference (first writer wins).
                reference.entry(id).or_insert_with(|| s.clone());
                service.subscribe(SubscriptionId(id), s).unwrap();
            }
            Op::Unsubscribe(id) => {
                reference.remove(&id);
                let _ = service.unsubscribe(SubscriptionId(id));
            }
        }
    }
}

fn naive_matches(reference: &BTreeMap<u64, Subscription>, p: &Publication) -> Vec<SubscriptionId> {
    reference
        .iter()
        .filter(|(_, s)| s.matches(p))
        .map(|(&id, _)| SubscriptionId(id))
        .collect()
}

/// Probe grid covering hot topic points, interval edges, and empty space.
fn probes(schema: &Schema) -> Vec<Publication> {
    let mut out = Vec::new();
    for x0 in (0..1000).step_by(83) {
        for x1 in (0..1000).step_by(211) {
            out.push(publication(schema, x0, x1));
        }
    }
    out
}

fn assert_routed_equals_fanout(
    routed: &PubSubService,
    fanout: &PubSubService,
    reference: &BTreeMap<u64, Subscription>,
    schema: &Schema,
    context: &str,
) {
    let pubs = probes(schema);
    let routed_results = routed.publish_batch(&pubs).unwrap();
    let fanout_results = fanout.publish_batch(&pubs).unwrap();
    for ((p, a), b) in pubs.iter().zip(&routed_results).zip(&fanout_results) {
        assert_eq!(
            a, b,
            "{context}: routed result diverged from all-shard fan-out at {p}"
        );
        assert_eq!(
            a,
            &naive_matches(reference, p),
            "{context}: routed result diverged from naive reference at {p}"
        );
    }
}

prop_compose! {
    /// Subscribe/unsubscribe streams mixing three shapes: topic-style
    /// point subscriptions on x0 (the value-set pruning case), uniform
    /// ranges (the interval case), and very wide subscriptions (which
    /// defeat pruning and populate the covered pool).
    fn arb_op()(
        kind in 0usize..8,
        id in 0u64..64,
        topic in 0i64..12,
        lo0 in 0i64..900,
        w0 in 0i64..200,
        lo1 in 0i64..900,
        w1 in 0i64..400,
    ) -> Op {
        match kind {
            0 | 1 => Op::Unsubscribe(id),
            2..=4 => {
                // 12 hot topics spread over the domain.
                let t = 40 + topic * 80;
                Op::Subscribe(id, (t, t), (lo1, (lo1 + w1).min(999)))
            }
            5 => Op::Subscribe(id, (0, 999), (lo1.min(100), 999)),
            _ => Op::Subscribe(id, (lo0, (lo0 + w0).min(999)), (lo1, (lo1 + w1).min(999))),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Routed match results are identical to all-shard fan-out (and to a
    /// naive reference) across random workloads — including mid-stream,
    /// after unsubscriptions, and after a durable restart. Runs a
    /// placement-routed service (the default) *and* a hash-placed twin
    /// against the same fan-out/naive ground truth, so the equivalence
    /// chain is placement ≡ hash ≡ fan-out ≡ naive — placement may move
    /// subscriptions between shards and route unsubscribes through its
    /// directory, but must never change a match result.
    #[test]
    fn routed_results_equal_fanout_results(
        ops in proptest::collection::vec(arb_op(), 1..80),
        shards in 1usize..6,
        batch_size in 1usize..9,
        retighten_after in 0u64..5,
    ) {
        let schema = schema();
        let dir = temp_dir("prop");
        let config = ServiceConfig {
            shards,
            batch_size,
            routing_enabled: true,
            placement_enabled: true,
            summary_retighten_after: retighten_after,
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Never,
            snapshot_every: 8,
            // Effectively deterministic subsumption decisions, so the
            // routed/unrouted twins hold identical stores.
            error_probability: 1e-12,
            ..Default::default()
        };
        let hashed_config = ServiceConfig {
            placement_enabled: false,
            data_dir: None,
            ..config.clone()
        };
        let fanout_config = ServiceConfig {
            routing_enabled: false,
            placement_enabled: false,
            data_dir: None,
            ..config.clone()
        };

        let fanout = PubSubService::start(schema.clone(), fanout_config);
        let mut fanout_reference = BTreeMap::new();
        let hashed = PubSubService::start(schema.clone(), hashed_config);
        let mut hashed_reference = BTreeMap::new();

        let mut reference = BTreeMap::new();
        {
            let placed = PubSubService::open(schema.clone(), config.clone()).unwrap();

            // Compare mid-stream too: summaries must be conservative at
            // every prefix, not just at quiescence.
            let split = ops.len() / 2;
            apply(&placed, &mut reference, &schema, &ops[..split]);
            apply(&hashed, &mut hashed_reference, &schema, &ops[..split]);
            apply(&fanout, &mut fanout_reference, &schema, &ops[..split]);
            assert_routed_equals_fanout(&placed, &fanout, &reference, &schema, "mid-stream placed");
            assert_routed_equals_fanout(&hashed, &fanout, &reference, &schema, "mid-stream hashed");

            apply(&placed, &mut reference, &schema, &ops[split..]);
            apply(&hashed, &mut hashed_reference, &schema, &ops[split..]);
            apply(&fanout, &mut fanout_reference, &schema, &ops[split..]);
            prop_assert_eq!(&reference, &fanout_reference);
            prop_assert_eq!(&reference, &hashed_reference);
            assert_routed_equals_fanout(&placed, &fanout, &reference, &schema, "quiescent placed");
            assert_routed_equals_fanout(&hashed, &fanout, &reference, &schema, "quiescent hashed");
            // Routing disabled really means no pruning; hash mode keeps
            // the directory live but never diverges from the hash shard.
            prop_assert_eq!(fanout.metrics().totals().shards_pruned, 0);
            prop_assert_eq!(hashed.metrics().placement.placement_moves, 0);
            prop_assert_eq!(
                placed.metrics().placement.directory_entries as usize,
                reference.len()
            );
        }

        // Restart the placed service: summaries are rebuilt from the
        // recovered stores, the placement directory from WAL replay, and
        // both must stay conservative/authoritative.
        let rebuilt = PubSubService::open(schema.clone(), config).unwrap();
        assert_routed_equals_fanout(&rebuilt, &fanout, &reference, &schema, "after restart");
        prop_assert_eq!(
            rebuilt.metrics().placement.directory_entries as usize,
            reference.len(),
            "recovered directory must index exactly the live set"
        );
        // Every live id can still be removed through the rebuilt
        // directory; a dead one reports false without a shard visit.
        for (&id, _) in reference.iter().take(4) {
            prop_assert!(rebuilt.unsubscribe(SubscriptionId(id)), "recovered id {} lost", id);
        }
        prop_assert!(!rebuilt.unsubscribe(SubscriptionId(u64::MAX)));
        // Join the shard workers (and their snapshot writers) before
        // deleting the data dir, or an in-flight background snapshot can
        // recreate files under a directory being removed.
        drop(rebuilt);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The routing property holds over the wire too: a routed server
    /// driven through a binary-protocol TCP client returns exactly the
    /// naive reference's match sets on every probe. This re-runs the
    /// routed ≡ ground-truth check through the full binary path —
    /// preamble negotiation, frame codec, the reactor's publish
    /// batching — instead of in-process calls.
    #[test]
    fn routed_results_over_binary_transport_equal_reference(
        ops in proptest::collection::vec(arb_op(), 1..48),
        shards in 1usize..5,
    ) {
        use psc::service::{ClientProtocol, ServiceClient, ServiceServer};

        let schema = schema();
        let server = ServiceServer::bind(
            "127.0.0.1:0",
            schema.clone(),
            ServiceConfig {
                shards,
                routing_enabled: true,
                error_probability: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = ServiceClient::connect_with_protocol(
            server.local_addr(),
            ServiceConfig::default().io_timeout,
            ClientProtocol::Binary,
        )
        .unwrap();

        let mut reference = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Subscribe(id, x0, x1) => {
                    let s = sub(&schema, x0, x1);
                    reference.entry(id).or_insert_with(|| s.clone());
                    client.subscribe(SubscriptionId(id), &s).unwrap();
                }
                Op::Unsubscribe(id) => {
                    reference.remove(&id);
                    let _ = client.unsubscribe(SubscriptionId(id)).unwrap();
                }
            }
        }
        client.flush().unwrap();

        for p in probes(&schema) {
            let matched = client.publish(&p).unwrap();
            prop_assert_eq!(
                matched,
                naive_matches(&reference, &p),
                "binary transport diverged from naive reference at {}",
                p
            );
        }
        server.stop();
    }
}

/// Shards that hold nothing (or nothing near the publication) are
/// provably skipped: with one subscription and four shards, three shards
/// are empty and every publish prunes them.
#[test]
fn empty_and_off_bounds_shards_are_pruned() {
    let schema = schema();
    let service = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards: 4,
            ..Default::default()
        },
    );
    service
        .subscribe(SubscriptionId(1), sub(&schema, (100, 200), (0, 999)))
        .unwrap();
    // Barrier: a metrics scrape answers only after every worker finished
    // boot (publishing its summary cell) and applied the admission above,
    // making the pruning counters below deterministic.
    let _ = service.metrics();

    // In range: exactly the owning shard is visited, three are pruned.
    let hit = service.publish(&publication(&schema, 150, 5)).unwrap();
    assert_eq!(hit, vec![SubscriptionId(1)]);
    let totals = service.metrics().totals();
    assert_eq!(totals.shards_pruned, 3, "three empty shards pruned");

    // Out of every shard's bounds: all four shards pruned, zero visited.
    let miss = service.publish(&publication(&schema, 900, 5)).unwrap();
    assert!(miss.is_empty());
    let totals = service.metrics().totals();
    assert_eq!(totals.shards_pruned, 7, "previous 3 + all 4 shards");
    assert_eq!(
        totals.publications_processed, 1,
        "the second publication reached no shard at all"
    );
}

/// Unsubscribing ages summaries without narrowing them; once staleness
/// passes the re-tighten knob the shard rebuilds from its store and the
/// vacated space prunes again.
#[test]
fn retightening_restores_pruning_after_unsubscribe() {
    let schema = schema();
    let service = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards: 1,
            summary_retighten_after: 0, // re-tighten on every removal
            ..Default::default()
        },
    );
    service
        .subscribe(SubscriptionId(1), sub(&schema, (0, 30), (0, 999)))
        .unwrap();
    service
        .subscribe(SubscriptionId(2), sub(&schema, (600, 650), (0, 999)))
        .unwrap();

    // Both regions are live: the high region visits the shard.
    assert_eq!(
        service.publish(&publication(&schema, 620, 5)).unwrap(),
        vec![SubscriptionId(2)]
    );
    let before = service.metrics().totals();

    assert!(service.unsubscribe(SubscriptionId(2)));
    // Rebuilt summary: the high region is provably vacated again.
    assert!(service
        .publish(&publication(&schema, 620, 5))
        .unwrap()
        .is_empty());
    let after = service.metrics().totals();
    assert!(
        after.shards_pruned > before.shards_pruned,
        "vacated region prunes after re-tightening: {before:?} -> {after:?}"
    );
    assert!(
        after.summary.rebuilds > before.summary.rebuilds,
        "unsubscribe with retighten_after=0 forces a rebuild"
    );
    assert_eq!(after.summary.staleness, 0);

    // The surviving subscription is untouched.
    assert_eq!(
        service.publish(&publication(&schema, 15, 5)).unwrap(),
        vec![SubscriptionId(1)]
    );
}

/// With a generous staleness budget, removals age the summary in place:
/// no rebuild happens, staleness is reported, and the stale (wider)
/// summary stays conservative — the vacated region is still visited.
#[test]
fn bounded_staleness_is_reported_and_conservative() {
    let schema = schema();
    let service = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards: 1,
            summary_retighten_after: 1_000,
            ..Default::default()
        },
    );
    service
        .subscribe(SubscriptionId(1), sub(&schema, (0, 30), (0, 999)))
        .unwrap();
    service
        .subscribe(SubscriptionId(2), sub(&schema, (600, 650), (0, 999)))
        .unwrap();
    let boot_rebuilds = service.metrics().totals().summary.rebuilds;

    assert!(service.unsubscribe(SubscriptionId(2)));
    assert!(service
        .publish(&publication(&schema, 620, 5))
        .unwrap()
        .is_empty());
    let totals = service.metrics().totals();
    assert_eq!(totals.summary.staleness, 1, "one removal since rebuild");
    assert_eq!(totals.summary.rebuilds, boot_rebuilds, "no re-tighten yet");
    // The stale summary still covers [600, 650], so the publish above
    // visited the shard rather than (wrongly) pruning it.
    assert_eq!(totals.shards_pruned, 0);
}

/// `routing_enabled: false` fans every publish out to every shard.
#[test]
fn disabled_routing_never_prunes() {
    let schema = schema();
    let service = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards: 4,
            routing_enabled: false,
            ..Default::default()
        },
    );
    service
        .subscribe(SubscriptionId(1), sub(&schema, (100, 200), (0, 999)))
        .unwrap();
    for x0 in [0, 150, 999] {
        let _ = service.publish(&publication(&schema, x0, 5)).unwrap();
    }
    let totals = service.metrics().totals();
    assert_eq!(totals.shards_pruned, 0);
    assert_eq!(totals.publications_processed, 3, "every shard saw all 3");
}

/// Summary health counters surface through the metrics pipeline: epochs
/// advance with admissions and the JSON stats round-trip preserves the
/// routing keys.
#[test]
fn summary_counters_flow_through_stats_json() {
    let schema = schema();
    let service = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards: 2,
            ..Default::default()
        },
    );
    for i in 0..10u64 {
        service
            .subscribe(SubscriptionId(i), sub(&schema, (0, 10), (0, 10)))
            .unwrap();
    }
    let _ = service.publish(&publication(&schema, 5, 5)).unwrap();
    let metrics = service.metrics();
    let totals = metrics.totals();
    assert!(totals.summary.epoch >= 2, "cells were published");
    assert!(totals.summary.rebuilds >= 2, "one boot rebuild per shard");

    let json = metrics.to_json().to_string();
    for key in [
        "\"shards_pruned\"",
        "\"summary_epoch\"",
        "\"summary_rebuilds\"",
        "\"summary_staleness\"",
    ] {
        assert!(json.contains(key), "stats JSON must carry {key}: {json}");
    }
    let parsed = psc::model::wire::Json::parse(&json).unwrap();
    let back = psc::service::ServiceMetrics::from_json(&parsed).unwrap();
    assert_eq!(back, metrics);
}

/// The headline perf claim of content-aware placement, pinned down
/// deterministically: on the *uniform* workload (no topic skew — the
/// workload where hash placement prunes nothing, because every shard's
/// summary looks identical) greedy placement at 8 shards specializes
/// the shards into attribute-space clusters and prunes at least 40% of
/// shard visits, while hash placement on the same stream prunes almost
/// none. Both services must still agree with each other on every match.
#[test]
fn placement_prunes_uniform_workload_at_eight_shards() {
    let (schema, subs, pubs) = psc_bench::uniform_fixture(4, 2400, 512, 300, 0xBEE5);
    let placed = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards: 8,
            placement_enabled: true,
            ..Default::default()
        },
    );
    let hashed = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards: 8,
            placement_enabled: false,
            ..Default::default()
        },
    );
    for (i, s) in subs.iter().enumerate() {
        placed
            .subscribe(SubscriptionId(i as u64), s.clone())
            .unwrap();
        hashed
            .subscribe(SubscriptionId(i as u64), s.clone())
            .unwrap();
    }
    placed.flush();
    hashed.flush();

    let placed_results = placed.publish_batch(&pubs).unwrap();
    let hashed_results = hashed.publish_batch(&pubs).unwrap();
    for ((p, a), b) in pubs.iter().zip(&placed_results).zip(&hashed_results) {
        assert_eq!(a, b, "placement changed a match result at {p}");
    }

    let visits = (pubs.len() * 8) as f64;
    let placed_fraction = placed.metrics().totals().shards_pruned as f64 / visits;
    let hashed_fraction = hashed.metrics().totals().shards_pruned as f64 / visits;
    eprintln!(
        "uniform@8: placement pruned {:.1}% of shard visits, hash pruned {:.1}%",
        placed_fraction * 100.0,
        hashed_fraction * 100.0
    );
    assert!(
        placed_fraction >= 0.4,
        "placement pruned only {:.1}% of uniform shard visits (hash: {:.1}%)",
        placed_fraction * 100.0,
        hashed_fraction * 100.0
    );
    assert!(
        placed_fraction > hashed_fraction,
        "placement ({placed_fraction:.3}) must beat hash ({hashed_fraction:.3})"
    );
}

/// Regression test for a pop-against-stale-view race. Confirmed `sent`
/// entries are popped under the pending lock, but the pop is shared-state
/// destructive: a publisher that read the summary cell before locking can
/// find the queue already emptied by a fresher-viewed concurrent
/// publisher, and deciding from its stale view alone would prune a shard
/// holding a just-flushed subscription (a lost notification). Background
/// publishers hammer the pop path while the main thread repeatedly
/// subscribes, flushes, and publishes a matching publication — the flush
/// completes strictly before the publish, so the new subscription must
/// appear in the result every time.
#[test]
fn concurrent_publishers_never_lose_flushed_subscriptions() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let schema = schema();
    // One shard: every publisher contends on the same pending queue.
    let service = Arc::new(PubSubService::start(
        schema.clone(),
        ServiceConfig::with_shards(1),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..2u64)
        .map(|t| {
            let service = Arc::clone(&service);
            let schema = schema.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = (t * 37) as i64;
                while !stop.load(Ordering::Relaxed) {
                    x = (x + 13) % 1000;
                    let _ = service.publish(&publication(&schema, x, x)).unwrap();
                }
            })
        })
        .collect();
    for k in 0..500u64 {
        let x0 = ((k * 7) % 1000) as i64;
        service
            .subscribe(SubscriptionId(10_000 + k), sub(&schema, (x0, x0), (0, 999)))
            .unwrap();
        service.flush();
        let matched = service.publish(&publication(&schema, x0, 0)).unwrap();
        assert!(
            matched.contains(&SubscriptionId(10_000 + k)),
            "iteration {k}: flushed subscription lost by routing"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for h in hammers {
        h.join().unwrap();
    }
}
