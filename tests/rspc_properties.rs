//! Property-based cross-crate tests of the probabilistic core: one-sided
//! error, MCS answer preservation, and Corollary soundness against the
//! exact checker on randomized instances.

use proptest::prelude::*;
use psc::core::{
    corollaries, ConflictTable, ExactChecker, MinimizedCoverSet, Rspc, WitnessEstimate,
};
use psc::model::{Range, Schema, Subscription};
use psc::workload::seeded_rng;

fn schema3() -> Schema {
    Schema::uniform(3, 0, 15)
}

prop_compose! {
    fn arb_sub(max_w: i64)(
        lo0 in 0i64..16, w0 in 0i64..8,
        lo1 in 0i64..16, w1 in 0i64..8,
        lo2 in 0i64..16, w2 in 0i64..8,
    ) -> Subscription {
        let schema = schema3();
        let mk = |lo: i64, w: i64| Range::new(lo, (lo + (w % (max_w + 1))).min(15)).unwrap();
        Subscription::from_ranges(&schema, vec![mk(lo0, w0), mk(lo1, w1), mk(lo2, w2)])
            .unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// RSPC's NO is always correct (one-sided error), regardless of budget.
    #[test]
    fn rspc_no_implies_exact_no(
        s in arb_sub(7),
        set in proptest::collection::vec(arb_sub(14), 0..8),
        budget in 0u64..200,
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let out = Rspc::new(budget).run(&s, &set, &mut rng);
        if !out.is_covered() {
            let truth = ExactChecker::default().is_covered(&s, &set).unwrap();
            prop_assert!(!truth, "RSPC produced a NO on a covered instance");
        }
    }

    /// MCS preserves the exact cover answer (Proposition 4).
    #[test]
    fn mcs_preserves_cover_answer(
        s in arb_sub(7),
        set in proptest::collection::vec(arb_sub(14), 0..8),
    ) {
        let exact = ExactChecker::default();
        let before = exact.is_covered(&s, &set).unwrap();
        let outcome = MinimizedCoverSet::reduce(&s, &set);
        let reduced = outcome.kept_subscriptions(&set);
        let after = exact.is_covered(&s, &reduced).unwrap();
        prop_assert_eq!(before, after,
            "MCS changed the answer; removed {:?}", outcome.removed);
    }

    /// Corollary 1 (pairwise cover off the table) is sound and complete
    /// w.r.t. single-subscription coverage.
    #[test]
    fn corollary1_matches_direct_pairwise(
        s in arb_sub(7),
        set in proptest::collection::vec(arb_sub(14), 0..8),
    ) {
        let table = ConflictTable::build(&s, &set);
        let via_table = corollaries::pairwise_cover(&table).is_some();
        let direct = set.iter().any(|si| si.covers(&s));
        prop_assert_eq!(via_table, direct);
    }

    /// Corollary 3 is a *sound* non-cover certificate.
    #[test]
    fn corollary3_sound_vs_exact(
        s in arb_sub(7),
        set in proptest::collection::vec(arb_sub(14), 0..8),
    ) {
        let table = ConflictTable::build(&s, &set);
        if corollaries::polyhedron_witness_exists(&table) {
            let truth = ExactChecker::default().is_covered(&s, &set).unwrap();
            prop_assert!(!truth, "Corollary 3 fired on a covered instance");
        }
    }

    /// The witness estimate is well-formed: ρw ∈ [0, 1], I(sw) ≤ I(s), and
    /// the iteration budget honours the requested error bound.
    #[test]
    fn witness_estimate_invariants(
        s in arb_sub(7),
        set in proptest::collection::vec(arb_sub(14), 0..8),
    ) {
        let est = WitnessEstimate::compute(&s, &set);
        prop_assert!((0.0..=1.0).contains(&est.rho_w()));
        prop_assert!(est.witness_size().ln() <= est.subscription_size().ln() + 1e-9);
        let d = est.iterations_for(1e-6);
        if d.is_finite() && d < 1e6 {
            prop_assert!(est.error_after(d as u64) <= 1e-6 * 1.0001);
        }
    }

    /// The full engine never contradicts the exact checker when its answer
    /// is deterministic.
    #[test]
    fn deterministic_engine_answers_are_exact(
        s in arb_sub(7),
        set in proptest::collection::vec(arb_sub(14), 0..8),
        seed in 0u64..1000,
    ) {
        let checker = psc::core::SubsumptionChecker::builder()
            .error_probability(1e-9)
            .build();
        let mut rng = seeded_rng(seed);
        let d = checker.check(&s, &set, &mut rng);
        if d.is_deterministic() {
            let truth = ExactChecker::default().is_covered(&s, &set).unwrap();
            prop_assert_eq!(d.is_covered(), truth, "stage {:?}", d.stage);
        }
    }
}
