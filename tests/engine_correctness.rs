//! Cross-crate correctness: the probabilistic engine vs the exact checker
//! and vs scenario ground truth, across every workload generator.

use psc::core::{CoverAnswer, ExactChecker, SubsumptionChecker};
use psc::workload::{
    seeded_rng, ExtremeNonCoverScenario, NoIntersectionScenario, NonCoverScenario,
    PairwiseCoverScenario, RedundantCoverScenario,
};

fn strict_checker() -> SubsumptionChecker {
    SubsumptionChecker::builder()
        .error_probability(1e-12)
        .build()
}

#[test]
fn pairwise_scenario_decided_deterministically() {
    let scenario = PairwiseCoverScenario::new(6, 25);
    let checker = strict_checker();
    for seed in 0..30 {
        let mut rng = seeded_rng(seed);
        let inst = scenario.generate(&mut rng);
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        assert!(d.is_covered(), "seed {seed}: pairwise cover missed");
        assert!(
            d.is_deterministic(),
            "seed {seed}: should be a Corollary-1 decision"
        );
    }
}

#[test]
fn redundant_covering_scenario_always_answers_covered() {
    let scenario = RedundantCoverScenario::new(4, 30);
    let checker = strict_checker();
    for seed in 0..20 {
        let mut rng = seeded_rng(1000 + seed);
        let inst = scenario.generate(&mut rng);
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        assert!(
            d.is_covered(),
            "seed {seed}: union cover missed (prob err <= 1e-12)"
        );
    }
}

#[test]
fn non_cover_scenarios_never_fooled_with_strict_delta() {
    let checker = strict_checker();
    for seed in 0..20 {
        let mut rng = seeded_rng(2000 + seed);
        let inst = NonCoverScenario::new(5, 40).generate(&mut rng);
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        assert!(
            !d.is_covered(),
            "seed {seed}: declared covered on a gap instance"
        );
        assert!(d.is_deterministic(), "NO answers are always deterministic");

        let inst = NoIntersectionScenario::new(5, 40).generate(&mut rng);
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        assert!(
            !d.is_covered(),
            "seed {seed}: declared covered with zero overlap"
        );
    }
}

#[test]
fn extreme_scenario_agrees_with_exact_checker() {
    // m = 5 is exactly checkable thanks to the coarse slab geometry.
    let exact = ExactChecker::default();
    let checker = strict_checker();
    for seed in 0..10 {
        let mut rng = seeded_rng(3000 + seed);
        let inst = ExtremeNonCoverScenario::new(0.03).generate(&mut rng);
        let truth = exact
            .is_covered(&inst.s, &inst.set)
            .expect("within exact-checker budget");
        assert!(!truth, "construction must leave the gap uncovered");
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        assert_eq!(d.is_covered(), truth, "seed {seed}");
    }
}

#[test]
fn engine_decisions_match_exact_on_random_small_instances() {
    // Random rectangles in a small 3-D space: both answers occur, and the
    // engine must agree with the exact checker whenever it answers
    // deterministically; probabilistic YES answers must match ground truth
    // at delta = 1e-12 (failure probability ~1e-10 over the whole loop).
    use psc::model::{Range, Schema, Subscription};
    use rand::Rng;

    let schema = Schema::uniform(3, 0, 19);
    let exact = ExactChecker::default();
    let checker = strict_checker();
    let mut rng = seeded_rng(4004);
    let mut covered_seen = 0;
    let mut uncovered_seen = 0;
    for _ in 0..300 {
        let rand_sub = |rng: &mut rand::rngs::StdRng, max_w: i64| {
            let ranges = (0..3)
                .map(|_| {
                    let lo = rng.gen_range(0..=19);
                    let hi = (lo + rng.gen_range(0..=max_w)).min(19);
                    Range::new(lo, hi).expect("ordered")
                })
                .collect();
            Subscription::from_ranges(&schema, ranges).expect("within domain")
        };
        let s = rand_sub(&mut rng, 6);
        let k = rng.gen_range(0..10);
        let set: Vec<_> = (0..k).map(|_| rand_sub(&mut rng, 14)).collect();
        let truth = exact.is_covered(&s, &set).expect("tiny instance");
        let d = checker.check(&s, &set, &mut rng);
        assert_eq!(d.is_covered(), truth, "s={s} set={set:?}");
        if truth {
            covered_seen += 1;
        } else {
            uncovered_seen += 1;
        }
    }
    assert!(
        covered_seen > 5,
        "instance mix too skewed: {covered_seen} covered"
    );
    assert!(
        uncovered_seen > 5,
        "instance mix too skewed: {uncovered_seen} uncovered"
    );
}

#[test]
fn witnesses_returned_by_the_engine_are_genuine() {
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .pairwise_fast_path(false)
        .corollary3_fast_path(false)
        .mcs(false)
        .prefilter_disjoint(false)
        .build();
    for seed in 0..10 {
        let mut rng = seeded_rng(5000 + seed);
        let inst = ExtremeNonCoverScenario::new(0.04).generate(&mut rng);
        let d = checker.check(&inst.s, &inst.set, &mut rng);
        match d.answer {
            CoverAnswer::NotCovered { witness: Some(w) } => {
                assert!(
                    w.holds_against(&inst.s, &inst.set),
                    "seed {seed}: bogus witness"
                );
            }
            CoverAnswer::NotCovered { witness: None } => {
                panic!("seed {seed}: bare RSPC NO must carry a witness")
            }
            CoverAnswer::Covered { error_bound } => {
                // Allowed, but only with the declared (tiny) probability.
                assert!(error_bound < 1.0, "seed {seed}: vacuous bound");
            }
        }
    }
}
