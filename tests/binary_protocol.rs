//! Property tests of the binary wire protocol under the incremental
//! frame decoder: request/response round-trips survive arbitrary read
//! fragmentation (frames split at random points, down to byte-by-byte),
//! oversized frames are reported with their true declared length without
//! desynchronizing the stream, truncated tails never produce phantom
//! frames, and arbitrary garbage never panics the framer or the decoder.
//! The live-server negotiation (preamble → Ready frame) is covered by
//! deterministic tests at the end.

use proptest::prelude::*;
use psc::model::codec::{write_frame, BinFrame, BinaryFramer, BINARY_PREAMBLE};
use psc::model::wire::{PublicationDto, SubscriptionDto};
use psc::service::wire::{Request, Response};

prop_compose! {
    fn arb_request()(
        kind in 0usize..6,
        id in 0u64..=u64::MAX,
        ranges in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 0..6),
        values in proptest::collection::vec(-1000i64..1000, 0..6),
    ) -> Request {
        match kind {
            0 => Request::Hello,
            1 => Request::Subscribe(SubscriptionDto { id, ranges }),
            2 => Request::Unsubscribe(id),
            3 => Request::Publish(PublicationDto { values }),
            4 => Request::Flush,
            _ => Request::Stats,
        }
    }
}

prop_compose! {
    fn arb_response()(
        kind in 0usize..5,
        ids in proptest::collection::vec(0u64..=u64::MAX, 0..8),
        removed in proptest::bool::ANY,
        message_bytes in proptest::collection::vec(32u8..127, 0..40),
    ) -> Response {
        match kind {
            0 => Response::Queued,
            1 => Response::Removed(removed),
            2 => Response::Matched(ids),
            3 => Response::Error(
                String::from_utf8(message_bytes).expect("printable ASCII"),
            ),
            _ => Response::Flushed,
        }
    }
}

/// Feeds `bytes` to `framer` in chunks whose sizes cycle through
/// `chunk_sizes`, asserting a mid-stream buffering `bound` the whole
/// way. (Complete frames awaiting `next_frame` stay buffered, so the
/// caller computes the bound from what it leaves undrained; the point
/// of the assert is that *discarded* oversized payloads never count.)
fn feed_chunked(framer: &mut BinaryFramer, bytes: &[u8], chunk_sizes: &[usize], bound: usize) {
    let mut offset = 0;
    let mut i = 0;
    while offset < bytes.len() {
        let size = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, bytes.len() - offset);
        framer.feed(&bytes[offset..offset + size]);
        assert!(
            framer.buffered_bytes() <= bound,
            "framer buffered {} bytes, bound is {bound}",
            framer.buffered_bytes()
        );
        offset += size;
        i += 1;
    }
}

/// Drains every complete frame, decoding payloads with `decode` as they
/// are popped (payloads borrow the framer's buffer, so decoding must
/// happen before the next pop).
fn drain_decoded<T>(
    framer: &mut BinaryFramer,
    mut decode: impl FnMut(&[u8]) -> T,
) -> Vec<Result<T, usize>> {
    let mut out = Vec::new();
    while framer.has_frames() {
        match framer.next_frame().expect("frame ready") {
            BinFrame::Frame(payload) => out.push(Ok(decode(payload))),
            BinFrame::TooLong { len } => out.push(Err(len)),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A pipeline of binary requests split across reads at arbitrary
    /// points decodes to exactly the requests that were encoded, in
    /// order.
    #[test]
    fn binary_requests_round_trip_through_fragmented_reads(
        requests in proptest::collection::vec(arb_request(), 1..12),
        chunk_sizes in proptest::collection::vec(1usize..40, 1..8),
    ) {
        let mut wire = Vec::new();
        for request in &requests {
            request.encode_binary(&mut wire);
        }
        let cap = 1 << 20;
        let mut framer = BinaryFramer::new(cap);
        // Nothing is drained while feeding, so everything fed may buffer.
        feed_chunked(&mut framer, &wire, &chunk_sizes, wire.len());
        let decoded: Vec<Request> = drain_decoded(&mut framer, |payload| {
            Request::decode_binary(payload).expect("valid request frame")
        })
        .into_iter()
        .map(|frame| frame.expect("no oversized frames in this stream"))
        .collect();
        prop_assert_eq!(decoded, requests);
    }

    /// Same for responses, at the harshest fragmentation: one byte per
    /// read (the client's framer sees this shape under small TCP
    /// segments).
    #[test]
    fn binary_responses_round_trip_byte_by_byte(
        responses in proptest::collection::vec(arb_response(), 1..10),
    ) {
        let mut wire = Vec::new();
        for response in &responses {
            response.encode_binary(&mut wire);
        }
        let mut framer = BinaryFramer::new(1 << 20);
        for b in &wire {
            framer.feed(std::slice::from_ref(b));
        }
        let decoded: Vec<Response> = drain_decoded(&mut framer, |payload| {
            Response::decode_binary(payload).expect("valid response frame")
        })
        .into_iter()
        .map(|frame| frame.expect("no oversized frames in this stream"))
        .collect();
        prop_assert_eq!(decoded, responses);
    }

    /// An oversized frame is reported as `TooLong` with the payload
    /// length its header declared, never buffers more than the cap, and
    /// does not desynchronize the frames around it.
    #[test]
    fn oversized_frames_are_skipped_without_desync(
        cap in 32usize..256,
        excess in 1usize..4096,
        chunk_sizes in proptest::collection::vec(1usize..64, 1..6),
        request in arb_request(),
    ) {
        let mut good = Vec::new();
        request.encode_binary(&mut good);
        // The cap must not reject the good frame itself in this scenario
        // (`good` includes the 4-byte header; the cap bounds the payload).
        let cap = cap.max(good.len());
        let oversized_len = cap + excess;
        let mut wire = Vec::new();
        wire.extend_from_slice(&good);
        write_frame(&mut wire, |payload| {
            payload.extend(std::iter::repeat_n(0xAB, oversized_len));
        });
        wire.extend_from_slice(&good);

        let mut framer = BinaryFramer::new(cap);
        // The two good frames may sit undrained, but the oversized
        // payload must be discarded as it streams — the buffering bound
        // is every non-oversized byte plus the oversized frame's header.
        feed_chunked(&mut framer, &wire, &chunk_sizes, 2 * good.len() + 4);
        let frames = drain_decoded(&mut framer, |payload| {
            Request::decode_binary(payload).expect("valid request frame")
        });
        prop_assert_eq!(frames, vec![
            Ok(request.clone()),
            Err(oversized_len),
            Ok(request),
        ]);
    }

    /// A frame stream cut off at an arbitrary byte yields exactly the
    /// frames completed before the cut — a truncated tail never becomes
    /// a phantom frame and never panics.
    #[test]
    fn truncated_streams_yield_only_complete_frames(
        requests in proptest::collection::vec(arb_request(), 1..8),
        cut_permille in 0usize..1000,
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for request in &requests {
            request.encode_binary(&mut wire);
            boundaries.push(wire.len());
        }
        let cut = wire.len() * cut_permille / 1000;
        let complete_before_cut = boundaries.iter().filter(|&&b| b <= cut).count();

        let mut framer = BinaryFramer::new(1 << 20);
        framer.feed(&wire[..cut]);
        let decoded = drain_decoded(&mut framer, |payload| {
            Request::decode_binary(payload).expect("valid request frame")
        });
        prop_assert_eq!(decoded.len(), complete_before_cut);
        for (frame, request) in decoded.into_iter().zip(requests) {
            prop_assert_eq!(frame.expect("complete frame"), request);
        }
    }

    /// Arbitrary garbage bytes never panic the framer or the decoders:
    /// every completed frame either decodes or returns a structured
    /// error, and buffering stays bounded by the cap.
    #[test]
    fn garbage_bytes_never_panic_the_binary_codec(
        garbage in proptest::collection::vec(0u8..=255, 0..512),
        chunk_sizes in proptest::collection::vec(1usize..32, 1..5),
    ) {
        let cap = 256;
        let mut framer = BinaryFramer::new(cap);
        feed_chunked(&mut framer, &garbage, &chunk_sizes, garbage.len());
        while framer.has_frames() {
            if let Some(BinFrame::Frame(payload)) = framer.next_frame() {
                let _ = Request::decode_binary(payload); // must not panic
                let _ = Response::decode_binary(payload);
            }
        }
    }
}

mod negotiation {
    use super::*;
    use psc::model::Schema;
    use psc::service::{ClientProtocol, ServiceClient, ServiceConfig, ServiceServer};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// The preamble's first byte can never begin a JSON request line, so
    /// the server's one-byte sniff is unambiguous.
    #[test]
    fn preamble_tag_is_not_valid_json_start() {
        assert!(!BINARY_PREAMBLE[0].is_ascii());
    }

    /// A correct preamble negotiates binary framing: the server answers
    /// with the Ready frame first, then serves binary requests.
    #[test]
    fn preamble_negotiates_and_ready_frame_arrives_first() {
        let schema = Schema::uniform(2, 0, 99);
        let server = ServiceServer::bind("127.0.0.1:0", schema, ServiceConfig::with_shards(1))
            .expect("bind");
        let mut client = ServiceClient::connect_binary(server.local_addr()).expect("negotiate");
        assert_eq!(client.protocol(), ClientProtocol::Binary);
        let (_, shards) = client.hello().expect("hello over binary");
        assert_eq!(shards, 1);
        server.stop();
    }

    /// A first byte matching the binary tag followed by a mismatched
    /// preamble is a malformed connection: the server drops it rather
    /// than guessing a protocol.
    #[test]
    fn corrupt_preamble_closes_the_connection() {
        let schema = Schema::uniform(2, 0, 99);
        let server = ServiceServer::bind("127.0.0.1:0", schema, ServiceConfig::with_shards(1))
            .expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut corrupt = BINARY_PREAMBLE;
        corrupt[2] ^= 0xFF;
        stream.write_all(&corrupt).expect("send corrupt preamble");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = [0u8; 16];
        // The server must close without ever acknowledging; EOF (Ok(0))
        // is the expected outcome, a reset is acceptable too.
        match stream.read(&mut buf) {
            Ok(n) => assert_eq!(n, 0, "server must not answer a corrupt preamble"),
            Err(e) => assert_ne!(
                e.kind(),
                std::io::ErrorKind::WouldBlock,
                "server neither closed nor reset: {e}"
            ),
        }
        server.stop();
    }
}
