//! Property tests of the federated mesh's subscription aggregation:
//! over random subscription streams, (a) mesh delivery equals a flat
//! single-node reference, and (b) the covered-forwarding invariant holds
//! on every link — a subscription withheld from an uplink is always
//! exactly subsumed by one that was forwarded. A deterministic test
//! additionally pins the control-traffic win: on a covering-heavy
//! workload, the transit node receives strictly fewer forwarded
//! subscriptions than the edge node accepted.

use proptest::prelude::*;
use psc::broker::{BrokerId, CoveringPolicy};
use psc::core::PairwiseChecker;
use psc::model::{Publication, Range, Schema, Subscription, SubscriptionId};
use psc::service::federation::{FederatedNode, FederationConfig};
use psc::service::{PubSubService, ServiceClient, ServiceConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn schema2() -> Schema {
    Schema::uniform(2, 0, 49)
}

fn dummy_addr() -> SocketAddr {
    "127.0.0.1:9".parse().expect("addr")
}

fn fed_config(node_id: usize, peers: &[usize]) -> FederationConfig {
    FederationConfig {
        node_id: BrokerId(node_id),
        listen: "127.0.0.1:0".to_string(),
        peers: peers.iter().map(|&p| (BrokerId(p), dummy_addr())).collect(),
        policy: CoveringPolicy::Pairwise,
        seed: 11,
        // Lazy reconnects only: property cases are short-lived and the
        // background thread would just burn the single test CPU.
        heartbeat_interval: None,
        fail_after_ops: None,
    }
}

fn service_config() -> ServiceConfig {
    let mut config = ServiceConfig::with_shards(1);
    config.io_timeout = Some(Duration::from_secs(5));
    config
}

fn start_chain() -> (FederatedNode, FederatedNode, FederatedNode) {
    let a = FederatedNode::start(schema2(), service_config(), fed_config(0, &[1])).expect("A");
    let b = FederatedNode::start(schema2(), service_config(), fed_config(1, &[0, 2])).expect("B");
    let c = FederatedNode::start(schema2(), service_config(), fed_config(2, &[1])).expect("C");
    a.set_peer_addr(BrokerId(1), b.local_addr());
    b.set_peer_addr(BrokerId(0), a.local_addr());
    b.set_peer_addr(BrokerId(2), c.local_addr());
    c.set_peer_addr(BrokerId(1), b.local_addr());
    (a, b, c)
}

/// Asserts the covered-forwarding invariant on one uplink: every
/// suppressed subscription must be exactly covered by the forwarded set.
fn assert_covered_forwarding(node: &FederatedNode, uplink: BrokerId) {
    let (forwarded, suppressed) = node.link_tables(uplink);
    let forwarded_subs: Vec<Subscription> = forwarded.iter().map(|(_, s)| s.clone()).collect();
    for (id, sub) in &suppressed {
        assert!(
            PairwiseChecker.is_covered(sub, &forwarded_subs),
            "suppressed subscription {id:?} is not covered by any forwarded one \
             on the {} -> {uplink} link",
            node.node_id()
        );
    }
}

prop_compose! {
    fn arb_sub()(lo0 in 0i64..50, w0 in 0i64..25, lo1 in 0i64..50, w1 in 0i64..25)
        -> Subscription {
        let schema = schema2();
        Subscription::from_ranges(&schema, vec![
            Range::new(lo0, (lo0 + w0).min(49)).unwrap(),
            Range::new(lo1, (lo1 + w1).min(49)).unwrap(),
        ]).unwrap()
    }
}

proptest! {
    // Every case spins three real TCP nodes on one CPU; keep the count
    // small and the streams short.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mesh_delivery_equals_flat_reference(
        subs in proptest::collection::vec((arb_sub(), 0usize..3), 1..10),
        pubs in proptest::collection::vec((0i64..50, 0i64..50, 0usize..3), 1..5),
        kill_mask in proptest::collection::vec(proptest::bool::ANY, 1..10),
    ) {
        let schema = schema2();
        let (a, b, c) = start_chain();
        let nodes = [&a, &b, &c];
        let mut clients: Vec<ServiceClient> = nodes
            .iter()
            .map(|n| ServiceClient::connect_binary(n.local_addr()).expect("connect"))
            .collect();

        // The flat reference: every subscription in one plain service.
        let reference = PubSubService::open(schema.clone(), service_config()).expect("reference");

        for (i, (sub, at)) in subs.iter().enumerate() {
            let id = SubscriptionId(i as u64);
            clients[at % 3].subscribe(id, sub).expect("subscribe");
            reference.subscribe(id, sub.clone()).expect("reference subscribe");
        }
        // Unsubscribe a random subset — promotions must keep coverage.
        for (i, kill) in kill_mask.iter().enumerate() {
            if *kill && i < subs.len() {
                let id = SubscriptionId(i as u64);
                let at = subs[i].1 % 3;
                prop_assert!(clients[at].unsubscribe(id).expect("unsubscribe"));
                prop_assert!(reference.unsubscribe(id));
            }
        }
        reference.flush();

        // (a) Delivery equivalence from every publish point.
        for (x, y, at) in pubs {
            let p = Publication::from_values(&schema, vec![x, y]).unwrap();
            let mut got = clients[at % 3].publish(&p).expect("publish");
            got.sort_unstable();
            let mut want = reference.publish(&p).expect("reference publish");
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        // (b) Covered-forwarding invariant on every directed link.
        assert_covered_forwarding(&a, BrokerId(1));
        assert_covered_forwarding(&c, BrokerId(1));
        assert_covered_forwarding(&b, BrokerId(0));
        assert_covered_forwarding(&b, BrokerId(2));

        drop(clients);
        a.stop();
        b.stop();
        c.stop();
    }
}

/// On a covering-heavy workload (nested subscriptions at the edge), the
/// forwarded/received control-message ratio at the transit node stays
/// strictly below 1: aggregation suppresses most of the stream.
#[test]
fn covering_heavy_workload_suppresses_control_traffic() {
    let schema = schema2();
    let (a, b, c) = start_chain();
    let mut edge = ServiceClient::connect_binary(c.local_addr()).expect("connect C");

    // A nested family: each subscription covers the next.
    let mut accepted = 0u64;
    for i in 0..12i64 {
        let sub = Subscription::from_ranges(
            &schema,
            vec![
                Range::new(i, 49 - i).unwrap(),
                Range::new(i, 49 - i).unwrap(),
            ],
        )
        .unwrap();
        edge.subscribe(SubscriptionId(i as u64), &sub)
            .expect("subscribe");
        accepted += 1;
    }

    let edge_stats = c.federation_stats();
    assert_eq!(
        edge_stats.subs_forwarded, 1,
        "only the outermost subscription crosses the uplink"
    );
    assert_eq!(edge_stats.subs_suppressed, accepted - 1);

    let transit_stats = b.federation_stats();
    assert!(
        transit_stats.subs_received < accepted,
        "forwarded/received ratio must be < 1.0: transit saw {} of {accepted}",
        transit_stats.subs_received
    );
    assert_eq!(transit_stats.subs_received, 1);

    // Deliveries still reach the innermost subscription from node A.
    let mut publisher = ServiceClient::connect_binary(a.local_addr()).expect("connect A");
    let p = Publication::from_values(&schema, vec![24, 24]).unwrap();
    let got = publisher.publish(&p).expect("publish");
    assert_eq!(got.len(), 12, "all nested subscriptions match the center");

    drop(edge);
    drop(publisher);
    a.stop();
    b.stop();
    c.stop();
}
