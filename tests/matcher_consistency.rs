//! Differential tests: all three matching engines agree on realistic
//! workload streams, including after unsubscriptions.

use psc::core::SubsumptionChecker;
use psc::matcher::{CountingIndex, CoveringStore, NaiveMatcher};
use psc::model::SubscriptionId;
use psc::workload::{seeded_rng, ComparisonWorkload};

fn sorted(mut v: Vec<SubscriptionId>) -> Vec<SubscriptionId> {
    v.sort_unstable_by_key(|s| s.0);
    v
}

#[test]
fn three_engines_agree_on_comparison_workload() {
    let wl = ComparisonWorkload::new(8);
    let schema = wl.schema();
    let mut rng = seeded_rng(42);
    let subs = wl.stream(150, &mut rng);

    let mut naive = NaiveMatcher::new();
    let mut counting = CountingIndex::new(&schema);
    let mut store = CoveringStore::new(
        SubsumptionChecker::builder()
            .error_probability(1e-9)
            .build(),
    );
    for (i, s) in subs.iter().enumerate() {
        let id = SubscriptionId(i as u64);
        naive.insert(id, s.clone());
        counting.insert(id, s.clone());
        store.insert(id, s.clone(), &mut rng);
    }

    for _ in 0..200 {
        let p = wl.publication(&schema, &mut rng);
        let a = sorted(naive.matches(&p));
        let b = sorted(counting.matches(&p));
        let c = sorted(store.match_publication(&p));
        assert_eq!(a, b, "counting diverged on {p}");
        assert_eq!(a, c, "covering store diverged on {p}");
    }
}

#[test]
fn engines_agree_after_random_unsubscriptions() {
    let wl = ComparisonWorkload::new(6);
    let schema = wl.schema();
    let mut rng = seeded_rng(77);
    let subs = wl.stream(80, &mut rng);

    let mut naive = NaiveMatcher::new();
    let mut counting = CountingIndex::new(&schema);
    let mut store = CoveringStore::new(
        SubsumptionChecker::builder()
            .error_probability(1e-9)
            .build(),
    );
    for (i, s) in subs.iter().enumerate() {
        let id = SubscriptionId(i as u64);
        naive.insert(id, s.clone());
        counting.insert(id, s.clone());
        store.insert(id, s.clone(), &mut rng);
    }
    // Remove a third of the subscriptions, exercising covered-entry
    // promotion in the store.
    for i in 0..80u64 {
        if i % 3 == 0 {
            let id = SubscriptionId(i);
            assert_eq!(naive.remove(id), 1);
            assert_eq!(counting.remove(id), 1);
            assert!(store.remove(id, &mut rng));
        }
    }
    assert_eq!(naive.len(), store.len());
    assert_eq!(naive.len(), counting.len());

    for _ in 0..150 {
        let p = wl.publication(&schema, &mut rng);
        let a = sorted(naive.matches(&p));
        let b = sorted(counting.matches(&p));
        let c = sorted(store.match_publication(&p));
        assert_eq!(a, b, "counting diverged after removals on {p}");
        assert_eq!(a, c, "covering store diverged after removals on {p}");
    }
}

#[test]
fn covering_store_phase_skip_is_effective_on_real_streams() {
    // The point of Algorithm 5: publications matching nothing active skip
    // the covered pool entirely.
    let wl = ComparisonWorkload::new(10);
    let schema = wl.schema();
    let mut rng = seeded_rng(123);
    let subs = wl.stream(200, &mut rng);
    let mut store = CoveringStore::new(
        SubsumptionChecker::builder()
            .error_probability(1e-6)
            .build(),
    );
    for (i, s) in subs.iter().enumerate() {
        store.insert(SubscriptionId(i as u64), s.clone(), &mut rng);
    }
    assert!(
        store.covered_len() > 0,
        "stream should produce covered entries"
    );
    store.reset_stats();
    for _ in 0..300 {
        let p = wl.publication(&schema, &mut rng);
        let _ = store.match_publication(&p);
    }
    let stats = store.stats();
    assert!(
        stats.covered_skipped + stats.phase2_skipped > 0,
        "two-phase gating never fired: {stats:?}"
    );
}
