//! In-workspace property-testing harness exposing the slice of the
//! `proptest` 1.x API the workspace's tests use.
//!
//! The build environment has no registry access. This stand-in keeps the
//! `proptest!` / `prop_compose!` test surface source-compatible while
//! implementing generation as plain seeded random sampling:
//!
//! - [`Strategy`] — a value generator with `prop_map`;
//! - integer range strategies (`0i64..16`, `0u64..=5`), tuples of
//!   strategies, [`collection::vec`], and [`bool::ANY`];
//! - [`proptest!`], [`prop_compose!`], [`prop_assert!`], [`prop_assert_eq!`];
//! - [`ProptestConfig::with_cases`].
//!
//! No shrinking: a failing case panics with the assertion message, and the
//! case index is printed so the exact inputs are reproducible (generation is
//! a pure function of `test name × case index`).

#![forbid(unsafe_code)]

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for `case` of the named test; pure function of both.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Runtime configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; PROPTEST_CASES overrides.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }
}

/// Strategy combinators and adapters.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy backed by a closure (used by `prop_compose!`).
    pub struct Func<F> {
        f: F,
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for Func<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Wraps a closure as a [`Strategy`].
    pub fn func<T, F: Fn(&mut TestRng) -> T>(f: F) -> Func<F> {
        Func { f }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Declares property tests. Each `fn` runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __guard = $crate::CasePanicContext { case: __case };
                    { $body }
                    ::core::mem::forget(__guard);
                }
            }
        )*
    };
}

/// Prints the failing case index if a property body panics.
#[doc(hidden)]
pub struct CasePanicContext {
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property failed at case {} (regenerate with the same test name/case)",
                self.case
            );
        }
    }
}

/// Declares a function returning a composed [`Strategy`].
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
     ($($arg:pat in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::func(move |__rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob-import surface tests expect from `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{self, Map};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1_000 {
            let v = Strategy::generate(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&v));
            let w = Strategy::generate(&(3usize..=5), &mut rng);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vecs", 1);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0i64..4, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..4).contains(&x)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0i64..100, 0u64..9).prop_map(|(a, b)| a as u64 + b);
        let a = Strategy::generate(&strat, &mut TestRng::for_case("det", 3));
        let b = Strategy::generate(&strat, &mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
    }

    prop_compose! {
        fn arb_pair(hi: i64)(a in 0i64..16, b in 0i64..16) -> (i64, i64) {
            (a.min(hi), b.min(hi))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn composed_strategy_respects_cap(p in arb_pair(7)) {
            prop_assert!(p.0 <= 7 && p.1 <= 7);
        }

        #[test]
        fn tuples_and_vecs_compose(
            xs in crate::collection::vec((0i64..5, crate::bool::ANY), 1..4),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!xs.is_empty());
            let _ = flag;
            for (x, _b) in xs {
                prop_assert!((0..5).contains(&x));
            }
        }
    }
}
