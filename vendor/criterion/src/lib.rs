//! In-workspace micro-benchmark harness exposing the slice of the
//! `criterion` 0.5 API the workspace's bench targets use.
//!
//! The build environment has no registry access, so instead of the real
//! criterion this crate implements a small but honest measurement loop:
//! per benchmark it calibrates an iteration count so each sample takes at
//! least [`MIN_SAMPLE_NANOS`], collects `sample_size` samples, and reports
//! min / median / mean wall-clock time per iteration.
//!
//! Supported CLI of a bench binary (what `cargo bench` passes through):
//! positional args are substring filters on the benchmark id; `--test` (or
//! `--quick`) runs every benchmark once without timing; other flags are
//! ignored.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum duration of one timed sample, in nanoseconds.
pub const MIN_SAMPLE_NANOS: u64 = 2_000_000;

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Measured nanoseconds per iteration for each sample; empty in test mode.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fill MIN_SAMPLE_NANOS?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as u64;
        let iters = (MIN_SAMPLE_NANOS / once).clamp(1, 10_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters as f64);
        }
    }
}

fn human(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{id:<50} ok (test mode)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<50} median {:>10}/iter  mean {:>10}  min {:>10}  (n={})",
        human(median),
        human(mean),
        human(min),
        samples.len(),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Advisory in the real criterion; accepted and ignored here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Advisory in the real criterion; accepted and ignored here.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `routine` with `input`, reporting under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&full, sample_size, |b| routine(b, input));
        self
    }

    /// Runs `routine`, reporting under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| routine(b));
        self
    }

    /// Ends the group (separator line in the report).
    pub fn finish(self) {
        if !self.criterion.test_mode {
            println!();
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => test_mode = true,
                s if s.starts_with("--") => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion {
            filters,
            test_mode,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let sample_size = self.default_sample_size;
        self.run_one(&id, sample_size, |b| routine(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut routine: F) {
        if !self.filters.is_empty() && !self.filters.iter().any(|f| id.contains(f.as_str())) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        report(id, &mut bencher.samples);
    }
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn test_mode_skips_timing() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            samples: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }
}
