//! In-workspace stand-in for `serde`.
//!
//! The build environment has no access to crates.io. The workspace keeps its
//! `#[derive(Serialize, Deserialize)]` annotations (so a real serde can be
//! swapped in later), and this crate makes them compile by re-exporting
//! no-op derive macros plus empty marker traits of the same names. Actual
//! wire-format encoding lives in `psc_model::wire`, which hand-rolls the
//! line-delimited JSON the service layer speaks.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
