//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace annotates its data types with serde derives so that a real
//! serde can be dropped in when the build environment gains registry access,
//! but nothing in-tree calls serde's trait machinery: the wire layer
//! (`psc_model::wire`) hand-rolls its JSON encoding instead. These derives
//! therefore expand to nothing; they exist so the annotations compile.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
