//! In-workspace stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) slice of the `rand` 0.8 API the workspace actually uses:
//!
//! - [`RngCore`] / [`Rng`] with `gen_range` (half-open and inclusive integer
//!   and float ranges), `gen_bool`, and `gen::<T>()`;
//! - [`SeedableRng::seed_from_u64`];
//! - [`rngs::StdRng`], a xoshiro256++ generator seeded via SplitMix64.
//!
//! Determinism matters more than statistical pedigree here: every workload
//! generator and test in the workspace seeds its RNG explicitly, and
//! xoshiro256++ passes the statistical tests that matter for Monte-Carlo
//! sampling at the scales the experiments run at. Integer range sampling
//! uses the widening-multiply technique (Lemire), whose bias is at most
//! `span / 2^64` per draw.

#![forbid(unsafe_code)]

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniformly sampled value for `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A `f64` in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough integer in `[0, span)` via widening multiply.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty float range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty float range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`]. The single blanket impl
/// per range shape is what lets type inference flow both from the range's
/// element type and from the expected result type, as in the real rand.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The generator's internal state, for persistence.
        ///
        /// This is a vendor extension (the real `rand` crate exposes
        /// serde-based state capture instead): the service layer's
        /// snapshot files save the shard RNG alongside the store so that
        /// replaying a write-ahead log after recovery consumes the exact
        /// random stream the live shard would have, keeping probabilistic
        /// subsumption decisions reproducible across restarts.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`state`](StdRng::state).
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> i64 {
            rng.gen_range(0i64..100)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = draw(&mut rng);
        assert!((0..100).contains(&v));
    }
}
