//! MCS reduction cost (Algorithm 3) on covered and non-covered instances —
//! the machinery behind Figures 6 and 8.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::{covered_instance, non_covered_instance};
use psc_core::MinimizedCoverSet;

fn bench_mcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcs/reduce");
    for k in [40, 130, 310] {
        for m in [10, 20] {
            let (s, set) = covered_instance(m, k);
            group.bench_with_input(
                BenchmarkId::new("covered", format!("m{m}_k{k}")),
                &(s, set),
                |b, (s, set)| b.iter(|| MinimizedCoverSet::reduce(black_box(s), black_box(set))),
            );
            let (s, set) = non_covered_instance(m, k);
            group.bench_with_input(
                BenchmarkId::new("non_cover", format!("m{m}_k{k}")),
                &(s, set),
                |b, (s, set)| b.iter(|| MinimizedCoverSet::reduce(black_box(s), black_box(set))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mcs);
criterion_main!(benches);
