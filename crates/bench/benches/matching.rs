//! Publication matching (Algorithm 5): naive scan vs counting index vs the
//! two-phase covered/uncovered store.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::stream_fixture;
use psc_core::SubsumptionChecker;
use psc_matcher::{CountingIndex, CoveringStore, NaiveMatcher};
use psc_model::SubscriptionId;
use psc_workload::seeded_rng;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(30);
    for n in [200usize, 1000] {
        let (schema, subs, pubs) = stream_fixture(10, n, 64);

        let mut naive = NaiveMatcher::new();
        let mut counting = CountingIndex::new(&schema);
        let mut store = CoveringStore::new(
            SubsumptionChecker::builder()
                .error_probability(1e-6)
                .max_iterations(500)
                .build(),
        );
        let mut rng = seeded_rng(9);
        for (i, s) in subs.iter().enumerate() {
            naive.insert(SubscriptionId(i as u64), s.clone());
            counting.insert(SubscriptionId(i as u64), s.clone());
            store.insert(SubscriptionId(i as u64), s.clone(), &mut rng);
        }
        // Warm the counting index (first query rebuilds).
        let _ = counting.matches(&pubs[0]);

        group.bench_with_input(BenchmarkId::new("naive", n), &pubs, |b, pubs| {
            b.iter(|| {
                for p in pubs {
                    black_box(naive.matches(p));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("counting", n), &pubs, |b, pubs| {
            b.iter(|| {
                for p in pubs {
                    black_box(counting.matches(p));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("two_phase_store", n), &pubs, |b, pubs| {
            b.iter(|| {
                for p in pubs {
                    black_box(store.match_publication(p));
                }
            })
        });
    }
    group.finish();
}

fn bench_cover_path(c: &mut Criterion) {
    use psc_core::PairwiseChecker;
    use psc_matcher::CoverIndex;

    let mut group = c.benchmark_group("cover_path");
    group.sample_size(30);
    for n in [200usize, 1000] {
        let (schema, subs, _) = stream_fixture(10, n + 32, 0);
        let (probes, stored) = subs.split_at(32);

        let naive_set: Vec<_> = stored.to_vec();
        let mut idx = CoverIndex::new(&schema);
        for (i, s) in stored.iter().enumerate() {
            idx.insert(SubscriptionId(i as u64), s.clone());
        }
        let _ = idx.find_cover(&probes[0]); // warm the sorted view

        group.bench_with_input(
            BenchmarkId::new("naive_find_cover", n),
            &probes,
            |b, probes| {
                b.iter(|| {
                    for p in *probes {
                        black_box(PairwiseChecker.find_cover(p, &naive_set));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("indexed_find_cover", n),
            &probes,
            |b, probes| {
                b.iter(|| {
                    for p in *probes {
                        black_box(idx.find_cover(p));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_cover_path);
criterion_main!(benches);
