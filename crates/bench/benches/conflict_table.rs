//! Conflict-table construction (Definition 2): verifies the `O(m·k)` build
//! cost and the conflict-free-count computation that MCS relies on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::covered_instance;
use psc_core::ConflictTable;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_table/build");
    for (m, k) in [(10, 100), (10, 310), (20, 100), (20, 310)] {
        let (s, set) = covered_instance(m, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_k{k}")),
            &(s, set),
            |b, (s, set)| b.iter(|| ConflictTable::build(black_box(s), black_box(set))),
        );
    }
    group.finish();
}

fn bench_conflict_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_table/conflict_free_counts");
    for (m, k) in [(10, 100), (20, 310)] {
        let (s, set) = covered_instance(m, k);
        let table = ConflictTable::build(&s, &set);
        group.bench_with_input(
            BenchmarkId::new("linear", format!("m{m}_k{k}")),
            &table,
            |b, t| b.iter(|| black_box(t).conflict_free_counts()),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_quadratic", format!("m{m}_k{k}")),
            &table,
            |b, t| b.iter(|| black_box(t).conflict_free_counts_naive()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_conflict_free);
criterion_main!(benches);
