//! The full Algorithm-4 pipeline with stage ablations (DESIGN.md §7):
//! quantifies what each fast path buys on covered and non-covered inputs —
//! the companion measurement to Figures 7 and 9.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::{covered_instance, non_covered_instance};
use psc_core::SubsumptionChecker;
use psc_workload::seeded_rng;

fn checkers() -> Vec<(&'static str, SubsumptionChecker)> {
    let base = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .max_iterations(5_000);
    vec![
        ("full", base.clone().build()),
        ("no_mcs", base.clone().mcs(false).build()),
        (
            "no_corollary3",
            base.clone().corollary3_fast_path(false).build(),
        ),
        (
            "bare_rspc",
            base.pairwise_fast_path(false)
                .corollary3_fast_path(false)
                .mcs(false)
                .prefilter_disjoint(false)
                .build(),
        ),
    ]
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/check");
    group.sample_size(20);
    let covered = covered_instance(10, 130);
    let non_covered = non_covered_instance(10, 130);
    for (label, checker) in checkers() {
        group.bench_with_input(
            BenchmarkId::new("covered_m10_k130", label),
            &covered,
            |b, (s, set)| {
                let mut rng = seeded_rng(3);
                b.iter(|| checker.check(black_box(s), black_box(set), &mut rng))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("non_cover_m10_k130", label),
            &non_covered,
            |b, (s, set)| {
                let mut rng = seeded_rng(4);
                b.iter(|| checker.check(black_box(s), black_box(set), &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
