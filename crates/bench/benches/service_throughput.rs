//! Publication-matching throughput of the sharded service at shard counts
//! {1, 2, 4, 8} on the paper's uniform workload.
//!
//! Two sections:
//!
//! 1. criterion-style per-call timings of `publish` and `publish_batch`;
//! 2. a throughput report measuring sustained publications/second per
//!    shard count and printing the N-shard vs 1-shard speedup.
//!
//! Sharding parallelizes matching across worker threads, so the speedup
//! section is meaningful only when the host grants the process multiple
//! CPUs. The report prints the detected CPU count and *skips* shard
//! counts above it — on a 1-CPU container a 4-shard row would report a
//! meaningless ~1.0x "speedup" that measures scheduling, not sharding.

use criterion::{black_box, BenchmarkId, Criterion};
use psc_bench::{skewed_fixture, uniform_fixture};
use psc_model::{Publication, Schema, Subscription, SubscriptionId};
use psc_service::{FsyncPolicy, PubSubService, ServiceConfig};
use std::path::PathBuf;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SUBSCRIPTIONS: usize = 4_000;
const PUBLICATIONS: usize = 256;
const ATTRIBUTES: usize = 4;
const MAX_WIDTH: i64 = 250;

fn build_service(schema: &Schema, subs: &[Subscription], shards: usize) -> PubSubService {
    build_service_with(schema, subs, shards, None)
}

fn build_service_with(
    schema: &Schema,
    subs: &[Subscription],
    shards: usize,
    data_dir: Option<PathBuf>,
) -> PubSubService {
    let service = PubSubService::start(
        schema.clone(),
        ServiceConfig {
            shards,
            batch_size: 64,
            data_dir,
            // The durability configuration under test: log every
            // admission (no per-record fsync) and snapshot periodically.
            fsync: FsyncPolicy::Never,
            snapshot_every: 1_024,
            ..Default::default()
        },
    );
    for (i, s) in subs.iter().enumerate() {
        service
            .subscribe(SubscriptionId(i as u64), s.clone())
            .expect("subscribe fixture");
    }
    service.flush();
    // Barrier: a metrics scrape completes only after every admission batch
    // has been processed, so timing starts from a quiescent store.
    let totals = service.metrics().totals();
    assert_eq!(totals.subscriptions_ingested as usize, subs.len());
    service
}

fn bench_publish(c: &mut Criterion) {
    let (schema, subs, pubs) =
        uniform_fixture(ATTRIBUTES, SUBSCRIPTIONS, PUBLICATIONS, MAX_WIDTH, 0xB0B);
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(12);
    for shards in SHARD_COUNTS {
        let service = build_service(&schema, &subs, shards);
        group.bench_with_input(
            BenchmarkId::new("publish", shards),
            &pubs[..8],
            |b, pubs| {
                b.iter(|| {
                    for p in pubs {
                        black_box(service.publish(p).expect("publish"));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("publish_batch64", shards),
            &pubs[..64],
            |b, pubs| b.iter(|| black_box(service.publish_batch(pubs).expect("publish"))),
        );
    }
    group.finish();
}

/// Sustained publications/second per shard count, with speedup ratios.
fn throughput_report(test_mode: bool) {
    let (rounds, n_subs, n_pubs) = if test_mode {
        (1, 400, 32)
    } else {
        (5, SUBSCRIPTIONS, PUBLICATIONS)
    };
    let (schema, subs, pubs): (Schema, Vec<Subscription>, Vec<Publication>) =
        uniform_fixture(ATTRIBUTES, n_subs, n_pubs, MAX_WIDTH, 0xCAFE);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "service throughput report: {n_subs} subscriptions, batches of {n_pubs} publications, {cores} CPU(s) available"
    );
    if cores < *SHARD_COUNTS.iter().max().expect("shard counts") {
        println!(
            "  note: shard speedup is thread parallelism; shard counts above the host's \
             {cores} CPU(s) are skipped because their ~1.0x ratio would measure scheduling, \
             not sharding"
        );
    }
    let mut baseline = None;
    for shards in SHARD_COUNTS {
        if shards > cores {
            println!(
                "  shards={shards:<2} skipped (host has {cores} CPU(s); \
                 run on a >= {shards}-core host to measure this point)"
            );
            continue;
        }
        let service = build_service(&schema, &subs, shards);
        // Warm-up round, then timed rounds over the whole batch.
        let _ = service.publish_batch(&pubs).expect("publish");
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(service.publish_batch(&pubs).expect("publish"));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let pubs_per_sec = (rounds * pubs.len()) as f64 / elapsed;
        let ratio = match baseline {
            None => {
                baseline = Some(pubs_per_sec);
                1.0
            }
            Some(base) => pubs_per_sec / base,
        };
        println!(
            "  shards={shards:<2} throughput: {pubs_per_sec:>12.0} pubs/s   speedup vs 1 shard: {ratio:.2}x"
        );
    }
}

/// Publish throughput with durable storage (WAL + snapshots, fsync off)
/// vs the in-memory baseline, at one shard count.
///
/// Publishing never touches the log — only admissions and removals do —
/// so the durable service's *publish* path should be within noise of the
/// in-memory one (the acceptance bar is a <10% regression). Admission
/// cost (which does pay for logging) is reported alongside for context.
fn durability_report(test_mode: bool) {
    let (rounds, n_subs, n_pubs) = if test_mode {
        (1, 400, 32)
    } else {
        (5, SUBSCRIPTIONS, PUBLICATIONS)
    };
    let (schema, subs, pubs): (Schema, Vec<Subscription>, Vec<Publication>) =
        uniform_fixture(ATTRIBUTES, n_subs, n_pubs, MAX_WIDTH, 0xD15C);
    let data_dir = std::env::temp_dir().join(format!("psc-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    println!("\ndurability report: in-memory vs durable (WAL + snapshots, fsync off), 1 shard");
    let mut rates = Vec::new();
    for (label, dir) in [("in-memory", None), ("durable  ", Some(data_dir.clone()))] {
        let ingest_start = Instant::now();
        let service = build_service_with(&schema, &subs, 1, dir);
        let ingest = ingest_start.elapsed().as_secs_f64();
        let _ = service.publish_batch(&pubs).expect("publish"); // warm-up
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(service.publish_batch(&pubs).expect("publish"));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let pubs_per_sec = (rounds * pubs.len()) as f64 / elapsed;
        rates.push(pubs_per_sec);
        println!(
            "  {label} publish: {pubs_per_sec:>12.0} pubs/s   \
             (admitting {n_subs} subscriptions took {ingest:.3}s)"
        );
    }
    println!(
        "  durable/in-memory publish ratio: {:.3} (acceptance: > 0.9)",
        rates[1] / rates[0]
    );
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Shard visits vs prunes per workload scenario at 8 shards — the
/// content-aware-routing report.
///
/// Unlike the speedup report, this one is meaningful on any host: pruning
/// is a *routing* property (how many shard visits the per-shard
/// attribute-space summaries eliminate), measured from the service's own
/// counters, not from timing. The routed/fan-out-all throughput pair is
/// printed for context and is timing (CPU-sensitive); the visit counts
/// are deterministic per fixture seed.
fn fanout_report(test_mode: bool) {
    const SHARDS: usize = 8;
    let (n_subs, n_pubs) = if test_mode {
        (400, 64)
    } else {
        (SUBSCRIPTIONS, PUBLICATIONS)
    };
    println!(
        "\nfan-out report: {SHARDS} shards, {n_subs} subscriptions, \
         {n_pubs} publications per round"
    );
    type Fixture = (Schema, Vec<Subscription>, Vec<Publication>);
    let scenarios: [(&str, Fixture); 2] = [
        (
            "uniform",
            uniform_fixture(ATTRIBUTES, n_subs, n_pubs, MAX_WIDTH, 0xFA17),
        ),
        (
            "skewed ",
            skewed_fixture(ATTRIBUTES, n_subs, n_pubs, MAX_WIDTH, 0xFA17),
        ),
    ];
    let mut skewed_pruned_pct = 0.0;
    for (label, (schema, subs, pubs)) in &scenarios {
        let mut rates = Vec::new();
        let mut pruned = 0u64;
        for routing_enabled in [false, true] {
            let service = PubSubService::start(
                schema.clone(),
                ServiceConfig {
                    shards: SHARDS,
                    batch_size: 64,
                    routing_enabled,
                    ..Default::default()
                },
            );
            for (i, s) in subs.iter().enumerate() {
                service
                    .subscribe(SubscriptionId(i as u64), s.clone())
                    .expect("subscribe fixture");
            }
            let _ = service.metrics(); // barrier: admissions + summaries applied
            let _ = service.publish_batch(pubs).expect("publish"); // warm-up
            let rounds = if test_mode { 1 } else { 3 };
            let start = Instant::now();
            for _ in 0..rounds {
                black_box(service.publish_batch(pubs).expect("publish"));
            }
            let elapsed = start.elapsed().as_secs_f64();
            rates.push((rounds * pubs.len()) as f64 / elapsed);
            if routing_enabled {
                // Visit accounting for exactly one round (the counters
                // accumulated over warm-up + timed rounds).
                let total = service.metrics().totals().shards_pruned;
                pruned = total / (rounds as u64 + 1);
            }
        }
        let possible = (pubs.len() * SHARDS) as u64;
        let visited = possible - pruned;
        let pruned_pct = 100.0 * pruned as f64 / possible as f64;
        if label.trim() == "skewed" {
            skewed_pruned_pct = pruned_pct;
        }
        println!(
            "  scenario={label} shard visits: {visited:>5}/{possible} \
             pruned: {pruned:>5} ({pruned_pct:>5.1}%)   \
             routed {:>10.0} pubs/s vs fan-out-all {:>10.0} pubs/s ({:.2}x)",
            rates[1],
            rates[0],
            rates[1] / rates[0],
        );
    }
    println!(
        "  acceptance: skewed workload prunes {skewed_pruned_pct:.1}% of shard visits \
         at {SHARDS} shards (bar: >= 30%)"
    );
    assert!(
        skewed_pruned_pct >= 30.0,
        "content-aware routing must prune >= 30% of shard visits on the skewed workload"
    );
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test" || a == "--quick");
    let mut criterion = Criterion::default();
    bench_publish(&mut criterion);
    throughput_report(test_mode);
    durability_report(test_mode);
    fanout_report(test_mode);
}
