//! Broker-network propagation cost per covering policy (the distributed
//! setting of Figures 1 and 5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::stream_fixture;
use psc_broker::{BrokerId, CoveringPolicy, Network, Topology};
use psc_model::SubscriptionId;
use psc_workload::seeded_rng;
use rand::Rng;

fn bench_subscribe(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker/subscribe_200_subs_25_brokers");
    group.sample_size(10);
    let (_, subs, _) = stream_fixture(10, 200, 0);
    for policy in [
        CoveringPolicy::Flooding,
        CoveringPolicy::Pairwise,
        CoveringPolicy::group(1e-6),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let mut rng = seeded_rng(21);
                    let topo = Topology::random_tree(25, &mut rng);
                    let mut net = Network::new(topo, policy.clone(), 22);
                    for (i, s) in subs.iter().enumerate() {
                        let at = BrokerId(rng.gen_range(0..25));
                        net.subscribe(at, SubscriptionId(i as u64), s.clone());
                    }
                    black_box(net.metrics())
                })
            },
        );
    }
    group.finish();
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker/publish_64_pubs");
    group.sample_size(10);
    let (schema, subs, pubs) = stream_fixture(10, 200, 64);
    let _ = schema;
    let mut rng = seeded_rng(23);
    let topo = Topology::random_tree(25, &mut rng);
    let mut net = Network::new(topo, CoveringPolicy::Pairwise, 24);
    for (i, s) in subs.iter().enumerate() {
        let at = BrokerId(rng.gen_range(0..25));
        net.subscribe(at, SubscriptionId(i as u64), s.clone());
    }
    group.bench_function("pairwise_routed", |b| {
        b.iter(|| {
            let mut delivered = 0usize;
            for p in &pubs {
                delivered += net.publish(BrokerId(0), p).delivered_to.len();
            }
            black_box(delivered)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_subscribe, bench_publish);
criterion_main!(benches);
