//! Stream filtering cost: pairwise vs group coverage over the realistic
//! comparison workload (the per-arrival cost behind Figures 13 and 14).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::stream_fixture;
use psc_core::{PairwiseChecker, SubsumptionChecker};
use psc_model::Subscription;
use psc_workload::seeded_rng;

fn filter_pairwise(stream: &[Subscription]) -> usize {
    let mut active: Vec<Subscription> = Vec::new();
    for s in stream {
        if !PairwiseChecker.is_covered(s, &active) {
            active.push(s.clone());
        }
    }
    active.len()
}

fn filter_group(stream: &[Subscription], checker: &SubsumptionChecker) -> usize {
    let mut rng = seeded_rng(11);
    let mut active: Vec<Subscription> = Vec::new();
    for s in stream {
        if !checker.check(s, &active, &mut rng).is_covered() {
            active.push(s.clone());
        }
    }
    active.len()
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparison_stream");
    group.sample_size(10);
    for m in [10usize, 20] {
        let (_, stream, _) = stream_fixture(m, 500, 0);
        group.bench_with_input(BenchmarkId::new("pairwise", m), &stream, |b, stream| {
            b.iter(|| black_box(filter_pairwise(stream)))
        });
        let checker = SubsumptionChecker::builder()
            .error_probability(1e-6)
            .max_iterations(2_000)
            .build();
        group.bench_with_input(BenchmarkId::new("group", m), &stream, |b, stream| {
            b.iter(|| black_box(filter_group(stream, &checker)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
