//! RSPC sampling cost (Algorithm 1): per-guess cost and full runs on the
//! extreme non-cover scenario (Figures 10 and 11).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::extreme_instance;
use psc_core::rspc::{sample_point, Rspc};
use psc_workload::seeded_rng;

fn bench_sample_point(c: &mut Criterion) {
    let (s, _) = extreme_instance(0.02);
    let mut rng = seeded_rng(1);
    let mut out = Vec::new();
    c.bench_function("rspc/sample_point_m5", |b| {
        b.iter(|| {
            sample_point(black_box(&s), &mut rng, &mut out);
            black_box(&out);
        })
    });
}

fn bench_rspc_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("rspc/run_extreme");
    for gap in [0.005, 0.02, 0.045] {
        let (s, set) = extreme_instance(gap);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gap{}", (gap * 1000.0) as u32)),
            &(s, set),
            |b, (s, set)| {
                let mut rng = seeded_rng(2);
                // Budget matching delta = 1e-6 at the scenario's typical
                // estimated rho_w (~1/k): ln(1e-6)/ln(1-0.02) ~ 683.
                let rspc = Rspc::new(683);
                b.iter(|| rspc.run(black_box(s), black_box(set), &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sample_point, bench_rspc_run);
criterion_main!(benches);
