//! `loadgen` — a load-generator harness for the serving layer.
//!
//! Drives a real [`ServiceServer`] (TCP + epoll reactor) with concurrent
//! subscriber connections, connection churn waves, deliberately slow
//! consumers, and skewed/semantic workloads; measures client-observed
//! publish round-trip latency into the same log-bucketed histograms the
//! server uses; scrapes the server's per-stage latency over the wire;
//! and emits one machine-readable JSON report (the `BENCH_*.json`
//! trajectory — schema documented in `docs/OBSERVABILITY.md` and
//! enforced by [`psc_bench::validate_bench_report`]).
//!
//! ```text
//! loadgen [--smoke] [--durability] [--proto json|binary|both] [--out PATH]
//! loadgen --validate PATH           # schema-check an existing report
//! ```
//!
//! `--smoke` shrinks every scenario to CI scale (tens of connections,
//! hundreds of publishes, a few seconds total) while keeping the report
//! schema identical to the full run, so CI validates the exact artifact
//! shape a full run commits.
//!
//! The throughput-focused scenarios (`steady`, `skewed`, `firehose`)
//! run twice — once per wire protocol, tagged `"protocol": "json" |
//! "binary"` in the report — which is the recorded evidence for the
//! binary protocol's publish-path speedup. `firehose` (a deeply
//! pipelined producer of wide events against a small store) is the
//! scenario where the wire codec dominates; `steady` at 4000
//! subscriptions is match-bound, so its protocol gap is narrower by
//! design. `--proto` restricts the run to one protocol. The policy
//! scenarios (churn, slow consumers, semantic expansion) stay json-only:
//! they measure reactor policies, not codec cost.
//!
//! `--durability` appends the durable scenario matrix: `steady` and
//! `firehose` re-run against a server with a write-ahead log, under
//! `fsync: always` and `fsync: never`, per protocol. Those scenarios are
//! tagged `"fsync_policy": "always" | "never"` in the report (in-memory
//! scenarios carry `"none"`), and record `subscribe_secs` — the time to
//! load the fleet's subscriptions plus a durability barrier, which is
//! where group commit earns its keep (publishes are never logged, so
//! publish throughput should ride within a whisker of in-memory).

use psc_bench::{semantic_fixture, skewed_fixture, uniform_fixture, validate_bench_report};
use psc_model::wire::Json;
use psc_model::{Publication, Schema, Subscription, SubscriptionId};
use psc_service::telemetry::{stage_summary, LogHistogram};
use psc_service::wire::Request;
use psc_service::{ClientProtocol, FsyncPolicy, ServiceClient, ServiceConfig, ServiceServer};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which fixture family feeds a scenario.
#[derive(Clone, Copy)]
enum Workload {
    /// Uniform ranges/values (the paper's baseline workload).
    Uniform,
    /// Uniform over a wide 12-attribute schema — telemetry-shaped events
    /// where the wire codec's per-attribute cost is the dominant term.
    Wide,
    /// Topic-skewed subscribers with a long-tail publication mix.
    Skewed,
    /// Synonym-expanded disjunctive templates (`psc_model::expand`).
    Semantic,
}

/// One scenario's sizing. Every scenario runs against a fresh server so
/// its histograms are not polluted by earlier phases.
struct Spec {
    name: &'static str,
    /// Wire protocol every client in this scenario speaks.
    proto: ClientProtocol,
    /// Fixture seed index, stable per (name) across protocol variants so
    /// json and binary runs of the same scenario replay the identical
    /// subscription/publication stream.
    seed_index: u64,
    workload: Workload,
    subscriber_conns: usize,
    subs_per_conn: usize,
    publishers: usize,
    publishes_per_publisher: usize,
    /// Connect→subscribe→unsubscribe→disconnect waves run while the
    /// publishers are active.
    churn_waves: usize,
    churn_wave_conns: usize,
    /// Connections that pipeline `stats` requests without ever reading a
    /// response, to force the reactor's slow-consumer policy.
    slow_consumers: usize,
    /// `Some(policy)` gives the server a write-ahead log in a scratch
    /// `data_dir` under that fsync policy; `None` runs in memory.
    fsync: Option<FsyncPolicy>,
    /// Shard count for this scenario's server. Most scenarios keep the
    /// historical 2 (their trajectory baselines were recorded there);
    /// the `uniform` pruning pair runs at 8, where placement's shard
    /// specialization has room to show.
    shards: usize,
    /// Whether the server routes subscriptions with greedy content-aware
    /// placement (the service default) or the hash baseline. Reported as
    /// the `"placement"` tag.
    placement: bool,
}

impl Spec {
    /// Publisher pipelining depth: the firehose producer batches deep;
    /// everything else keeps a shallow window so its client RTT numbers
    /// stay per-publish.
    fn pipeline_window(&self) -> usize {
        match self.name {
            "firehose" => FIREHOSE_WINDOW,
            _ => PIPELINE_WINDOW,
        }
    }
}

/// Which protocols a run covers.
#[derive(Clone, Copy, PartialEq)]
enum ProtoFilter {
    Json,
    Binary,
    Both,
}

impl ProtoFilter {
    fn admits(self, proto: ClientProtocol) -> bool {
        match self {
            ProtoFilter::Json => proto == ClientProtocol::Json,
            ProtoFilter::Binary => proto == ClientProtocol::Binary,
            ProtoFilter::Both => true,
        }
    }
}

fn specs(smoke: bool, filter: ProtoFilter, durability: bool) -> Vec<Spec> {
    let spec = |name,
                proto,
                seed_index,
                workload,
                conns,
                per,
                publishers,
                pubs,
                waves,
                wave_conns,
                slow| Spec {
        name,
        proto,
        seed_index,
        workload,
        subscriber_conns: conns,
        subs_per_conn: per,
        publishers,
        publishes_per_publisher: pubs,
        churn_waves: waves,
        churn_wave_conns: wave_conns,
        slow_consumers: slow,
        fsync: None,
        shards: 2,
        placement: true,
    };
    use ClientProtocol::{Binary, Json as Jsonp};
    let mut all = if smoke {
        vec![
            spec(
                "steady",
                Jsonp,
                0,
                Workload::Uniform,
                40,
                2,
                2,
                150,
                0,
                0,
                0,
            ),
            spec(
                "steady",
                Binary,
                0,
                Workload::Uniform,
                40,
                2,
                2,
                150,
                0,
                0,
                0,
            ),
            spec("skewed", Jsonp, 1, Workload::Skewed, 30, 2, 2, 120, 0, 0, 0),
            spec(
                "skewed",
                Binary,
                1,
                Workload::Skewed,
                30,
                2,
                2,
                120,
                0,
                0,
                0,
            ),
            spec("firehose", Jsonp, 5, Workload::Wide, 20, 1, 1, 300, 0, 0, 0),
            spec(
                "firehose",
                Binary,
                5,
                Workload::Wide,
                20,
                1,
                1,
                300,
                0,
                0,
                0,
            ),
            spec(
                "churn",
                Jsonp,
                2,
                Workload::Uniform,
                30,
                2,
                2,
                150,
                3,
                10,
                0,
            ),
            spec(
                "slow_consumer",
                Jsonp,
                3,
                Workload::Uniform,
                20,
                2,
                2,
                120,
                0,
                0,
                2,
            ),
            spec(
                "semantic",
                Jsonp,
                4,
                Workload::Semantic,
                25,
                4,
                2,
                120,
                0,
                0,
                0,
            ),
        ]
    } else {
        vec![
            spec(
                "steady",
                Jsonp,
                0,
                Workload::Uniform,
                2000,
                2,
                4,
                3000,
                0,
                0,
                0,
            ),
            spec(
                "steady",
                Binary,
                0,
                Workload::Uniform,
                2000,
                2,
                4,
                3000,
                0,
                0,
                0,
            ),
            spec(
                "skewed",
                Jsonp,
                1,
                Workload::Skewed,
                1200,
                2,
                4,
                2500,
                0,
                0,
                0,
            ),
            spec(
                "skewed",
                Binary,
                1,
                Workload::Skewed,
                1200,
                2,
                4,
                2500,
                0,
                0,
                0,
            ),
            // The publish hot-path scenario: wide telemetry-shaped events
            // against a store small enough that matching stays cheap, one
            // deeply pipelined publisher — the wire protocol (decode +
            // encode + per-request overhead) dominates, so this pair
            // isolates binary-over-JSON gains that `steady` (match-bound
            // at 4000 subscriptions) dilutes.
            spec(
                "firehose",
                Jsonp,
                5,
                Workload::Wide,
                20,
                1,
                1,
                30000,
                0,
                0,
                0,
            ),
            spec(
                "firehose",
                Binary,
                5,
                Workload::Wide,
                20,
                1,
                1,
                30000,
                0,
                0,
                0,
            ),
            spec(
                "churn",
                Jsonp,
                2,
                Workload::Uniform,
                1000,
                2,
                4,
                2500,
                20,
                50,
                0,
            ),
            spec(
                "slow_consumer",
                Jsonp,
                3,
                Workload::Uniform,
                600,
                2,
                4,
                2000,
                0,
                0,
                8,
            ),
            spec(
                "semantic",
                Jsonp,
                4,
                Workload::Semantic,
                800,
                4,
                4,
                2500,
                0,
                0,
                0,
            ),
        ]
    };
    // The placement pruning matrix: the *uniform* workload (no topic
    // skew — the one where hash placement prunes ~nothing because every
    // shard's summary looks alike) at 8 shards, with greedy content-
    // aware placement on and off, per protocol. The report validator
    // enforces the pruning invariant on the placement-on runs: at least
    // 40% of shard visits pruned.
    let (un_conns, un_per, un_pubr, un_pubs) = if smoke {
        (30, 2, 2, 120)
    } else {
        (1200, 2, 4, 2500)
    };
    for placement in [true, false] {
        for proto in [Jsonp, Binary] {
            let mut uniform = spec(
                "uniform",
                proto,
                6,
                Workload::Uniform,
                un_conns,
                un_per,
                un_pubr,
                un_pubs,
                0,
                0,
                0,
            );
            uniform.shards = 8;
            uniform.placement = placement;
            all.push(uniform);
        }
    }
    if durability {
        // The durable matrix: the throughput scenarios re-run against a
        // WAL-backed server under both fsync policies. `steady` fronts a
        // real subscription load (the admissions are what gets logged
        // and group-committed); `firehose` shows the publish hot path
        // does not regress just because a log exists.
        let (st_conns, st_per, st_pubr, st_pubs, fh_pubs) = if smoke {
            (40, 2, 2, 150, 300)
        } else {
            (2000, 2, 4, 3000, 30000)
        };
        for policy in [FsyncPolicy::Always, FsyncPolicy::Never] {
            for proto in [Jsonp, Binary] {
                let mut steady = spec(
                    "steady",
                    proto,
                    0,
                    Workload::Uniform,
                    st_conns,
                    st_per,
                    st_pubr,
                    st_pubs,
                    0,
                    0,
                    0,
                );
                steady.fsync = Some(policy);
                all.push(steady);
                let mut firehose = spec(
                    "firehose",
                    proto,
                    5,
                    Workload::Wide,
                    20,
                    1,
                    1,
                    fh_pubs,
                    0,
                    0,
                    0,
                );
                firehose.fsync = Some(policy);
                all.push(firehose);
            }
        }
    }
    all.into_iter().filter(|s| filter.admits(s.proto)).collect()
}

fn proto_name(proto: ClientProtocol) -> &'static str {
    match proto {
        ClientProtocol::Json => "json",
        ClientProtocol::Binary => "binary",
    }
}

fn placement_name(placement: bool) -> &'static str {
    if placement {
        "on"
    } else {
        "off"
    }
}

fn fsync_name(fsync: Option<FsyncPolicy>) -> &'static str {
    match fsync {
        None => "none",
        Some(FsyncPolicy::Always) => "always",
        Some(FsyncPolicy::Never) => "never",
    }
}

/// Default publishes each publisher keeps in flight. Enough to keep the
/// reactor fed between the publisher's scheduler slices; small enough
/// that the recorded client latency stays a per-publish number, not a
/// batch one. The firehose scenario overrides it upward (see
/// [`Spec::pipeline_window`]).
const PIPELINE_WINDOW: usize = 32;

/// The firehose producer's window: deep pipelining in the style of a
/// batching event producer. The reactor turns each arriving window into
/// one shard fan-out, so deeper windows amortize every per-event cost —
/// at this depth the wire codec is what's left, and the client RTT
/// numbers read as window-drain times rather than per-publish latency.
const FIREHOSE_WINDOW: usize = 256;

fn generate(
    workload: Workload,
    subs: usize,
    pubs: usize,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    match workload {
        Workload::Uniform => uniform_fixture(4, subs, pubs, 300, seed),
        Workload::Wide => uniform_fixture(12, subs, pubs, 300, seed),
        Workload::Skewed => skewed_fixture(4, subs, pubs, 250, seed),
        // A request expands to 2–6 conjunctive subscriptions; ~5 on
        // average, so size the request count to land near `subs`.
        Workload::Semantic => semantic_fixture(subs.div_ceil(5).max(1), pubs, seed),
    }
}

/// The drain deadline for a slow consumer: long enough to overrun the
/// kernel's loopback socket buffers and trip the write-backlog policy,
/// short enough to keep the scenario bounded.
fn slow_consumer_deadline(smoke: bool) -> Duration {
    if smoke {
        Duration::from_secs(3)
    } else {
        Duration::from_secs(8)
    }
}

/// Pipelines `stats` request lines without ever reading a response.
/// Stats responses are the protocol's largest, so the connection's write
/// backlog overruns `max_write_buffer_bytes` quickly and the reactor
/// disconnects it; returns the number of lines sent before that.
fn run_slow_consumer(addr: SocketAddr, deadline: Duration) -> u64 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut line = Request::Stats.encode();
    line.push('\n');
    let started = Instant::now();
    let mut sent = 0u64;
    while started.elapsed() < deadline {
        if stream.write_all(line.as_bytes()).is_err() {
            break;
        }
        sent += 1;
    }
    sent
}

/// Runs connect→subscribe→unsubscribe→disconnect waves. Every wave runs
/// even if the publishers finish first, so the wave budget is the
/// scenario's churn total; the publish phase overlaps the early waves.
/// Returns (connections churned, subscriptions churned).
fn run_churn(
    addr: SocketAddr,
    waves: usize,
    wave_conns: usize,
    subscriptions: Arc<Vec<Subscription>>,
    next_id: Arc<AtomicU64>,
) -> (u64, u64) {
    let mut churned_conns = 0u64;
    let mut churned_subs = 0u64;
    for wave in 0..waves {
        let mut clients = Vec::with_capacity(wave_conns);
        for i in 0..wave_conns {
            let Ok(mut client) = ServiceClient::connect(addr) else {
                continue;
            };
            churned_conns += 1;
            let sub = &subscriptions[(wave * wave_conns + i) % subscriptions.len()];
            let id = SubscriptionId(next_id.fetch_add(1, Ordering::Relaxed));
            if client.subscribe(id, sub).is_ok() {
                churned_subs += 1;
                clients.push((client, id));
            }
        }
        // Unsubscribe half before dropping, exercising removal (and the
        // summary re-tighten path) under load; the rest disconnect with
        // their subscriptions still live, like real crashed subscribers.
        for (i, (client, id)) in clients.iter_mut().enumerate() {
            if i % 2 == 0 {
                let _ = client.unsubscribe(*id);
            }
        }
        drop(clients);
        std::thread::sleep(Duration::from_millis(10));
    }
    (churned_conns, churned_subs)
}

/// Connects one client speaking the scenario's protocol (binary clients
/// complete the preamble/Ready negotiation before returning).
fn connect(addr: SocketAddr, proto: ClientProtocol) -> Result<ServiceClient, String> {
    ServiceClient::connect_with_protocol(addr, ServiceConfig::default().io_timeout, proto)
        .map_err(|e| format!("{} connect: {e}", proto_name(proto)))
}

fn run_scenario(spec: &Spec, smoke: bool, seed: u64) -> Result<Json, String> {
    let fleet_subs = spec.subscriber_conns * spec.subs_per_conn;
    let churn_pool = spec.churn_waves * spec.churn_wave_conns;
    let distinct_pubs = (spec.publishers * spec.publishes_per_publisher).clamp(64, 2048);
    let (schema, subscriptions, publications) = generate(
        spec.workload,
        fleet_subs + churn_pool.max(1),
        distinct_pubs,
        seed,
    );

    let mut config = ServiceConfig::with_shards(spec.shards);
    config.placement_enabled = spec.placement;
    config.max_connections =
        spec.subscriber_conns + spec.publishers + spec.churn_wave_conns + spec.slow_consumers + 16;
    config.idle_timeout = None;
    if spec.slow_consumers > 0 {
        // Small backlog bound so unread responses trip the policy fast.
        config.max_write_buffer_bytes = 4096;
    }
    // Durable scenarios serve from a scratch write-ahead log; the
    // directory is removed when the scenario ends.
    let data_dir = spec.fsync.map(|policy| {
        let dir = std::env::temp_dir().join(format!(
            "psc-loadgen-{}-{}-{}-{}",
            spec.name,
            proto_name(spec.proto),
            fsync_name(spec.fsync),
            std::process::id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        config.fsync = policy;
        config.data_dir = Some(dir.clone());
        dir
    });
    let server =
        ServiceServer::bind("127.0.0.1:0", schema, config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();

    // Subscriber fleet: persistent idle connections each holding a slice
    // of the subscription population. The phase is timed through the
    // closing flush — on a durable server that flush is a full
    // durability barrier, so `subscribe_secs` includes every admission's
    // WAL append and its covering group-commit fsync.
    let subscribe_started = Instant::now();
    let next_id = Arc::new(AtomicU64::new(1));
    let mut fleet = Vec::with_capacity(spec.subscriber_conns);
    let mut fleet_subscribed = 0u64;
    {
        let mut slices =
            subscriptions[..fleet_subs.min(subscriptions.len())].chunks(spec.subs_per_conn.max(1));
        for _ in 0..spec.subscriber_conns {
            let mut client = connect(addr, spec.proto).map_err(|e| format!("fleet {e}"))?;
            for sub in slices.next().unwrap_or(&[]) {
                let id = SubscriptionId(next_id.fetch_add(1, Ordering::Relaxed));
                client
                    .subscribe(id, sub)
                    .map_err(|e| format!("fleet subscribe: {e}"))?;
                fleet_subscribed += 1;
            }
            fleet.push(client);
        }
    }
    let mut control = connect(addr, spec.proto).map_err(|e| format!("control {e}"))?;
    control.flush().map_err(|e| format!("flush: {e}"))?;
    let subscribe_elapsed = subscribe_started.elapsed();

    // Background churners and slow consumers overlap the publish phase.
    let churn_handle = (spec.churn_waves > 0).then(|| {
        let subscriptions = Arc::new(subscriptions.clone());
        let next_id = Arc::clone(&next_id);
        let (waves, wave_conns) = (spec.churn_waves, spec.churn_wave_conns);
        std::thread::spawn(move || run_churn(addr, waves, wave_conns, subscriptions, next_id))
    });
    let slow_handles: Vec<_> = (0..spec.slow_consumers)
        .map(|_| {
            let deadline = slow_consumer_deadline(smoke);
            std::thread::spawn(move || run_slow_consumer(addr, deadline))
        })
        .collect();

    // Publish phase: each publisher thread streams its share of the
    // publication stream with a window of publishes in flight
    // (pipelined, like a real high-rate producer), recording the
    // client-observed send→notification latency per publish. Pipelining
    // keeps the server continuously fed, so the scenario measures the
    // serving stack's publish throughput rather than the scheduler's
    // round-trip wake-up cost.
    let publications = Arc::new(publications);
    let publish_started = Instant::now();
    let publisher_handles: Vec<_> = (0..spec.publishers)
        .map(|p| {
            let publications = Arc::clone(&publications);
            let count = spec.publishes_per_publisher;
            let stride = spec.publishers;
            let proto = spec.proto;
            let window_cap = spec.pipeline_window();
            std::thread::spawn(move || -> Result<LogHistogram, String> {
                let mut client = connect(addr, proto).map_err(|e| format!("publisher {e}"))?;
                let mut rtt = LogHistogram::new();
                let window = window_cap.min(count.max(1));
                let mut in_flight: std::collections::VecDeque<Instant> =
                    std::collections::VecDeque::with_capacity(window);
                for i in 0..count {
                    if in_flight.len() == window {
                        client.recv_matched().map_err(|e| format!("publish: {e}"))?;
                        let sent = in_flight.pop_front().expect("window non-empty");
                        rtt.record_duration(sent.elapsed());
                    }
                    let publication = &publications[(p + i * stride) % publications.len()];
                    in_flight.push_back(Instant::now());
                    client
                        .send_publish(publication)
                        .map_err(|e| format!("publish: {e}"))?;
                }
                while let Some(sent) = in_flight.pop_front() {
                    client.recv_matched().map_err(|e| format!("publish: {e}"))?;
                    rtt.record_duration(sent.elapsed());
                }
                Ok(rtt)
            })
        })
        .collect();

    let mut rtt = LogHistogram::new();
    for handle in publisher_handles {
        let publisher = handle
            .join()
            .map_err(|_| "publisher panicked".to_string())??;
        rtt.merge(&publisher);
    }
    let elapsed = publish_started.elapsed();
    let (churned_conns, churned_subs) = churn_handle
        .map(|h| h.join().unwrap_or((0, 0)))
        .unwrap_or((0, 0));
    let slow_lines: u64 = slow_handles
        .into_iter()
        .map(|h| h.join().unwrap_or(0))
        .sum();

    // Scrape the server's own view over the wire — the same stats
    // response any operator client sees.
    let (metrics, reactor, latency) = control
        .stats_full()
        .map_err(|e| format!("stats scrape: {e}"))?;
    let reactor = reactor.ok_or("TCP server reported no reactor metrics")?;
    let latency = latency.ok_or("server reported no latency stats")?;

    // Harness invariants: every publish produced exactly one matched
    // notification (the e2e stage) and one router ingress count.
    let publishes = (spec.publishers * spec.publishes_per_publisher) as u64;
    if latency.end_to_end.count != publishes {
        return Err(format!(
            "e2e samples {} != publishes {publishes}",
            latency.end_to_end.count
        ));
    }
    if metrics.publications_total != publishes {
        return Err(format!(
            "publications_total {} != publishes {publishes}",
            metrics.publications_total
        ));
    }
    if spec.slow_consumers > 0 && reactor.slow_consumer_disconnects == 0 {
        return Err("slow consumers never tripped the backlog policy".into());
    }
    if spec.churn_waves > 0 && churned_subs == 0 {
        return Err("churn waves made no subscriptions".into());
    }
    // The decode-stage histogram proves the server actually served this
    // scenario over the protocol the report claims.
    let decode_count = match spec.proto {
        ClientProtocol::Json => latency.decode.count,
        ClientProtocol::Binary => latency.decode_binary.count,
    };
    if decode_count == 0 {
        return Err(format!(
            "server decoded no {} requests",
            proto_name(spec.proto)
        ));
    }

    // Routing effectiveness: of the `publishes × shards` potential shard
    // visits, how many did the router's summaries prove pointless? This
    // is the number the placement tentpole moves on the uniform workload.
    let shard_visits_pruned = metrics.totals().shards_pruned;
    let pruned_fraction = shard_visits_pruned as f64
        / (metrics.publications_total * spec.shards as u64).max(1) as f64;

    let throughput = publishes as f64 / elapsed.as_secs_f64();
    eprintln!(
        "[loadgen] {}[{},fsync={},placement={}]: {} conns, {} shards, subscribe {:.2}s, {} pubs in {:.2}s ({:.0}/s), {:.1}% visits pruned, client p50={}ns p99={}ns, server e2e p50={}ns p99={}ns",
        spec.name,
        proto_name(spec.proto),
        fsync_name(spec.fsync),
        placement_name(spec.placement),
        reactor.connections_accepted,
        spec.shards,
        subscribe_elapsed.as_secs_f64(),
        publishes,
        elapsed.as_secs_f64(),
        throughput,
        pruned_fraction * 100.0,
        rtt.quantile(0.50),
        rtt.quantile(0.99),
        latency.end_to_end.p50_ns,
        latency.end_to_end.p99_ns,
    );

    let scenario = Json::obj([
        ("name", Json::Str(spec.name.into())),
        ("protocol", Json::Str(proto_name(spec.proto).into())),
        ("fsync_policy", Json::Str(fsync_name(spec.fsync).into())),
        (
            "placement",
            Json::Str(placement_name(spec.placement).into()),
        ),
        ("shards", Json::UInt(spec.shards as u64)),
        ("shard_visits_pruned", Json::UInt(shard_visits_pruned)),
        ("pruned_fraction", Json::Float(pruned_fraction)),
        ("connections", Json::UInt(reactor.connections_accepted)),
        ("subscriptions", Json::UInt(fleet_subscribed + churned_subs)),
        // Time to load the fleet's subscriptions, through a durability
        // barrier on durable servers — the group-commit number.
        (
            "subscribe_secs",
            Json::Float(subscribe_elapsed.as_secs_f64()),
        ),
        ("publishes", Json::UInt(publishes)),
        ("elapsed_secs", Json::Float(elapsed.as_secs_f64())),
        ("throughput_pubs_per_sec", Json::Float(throughput)),
        // Client RTT semantics depend on the window: with a deep
        // pipeline the recorded span includes queueing behind the rest
        // of the window, so cross-report RTT comparisons are only
        // meaningful at equal window depth.
        ("pipeline_window", Json::UInt(spec.pipeline_window() as u64)),
        ("client_rtt", stage_summary(&rtt).to_json()),
        ("churned_connections", Json::UInt(churned_conns)),
        ("slow_consumer_lines_sent", Json::UInt(slow_lines)),
        (
            "slow_consumer_disconnects",
            Json::UInt(reactor.slow_consumer_disconnects),
        ),
        (
            "server",
            Json::obj([
                ("publications_total", Json::UInt(metrics.publications_total)),
                ("requests_handled", Json::UInt(reactor.requests_handled)),
                ("latency", latency.to_json()),
            ]),
        ),
    ]);
    drop(fleet);
    server.stop();
    if let Some(dir) = data_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(scenario)
}

/// The federated scenario: an in-process 3-node broker chain
/// (edge → transit → edge), a covering-heavy nested subscription
/// workload at one edge, and pipelined binary publishers at the other.
/// Reports the mesh-specific keys — `nodes`, `subs_forwarded`,
/// `subs_suppressed`, `suppressed_fraction` — that
/// [`validate_bench_report`] gates the aggregation win on, alongside the
/// standard throughput/latency block scraped from the publisher-side
/// node.
fn run_federated(smoke: bool, seed: u64) -> Result<Json, String> {
    use psc_broker::{BrokerId, CoveringPolicy};
    use psc_service::federation::{FederatedNode, FederationConfig};

    let (families, per_family, publishers, publishes_per) = if smoke {
        (8usize, 6usize, 2usize, 150usize)
    } else {
        (40, 10, 4, 2000)
    };
    // Reuse the uniform fixture's schema and publication stream; the
    // subscriptions are replaced by nested families (each family shares
    // a center, successive members shrink), which is the covering-heavy
    // shape aggregation exists for.
    let distinct_pubs = (publishers * publishes_per).clamp(64, 2048);
    let (schema, _, publications) = generate(Workload::Uniform, 1, distinct_pubs, seed);
    let domain = 300i64;
    let mut subscriptions = Vec::with_capacity(families * per_family);
    for f in 0..families {
        let center = (f as i64 * 2 + 1) * domain / (families as i64 * 2 + 1);
        for j in 0..per_family {
            let half = 40 - 3 * j as i64;
            let ranges = (0..schema.len())
                .map(|_| {
                    psc_model::Range::new((center - half).max(0), (center + half).min(domain - 1))
                        .expect("range")
                })
                .collect();
            subscriptions
                .push(Subscription::from_ranges(&schema, ranges).expect("nested subscription"));
        }
    }

    let node_config = || {
        let mut config = ServiceConfig::with_shards(1);
        config.io_timeout = Some(Duration::from_secs(10));
        config.max_connections = publishers + 16;
        config
    };
    let fed = |id: usize, peers: &[usize]| FederationConfig {
        node_id: BrokerId(id),
        listen: "127.0.0.1:0".to_string(),
        peers: peers
            .iter()
            .map(|&p| (BrokerId(p), "127.0.0.1:9".parse().unwrap()))
            .collect(),
        policy: CoveringPolicy::Pairwise,
        seed: 0xFED,
        heartbeat_interval: Some(Duration::from_millis(500)),
        fail_after_ops: None,
    };
    let a = FederatedNode::start(schema.clone(), node_config(), fed(0, &[1]))
        .map_err(|e| format!("node A: {e}"))?;
    let b = FederatedNode::start(schema.clone(), node_config(), fed(1, &[0, 2]))
        .map_err(|e| format!("node B: {e}"))?;
    let c = FederatedNode::start(schema.clone(), node_config(), fed(2, &[1]))
        .map_err(|e| format!("node C: {e}"))?;
    a.set_peer_addr(BrokerId(1), b.local_addr());
    b.set_peer_addr(BrokerId(0), a.local_addr());
    b.set_peer_addr(BrokerId(2), c.local_addr());
    c.set_peer_addr(BrokerId(1), b.local_addr());

    // Edge subscription load at C, through a real binary client.
    let subscribe_started = Instant::now();
    let mut edge =
        connect(c.local_addr(), ClientProtocol::Binary).map_err(|e| format!("edge {e}"))?;
    for (i, sub) in subscriptions.iter().enumerate() {
        edge.subscribe(SubscriptionId(i as u64 + 1), sub)
            .map_err(|e| format!("edge subscribe: {e}"))?;
    }
    edge.flush().map_err(|e| format!("edge flush: {e}"))?;
    let subscribe_elapsed = subscribe_started.elapsed();

    // Pipelined binary publishers at A — every publish crosses two
    // broker hops before the notification closes the loop.
    let publications = Arc::new(publications);
    let addr = a.local_addr();
    let publish_started = Instant::now();
    let publisher_handles: Vec<_> = (0..publishers)
        .map(|p| {
            let publications = Arc::clone(&publications);
            std::thread::spawn(move || -> Result<LogHistogram, String> {
                let mut client =
                    connect(addr, ClientProtocol::Binary).map_err(|e| format!("publisher {e}"))?;
                let mut rtt = LogHistogram::new();
                let window = PIPELINE_WINDOW.min(publishes_per.max(1));
                let mut in_flight: std::collections::VecDeque<Instant> =
                    std::collections::VecDeque::with_capacity(window);
                for i in 0..publishes_per {
                    if in_flight.len() == window {
                        client.recv_matched().map_err(|e| format!("publish: {e}"))?;
                        let sent = in_flight.pop_front().expect("window non-empty");
                        rtt.record_duration(sent.elapsed());
                    }
                    let publication = &publications[(p + i * publishers) % publications.len()];
                    in_flight.push_back(Instant::now());
                    client
                        .send_publish(publication)
                        .map_err(|e| format!("publish: {e}"))?;
                }
                while let Some(sent) = in_flight.pop_front() {
                    client.recv_matched().map_err(|e| format!("publish: {e}"))?;
                    rtt.record_duration(sent.elapsed());
                }
                Ok(rtt)
            })
        })
        .collect();
    let mut rtt = LogHistogram::new();
    for handle in publisher_handles {
        let publisher = handle
            .join()
            .map_err(|_| "publisher panicked".to_string())??;
        rtt.merge(&publisher);
    }
    let elapsed = publish_started.elapsed();

    // Publisher-side server view (throughput/latency), edge-side mesh
    // view (the aggregation counters the validator gates on).
    let mut control = connect(addr, ClientProtocol::Binary).map_err(|e| format!("control {e}"))?;
    let (metrics, reactor, latency) = control
        .stats_full()
        .map_err(|e| format!("stats scrape: {e}"))?;
    let reactor = reactor.ok_or("federated node reported no reactor metrics")?;
    let latency = latency.ok_or("federated node reported no latency stats")?;
    let edge_stats = c.federation_stats();

    let publishes = (publishers * publishes_per) as u64;
    if latency.end_to_end.count != publishes {
        return Err(format!(
            "e2e samples {} != publishes {publishes}",
            latency.end_to_end.count
        ));
    }
    let accepted = subscriptions.len() as u64;
    if edge_stats.subs_forwarded + edge_stats.subs_suppressed != accepted {
        return Err(format!(
            "edge made {} + {} forwarding decisions for {accepted} subscriptions",
            edge_stats.subs_forwarded, edge_stats.subs_suppressed
        ));
    }
    let suppressed_fraction = edge_stats.subs_suppressed as f64 / accepted.max(1) as f64;
    let throughput = publishes as f64 / elapsed.as_secs_f64();
    eprintln!(
        "[loadgen] federated[binary]: 3 nodes, {} subs ({} forwarded, {} suppressed, {:.1}% suppressed), {} pubs in {:.2}s ({:.0}/s), client p50={}ns p99={}ns",
        accepted,
        edge_stats.subs_forwarded,
        edge_stats.subs_suppressed,
        suppressed_fraction * 100.0,
        publishes,
        elapsed.as_secs_f64(),
        throughput,
        rtt.quantile(0.50),
        rtt.quantile(0.99),
    );

    let scenario = Json::obj([
        ("name", Json::Str("federated".into())),
        ("protocol", Json::Str("binary".into())),
        ("fsync_policy", Json::Str("none".into())),
        ("nodes", Json::UInt(3)),
        ("subs_forwarded", Json::UInt(edge_stats.subs_forwarded)),
        ("subs_suppressed", Json::UInt(edge_stats.subs_suppressed)),
        ("suppressed_fraction", Json::Float(suppressed_fraction)),
        ("connections", Json::UInt(reactor.connections_accepted)),
        ("subscriptions", Json::UInt(accepted)),
        (
            "subscribe_secs",
            Json::Float(subscribe_elapsed.as_secs_f64()),
        ),
        ("publishes", Json::UInt(publishes)),
        ("elapsed_secs", Json::Float(elapsed.as_secs_f64())),
        ("throughput_pubs_per_sec", Json::Float(throughput)),
        ("pipeline_window", Json::UInt(PIPELINE_WINDOW as u64)),
        ("client_rtt", stage_summary(&rtt).to_json()),
        (
            "server",
            Json::obj([
                ("publications_total", Json::UInt(metrics.publications_total)),
                ("requests_handled", Json::UInt(reactor.requests_handled)),
                ("latency", latency.to_json()),
            ]),
        ),
    ]);
    drop(edge);
    drop(control);
    a.stop();
    b.stop();
    c.stop();
    Ok(scenario)
}

fn usage() -> &'static str {
    "usage: loadgen [--smoke] [--durability] [--proto json|binary|both] [--out PATH] | loadgen --validate PATH"
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut durability = false;
    let mut out = PathBuf::from("BENCH_10.json");
    let mut filter = ProtoFilter::Both;
    let mut validate: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--durability" => durability = true,
            "--proto" => match args.next().as_deref() {
                Some("json") => filter = ProtoFilter::Json,
                Some("binary") => filter = ProtoFilter::Binary,
                Some("both") => filter = ProtoFilter::Both,
                _ => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--validate" => match args.next() {
                Some(path) => validate = Some(PathBuf::from(path)),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument \"{other}\"\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = validate {
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("[loadgen] read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let parsed = match Json::parse(raw.trim()) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("[loadgen] parse {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate_bench_report(&parsed) {
            Ok(()) => {
                println!("[loadgen] {} is a valid report", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[loadgen] {} is invalid: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let mut scenarios = Vec::new();
    for spec in specs(smoke, filter, durability) {
        // Seeded by the scenario's stable index (not its list position),
        // so both protocol variants replay the identical fixture and the
        // json runs keep their pre-protocol seeds for trajectory diffs.
        match run_scenario(&spec, smoke, 0x10AD_6E00 ^ (spec.seed_index << 8)) {
            Ok(scenario) => scenarios.push(scenario),
            Err(e) => {
                eprintln!(
                    "[loadgen] scenario {}[{}]: {e}",
                    spec.name,
                    proto_name(spec.proto)
                );
                return ExitCode::FAILURE;
            }
        }
    }
    // The federated mesh scenario drives binary publishers, so a
    // json-only run skips it (matching the policy scenarios' treatment
    // of protocol restriction).
    if filter != ProtoFilter::Json {
        match run_federated(smoke, 0x10AD_6E00 ^ (7 << 8)) {
            Ok(scenario) => scenarios.push(scenario),
            Err(e) => {
                eprintln!("[loadgen] scenario federated[binary]: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = Json::obj([
        ("bench", Json::Str("loadgen".into())),
        ("issue", Json::UInt(10)),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("shards", Json::UInt(2)),
        ("scenarios", Json::Arr(scenarios)),
    ]);
    if let Err(e) = validate_bench_report(&report) {
        eprintln!("[loadgen] generated report failed validation: {e}");
        return ExitCode::FAILURE;
    }
    let mut body = report.to_string();
    body.push('\n');
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("[loadgen] write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("[loadgen] wrote {}", out.display());
    ExitCode::SUCCESS
}
