//! `bench_diff` — trajectory diff for loadgen `BENCH_*.json` reports.
//!
//! Compares the current report against the previous one scenario by
//! scenario (matched on name + protocol + fsync policy; scenarios
//! present in only one report are skipped) and flags publish-throughput
//! drops and client-RTT / server-e2e p99 rises beyond a fractional
//! tolerance. CI runs it across consecutive issues' committed reports so
//! a serving-layer regression shows up in review, not in production.
//!
//! ```text
//! bench_diff PREV.json CUR.json [--tolerance 0.25] [--warn-only]
//! ```
//!
//! Exits non-zero when any comparison regresses, unless `--warn-only`
//! (for CI lanes whose hardware differs from the machine that produced
//! the baseline, where the diff is advisory).

use psc_bench::diff_bench_reports;
use psc_model::wire::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: bench_diff PREV.json CUR.json [--tolerance FRACTION] [--warn-only]"
}

fn load(path: &Path) -> Result<Json, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Json::parse(raw.trim()).map_err(|e| format!("parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tolerance = 0.25f64;
    let mut warn_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => tolerance = v,
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--warn-only" => warn_only = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    let [prev_path, cur_path] = paths.as_slice() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    let reports = (|| Ok::<_, String>((load(prev_path)?, load(cur_path)?)))();
    let (prev, cur) = match reports {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("[bench_diff] {e}");
            return ExitCode::FAILURE;
        }
    };
    let comparisons = match diff_bench_reports(&prev, &cur, tolerance) {
        Ok(comparisons) => comparisons,
        Err(e) => {
            eprintln!("[bench_diff] {e}");
            return ExitCode::FAILURE;
        }
    };
    if comparisons.is_empty() {
        println!(
            "[bench_diff] no scenarios in common between {} and {}",
            prev_path.display(),
            cur_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let mut regressions = 0usize;
    for comparison in &comparisons {
        println!("[bench_diff] {comparison}");
        regressions += comparison.regression as usize;
    }
    if regressions > 0 {
        eprintln!(
            "[bench_diff] {regressions} regression(s) beyond {:.0}% tolerance{}",
            tolerance * 100.0,
            if warn_only { " (warn-only)" } else { "" }
        );
        if !warn_only {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
