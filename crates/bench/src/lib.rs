//! # psc-bench
//!
//! Criterion benchmarks covering every figure family of the paper plus the
//! ablations called out in DESIGN.md §7. Shared fixtures live here; the
//! bench targets are under `benches/`:
//!
//! | Bench target | Measures | Paper artifact |
//! |---|---|---|
//! | `conflict_table` | table construction `O(m·k)` | Definition 2 |
//! | `mcs_reduction` | MCS fixpoint cost & effect | Figures 6, 8 |
//! | `rspc_sampling` | point sampling + witness checks | Figures 10, 11 |
//! | `subsumption_pipeline` | full Algorithm 4, stage ablations | Figures 7, 9 |
//! | `matching` | naive vs counting vs two-phase store | Algorithm 5 |
//! | `comparison_stream` | pairwise vs group stream filtering | Figures 13, 14 |
//! | `broker_network` | per-policy subscription propagation | Figures 1, 5 |
//! | `service_throughput` | sharded service publish throughput | serving layer |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use psc_model::{Publication, Range, Schema, Subscription};
use psc_workload::{
    seeded_rng, ComparisonWorkload, ExtremeNonCoverScenario, NonCoverScenario,
    RedundantCoverScenario,
};
use rand::Rng;

/// A ready-made covered instance (redundant covering scenario).
pub fn covered_instance(m: usize, k: usize) -> (Subscription, Vec<Subscription>) {
    let inst = RedundantCoverScenario::new(m, k).generate(&mut seeded_rng(0xBEEF));
    (inst.s, inst.set)
}

/// A ready-made non-covered instance (non-cover scenario).
pub fn non_covered_instance(m: usize, k: usize) -> (Subscription, Vec<Subscription>) {
    let inst = NonCoverScenario::new(m, k).generate(&mut seeded_rng(0xFEED));
    (inst.s, inst.set)
}

/// A ready-made extreme non-cover instance (gap sweep fixture).
pub fn extreme_instance(gap: f64) -> (Subscription, Vec<Subscription>) {
    let inst = ExtremeNonCoverScenario::new(gap).generate(&mut seeded_rng(0xABBA));
    (inst.s, inst.set)
}

/// A realistic subscription stream plus matching publications.
pub fn stream_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let wl = ComparisonWorkload::new(m);
    let schema = wl.schema();
    let mut rng = seeded_rng(0xD00D);
    let stream = wl.stream(subs, &mut rng);
    let publications = (0..pubs)
        .map(|_| wl.publication(&schema, &mut rng))
        .collect();
    (schema, stream, publications)
}

/// The paper's uniform workload: attribute domains `[0, 999]`, uniformly
/// placed range starts, uniform widths up to `max_width`. Used by the
/// service-layer benchmarks and tests.
pub fn uniform_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
    max_width: i64,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let schema = Schema::uniform(m, 0, 999);
    let mut rng = seeded_rng(seed);
    let subscriptions = (0..subs)
        .map(|_| {
            let ranges = (0..m)
                .map(|_| {
                    let lo = rng.gen_range(0i64..=999);
                    let width = rng.gen_range(0i64..=max_width);
                    Range::new(lo, (lo + width).min(999)).expect("ordered bounds")
                })
                .collect();
            Subscription::from_ranges(&schema, ranges).expect("within domain")
        })
        .collect();
    let publications = (0..pubs)
        .map(|_| {
            let values = (0..m).map(|_| rng.gen_range(0i64..=999)).collect();
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

/// Number of hot "topics" the skewed workload's subscribers concentrate
/// on (point constraints on attribute `x0`).
pub const SKEWED_HOT_TOPICS: usize = 24;

/// A topic-skewed workload for content-aware routing benchmarks.
///
/// Subscribers concentrate on [`SKEWED_HOT_TOPICS`] discrete "topics":
/// each subscription pins `x0` to one hot topic value (spread across the
/// `[0, 999]` domain) and constrains the remaining attributes with
/// uniform ranges like [`uniform_fixture`]. Publications split 50/50:
/// half land on a hot topic (these have subscribers and fan out widely),
/// half draw `x0` uniformly from the whole domain (mostly topics nobody
/// subscribed to — the classic pub/sub long tail). A shard's per-
/// attribute value set over `x0` then prunes most long-tail publications
/// outright, which is the effect the `service_throughput` fan-out report
/// measures.
pub fn skewed_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
    max_width: i64,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    assert!(m >= 2, "skewed fixture needs a topic attribute plus one");
    let schema = Schema::uniform(m, 0, 999);
    let mut rng = seeded_rng(seed);
    let topic = |i: usize| 20 + 41 * i as i64; // 24 topics over [20, 963]
    let subscriptions = (0..subs)
        .map(|_| {
            let hot = topic(rng.gen_range(0usize..SKEWED_HOT_TOPICS));
            let mut ranges = vec![Range::point(hot)];
            ranges.extend((1..m).map(|_| {
                let lo = rng.gen_range(0i64..=999);
                let width = rng.gen_range(0i64..=max_width);
                Range::new(lo, (lo + width).min(999)).expect("ordered bounds")
            }));
            Subscription::from_ranges(&schema, ranges).expect("within domain")
        })
        .collect();
    let publications = (0..pubs)
        .map(|i| {
            let x0 = if i % 2 == 0 {
                topic(rng.gen_range(0usize..SKEWED_HOT_TOPICS))
            } else {
                rng.gen_range(0i64..=999)
            };
            let mut values = vec![x0];
            values.extend((1..m).map(|_| rng.gen_range(0i64..=999)));
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_well_formed() {
        let (s, set) = covered_instance(5, 20);
        assert_eq!(set.len(), 20);
        assert_eq!(s.arity(), 5);
        let (s2, set2) = covered_instance(5, 20);
        assert_eq!(s, s2);
        assert_eq!(set, set2);

        let (_, set) = non_covered_instance(5, 30);
        assert_eq!(set.len(), 30);

        let (_, set) = extreme_instance(0.02);
        assert_eq!(set.len(), 50);

        let (schema, subs, pubs) = stream_fixture(10, 50, 10);
        assert_eq!(schema.len(), 10);
        assert_eq!(subs.len(), 50);
        assert_eq!(pubs.len(), 10);

        let (schema, subs, pubs) = uniform_fixture(4, 30, 5, 300, 7);
        assert_eq!(schema.len(), 4);
        assert_eq!(subs.len(), 30);
        assert_eq!(pubs.len(), 5);
        let (_, subs2, _) = uniform_fixture(4, 30, 5, 300, 7);
        assert_eq!(subs, subs2, "fixture is deterministic per seed");

        let (schema, subs, pubs) = skewed_fixture(4, 40, 10, 250, 9);
        assert_eq!(schema.len(), 4);
        assert_eq!(subs.len(), 40);
        assert_eq!(pubs.len(), 10);
        for s in &subs {
            let r = s.ranges()[0];
            assert_eq!(r.lo(), r.hi(), "topic attribute is a point");
            assert_eq!((r.lo() - 20) % 41, 0, "topic drawn from the hot set");
        }
        let (_, subs2, _) = skewed_fixture(4, 40, 10, 250, 9);
        assert_eq!(subs, subs2, "skewed fixture is deterministic per seed");
    }
}
