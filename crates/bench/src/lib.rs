//! # psc-bench
//!
//! Criterion benchmarks covering every figure family of the paper plus the
//! ablations called out in DESIGN.md §7. Shared fixtures live here; the
//! bench targets are under `benches/`:
//!
//! | Bench target | Measures | Paper artifact |
//! |---|---|---|
//! | `conflict_table` | table construction `O(m·k)` | Definition 2 |
//! | `mcs_reduction` | MCS fixpoint cost & effect | Figures 6, 8 |
//! | `rspc_sampling` | point sampling + witness checks | Figures 10, 11 |
//! | `subsumption_pipeline` | full Algorithm 4, stage ablations | Figures 7, 9 |
//! | `matching` | naive vs counting vs two-phase store | Algorithm 5 |
//! | `comparison_stream` | pairwise vs group stream filtering | Figures 13, 14 |
//! | `broker_network` | per-policy subscription propagation | Figures 1, 5 |
//! | `service_throughput` | sharded service publish throughput | serving layer |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use psc_model::expand::Template;
use psc_model::wire::Json;
use psc_model::{Publication, Range, Schema, Subscription};
use psc_workload::{
    seeded_rng, ComparisonWorkload, ExtremeNonCoverScenario, NonCoverScenario,
    RedundantCoverScenario,
};
use rand::Rng;

/// A ready-made covered instance (redundant covering scenario).
pub fn covered_instance(m: usize, k: usize) -> (Subscription, Vec<Subscription>) {
    let inst = RedundantCoverScenario::new(m, k).generate(&mut seeded_rng(0xBEEF));
    (inst.s, inst.set)
}

/// A ready-made non-covered instance (non-cover scenario).
pub fn non_covered_instance(m: usize, k: usize) -> (Subscription, Vec<Subscription>) {
    let inst = NonCoverScenario::new(m, k).generate(&mut seeded_rng(0xFEED));
    (inst.s, inst.set)
}

/// A ready-made extreme non-cover instance (gap sweep fixture).
pub fn extreme_instance(gap: f64) -> (Subscription, Vec<Subscription>) {
    let inst = ExtremeNonCoverScenario::new(gap).generate(&mut seeded_rng(0xABBA));
    (inst.s, inst.set)
}

/// A realistic subscription stream plus matching publications.
pub fn stream_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let wl = ComparisonWorkload::new(m);
    let schema = wl.schema();
    let mut rng = seeded_rng(0xD00D);
    let stream = wl.stream(subs, &mut rng);
    let publications = (0..pubs)
        .map(|_| wl.publication(&schema, &mut rng))
        .collect();
    (schema, stream, publications)
}

/// The paper's uniform workload: attribute domains `[0, 999]`, uniformly
/// placed range starts, uniform widths up to `max_width`. Used by the
/// service-layer benchmarks and tests.
pub fn uniform_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
    max_width: i64,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let schema = Schema::uniform(m, 0, 999);
    let mut rng = seeded_rng(seed);
    let subscriptions = (0..subs)
        .map(|_| {
            let ranges = (0..m)
                .map(|_| {
                    let lo = rng.gen_range(0i64..=999);
                    let width = rng.gen_range(0i64..=max_width);
                    Range::new(lo, (lo + width).min(999)).expect("ordered bounds")
                })
                .collect();
            Subscription::from_ranges(&schema, ranges).expect("within domain")
        })
        .collect();
    let publications = (0..pubs)
        .map(|_| {
            let values = (0..m).map(|_| rng.gen_range(0i64..=999)).collect();
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

/// Number of hot "topics" the skewed workload's subscribers concentrate
/// on (point constraints on attribute `x0`).
pub const SKEWED_HOT_TOPICS: usize = 24;

/// A topic-skewed workload for content-aware routing benchmarks.
///
/// Subscribers concentrate on [`SKEWED_HOT_TOPICS`] discrete "topics":
/// each subscription pins `x0` to one hot topic value (spread across the
/// `[0, 999]` domain) and constrains the remaining attributes with
/// uniform ranges like [`uniform_fixture`]. Publications split 50/50:
/// half land on a hot topic (these have subscribers and fan out widely),
/// half draw `x0` uniformly from the whole domain (mostly topics nobody
/// subscribed to — the classic pub/sub long tail). A shard's per-
/// attribute value set over `x0` then prunes most long-tail publications
/// outright, which is the effect the `service_throughput` fan-out report
/// measures.
pub fn skewed_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
    max_width: i64,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    assert!(m >= 2, "skewed fixture needs a topic attribute plus one");
    let schema = Schema::uniform(m, 0, 999);
    let mut rng = seeded_rng(seed);
    let topic = |i: usize| 20 + 41 * i as i64; // 24 topics over [20, 963]
    let subscriptions = (0..subs)
        .map(|_| {
            let hot = topic(rng.gen_range(0usize..SKEWED_HOT_TOPICS));
            let mut ranges = vec![Range::point(hot)];
            ranges.extend((1..m).map(|_| {
                let lo = rng.gen_range(0i64..=999);
                let width = rng.gen_range(0i64..=max_width);
                Range::new(lo, (lo + width).min(999)).expect("ordered bounds")
            }));
            Subscription::from_ranges(&schema, ranges).expect("within domain")
        })
        .collect();
    let publications = (0..pubs)
        .map(|i| {
            let x0 = if i % 2 == 0 {
                topic(rng.gen_range(0usize..SKEWED_HOT_TOPICS))
            } else {
                rng.gen_range(0i64..=999)
            };
            let mut values = vec![x0];
            values.extend((1..m).map(|_| rng.gen_range(0i64..=999)));
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

/// A synonym-expanded semantic workload built on
/// [`psc_model::expand::Template`].
///
/// Each of the `requests` disjunctive requests constrains the topic
/// attribute `x0` to 2–3 synonym point values and the time attribute
/// `x1` to two admissible windows, then expands into conjunctive
/// subscriptions (cross-product, capped at 16 per request) — the
/// loadgen's stand-in for semantically equivalent subscription
/// vocabularies. Publications split 50/50 between values drawn inside a
/// random expanded subscription's box (guaranteed subscribers) and
/// uniform draws (the long tail).
pub fn semantic_fixture(
    requests: usize,
    pubs: usize,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let schema = Schema::uniform(4, 0, 999);
    let mut rng = seeded_rng(seed);
    let mut subscriptions: Vec<Subscription> = Vec::new();
    for _ in 0..requests {
        let base = rng.gen_range(0i64..=799);
        let synonyms = (0..rng.gen_range(2usize..=3))
            .map(|j| Range::point((base + 97 * j as i64) % 1000))
            .collect();
        let windows = (0..2)
            .map(|_| {
                let lo = rng.gen_range(0i64..=899);
                Range::new(lo, lo + 100).expect("ordered bounds")
            })
            .collect();
        let lo2 = rng.gen_range(0i64..=699);
        let expanded = Template::new(&schema)
            .alternatives(0, synonyms)
            .alternatives(1, windows)
            .alternatives(2, vec![Range::new(lo2, lo2 + 300).expect("ordered bounds")])
            .expand(16)
            .expect("expansion within cap");
        subscriptions.extend(expanded);
    }
    let publications = (0..pubs)
        .map(|i| {
            let values = if i % 2 == 0 && !subscriptions.is_empty() {
                let s = &subscriptions[rng.gen_range(0..subscriptions.len())];
                s.ranges()
                    .iter()
                    .map(|r| rng.gen_range(r.lo()..=r.hi()))
                    .collect()
            } else {
                (0..4).map(|_| rng.gen_range(0i64..=999)).collect()
            };
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

/// Validates a loadgen `BENCH_*.json` report document.
///
/// The schema this enforces is what `docs/OBSERVABILITY.md` documents:
/// a top-level `bench`/`issue`/`mode`/`shards` header plus a non-empty
/// `scenarios` array, where every scenario carries its sizing, its
/// throughput, a client round-trip quantile ladder, and the server-side
/// per-stage latency with a populated end-to-end stage. A scenario's
/// optional `"protocol"` tag must be `"json"` or `"binary"` (absent
/// means json, the pre-protocol report shape), and the matching decode
/// stage — `decode` for json, `decode_binary` for binary — must carry a
/// populated quantile ladder, so a report cannot claim a protocol its
/// server never actually decoded. The optional `"fsync_policy"` tag
/// (from `loadgen --durability` scenarios) must be `"none"`, `"always"`,
/// or `"never"` — absent means `"none"`, an in-memory server with no
/// write-ahead log. The optional `"placement"` tag must be `"on"` or
/// `"off"` (absent means a pre-placement report); when present it
/// requires the routing-effectiveness keys (`shards`,
/// `shard_visits_pruned`, `pruned_fraction` in `[0, 1]`), and a
/// placement-on scenario named `uniform` must carry a `pruned_fraction`
/// of at least 0.4 — the content-aware placement claim, self-validated
/// in every committed report. Both the loadgen binary (before
/// writing a report) and CI (after running the smoke mode) call this,
/// so a report that drifts from the documented schema fails loudly in
/// both places.
pub fn validate_bench_report(report: &Json) -> Result<(), String> {
    fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
        v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string \"{key}\""))
    }
    fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer \"{key}\""))
    }
    fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number \"{key}\""))
    }
    fn quantile_ladder(stage: &Json, what: &str) -> Result<(), String> {
        let tag = |e| format!("{what}: {e}");
        if u64_field(stage, "count").map_err(tag)? == 0 {
            return Err(format!("{what}: zero samples"));
        }
        let ladder = ["p50", "p90", "p99", "p999", "max"];
        let mut last = 0u64;
        for key in ladder {
            let v = u64_field(stage, key).map_err(tag)?;
            if v < last {
                return Err(format!("{what}: quantile ladder not monotone at {key}"));
            }
            last = v;
        }
        Ok(())
    }

    if str_field(report, "bench")? != "loadgen" {
        return Err("\"bench\" is not \"loadgen\"".into());
    }
    u64_field(report, "issue")?;
    u64_field(report, "shards")?;
    let mode = str_field(report, "mode")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("unknown mode \"{mode}\""));
    }
    let scenarios = report
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("missing \"scenarios\" array")?;
    if scenarios.is_empty() {
        return Err("\"scenarios\" is empty".into());
    }
    for scenario in scenarios {
        let name = str_field(scenario, "name")?;
        let tag = |e: String| format!("scenario \"{name}\": {e}");
        let protocol = match scenario.get("protocol") {
            None => "json",
            Some(p) => match p.as_str() {
                Some(p @ ("json" | "binary")) => p,
                _ => {
                    return Err(format!(
                        "scenario \"{name}\": \"protocol\" must be \"json\" or \"binary\""
                    ))
                }
            },
        };
        if let Some(p) = scenario.get("fsync_policy") {
            match p.as_str() {
                Some("none" | "always" | "never") => {}
                _ => {
                    return Err(format!(
                        "scenario \"{name}\": \"fsync_policy\" must be \
                         \"none\", \"always\", or \"never\""
                    ))
                }
            }
        }
        // The placement tag (absent on pre-placement reports) brings the
        // routing-effectiveness keys with it, and the placement-on
        // `uniform` scenario must actually demonstrate the pruning the
        // tentpole claims: at least 40% of shard visits provably skipped
        // on the workload where hash placement prunes ~nothing.
        if let Some(p) = scenario.get("placement") {
            let placement = match p.as_str() {
                Some(p @ ("on" | "off")) => p,
                _ => {
                    return Err(format!(
                        "scenario \"{name}\": \"placement\" must be \"on\" or \"off\""
                    ))
                }
            };
            u64_field(scenario, "shards").map_err(tag)?;
            u64_field(scenario, "shard_visits_pruned").map_err(tag)?;
            let pruned = f64_field(scenario, "pruned_fraction").map_err(tag)?;
            if !(0.0..=1.0).contains(&pruned) {
                return Err(format!(
                    "scenario \"{name}\": pruned_fraction {pruned} outside [0, 1]"
                ));
            }
            if name == "uniform" && placement == "on" && pruned < 0.4 {
                return Err(format!(
                    "scenario \"{name}\": placement-on uniform run pruned only \
                     {:.1}% of shard visits (< 40%)",
                    pruned * 100.0
                ));
            }
        }
        if u64_field(scenario, "connections").map_err(tag)? == 0 {
            return Err(format!("scenario \"{name}\": no connections"));
        }
        u64_field(scenario, "subscriptions").map_err(tag)?;
        // Federated scenarios (tagged with "nodes") must demonstrate the
        // control-traffic win the subscription aggregation claims: every
        // accepted subscription was either forwarded or suppressed on
        // the uplink, and at least a quarter of the covering-heavy
        // stream was suppressed.
        if let Some(nodes) = scenario.get("nodes") {
            let nodes = nodes
                .as_u64()
                .ok_or_else(|| format!("scenario \"{name}\": \"nodes\" must be an integer"))?;
            if nodes < 2 {
                return Err(format!(
                    "scenario \"{name}\": a federated run needs at least 2 nodes, got {nodes}"
                ));
            }
            let forwarded = u64_field(scenario, "subs_forwarded").map_err(tag)?;
            let suppressed = u64_field(scenario, "subs_suppressed").map_err(tag)?;
            let subs = u64_field(scenario, "subscriptions").map_err(tag)?;
            if forwarded + suppressed != subs {
                return Err(format!(
                    "scenario \"{name}\": forwarded {forwarded} + suppressed {suppressed} \
                     != subscriptions {subs}"
                ));
            }
            let fraction = f64_field(scenario, "suppressed_fraction").map_err(tag)?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(format!(
                    "scenario \"{name}\": suppressed_fraction {fraction} outside [0, 1]"
                ));
            }
            if fraction < 0.25 {
                return Err(format!(
                    "scenario \"{name}\": aggregation suppressed only {:.1}% of the \
                     covering-heavy stream (< 25%)",
                    fraction * 100.0
                ));
            }
        }
        if u64_field(scenario, "publishes").map_err(tag)? == 0 {
            return Err(format!("scenario \"{name}\": no publishes"));
        }
        if f64_field(scenario, "elapsed_secs").map_err(tag)? <= 0.0 {
            return Err(format!("scenario \"{name}\": non-positive elapsed"));
        }
        if f64_field(scenario, "throughput_pubs_per_sec").map_err(tag)? <= 0.0 {
            return Err(format!("scenario \"{name}\": non-positive throughput"));
        }
        let rtt = scenario
            .get("client_rtt")
            .ok_or_else(|| format!("scenario \"{name}\": missing \"client_rtt\""))?;
        quantile_ladder(rtt, &format!("scenario \"{name}\" client_rtt"))?;
        let server = scenario
            .get("server")
            .ok_or_else(|| format!("scenario \"{name}\": missing \"server\""))?;
        u64_field(server, "publications_total").map_err(tag)?;
        let latency = server
            .get("latency")
            .ok_or_else(|| format!("scenario \"{name}\": missing server latency"))?;
        let e2e = latency
            .get("e2e")
            .ok_or_else(|| format!("scenario \"{name}\": missing e2e stage"))?;
        quantile_ladder(e2e, &format!("scenario \"{name}\" e2e"))?;
        let decode_stage = if protocol == "binary" {
            "decode_binary"
        } else {
            "decode"
        };
        let decode = latency.get(decode_stage).ok_or_else(|| {
            format!("scenario \"{name}\": missing {decode_stage} stage for protocol {protocol}")
        })?;
        quantile_ladder(decode, &format!("scenario \"{name}\" {decode_stage}"))?;
    }
    Ok(())
}

/// One metric compared between two bench reports by
/// [`diff_bench_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// `name[protocol]` (in-memory, placement on) with `,fsync=POLICY`
    /// (durable) and/or `,placement=off` (hash placement) suffixes for
    /// the non-default variants of the scenario both reports carry.
    pub scenario: String,
    /// Which metric: `throughput_pubs_per_sec`, `client_rtt_p99_ns`, or
    /// `server_e2e_p99_ns`.
    pub metric: String,
    /// The metric's value in the previous (baseline) report.
    pub previous: f64,
    /// The metric's value in the current report.
    pub current: f64,
    /// Whether the change crossed the tolerance in the bad direction
    /// (throughput down, latency up).
    pub regression: bool,
}

impl std::fmt::Display for BenchComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let delta = if self.previous > 0.0 {
            (self.current - self.previous) / self.previous * 100.0
        } else {
            0.0
        };
        write!(
            f,
            "{} {}: {:.0} -> {:.0} ({delta:+.1}%){}",
            self.scenario,
            self.metric,
            self.previous,
            self.current,
            if self.regression { " REGRESSION" } else { "" }
        )
    }
}

/// Diffs two loadgen reports along the benchmark trajectory
/// (`BENCH_{N-1}.json` vs `BENCH_N.json`).
///
/// Scenarios are matched by `(name, protocol, fsync_policy, placement)`
/// — `protocol` defaults to `"json"` so pre-protocol reports pair with
/// their json successors, `fsync_policy` defaults to `"none"` so
/// pre-durability reports pair with their in-memory successors, and
/// `placement` defaults to `"on"` so pre-placement reports pair with
/// their placement-on successors (hash placement was the routing the
/// old reports measured on skewed workloads, where both behave alike) —
/// and each matched pair yields three [`BenchComparison`]s: steady
/// publish throughput (a drop beyond `tolerance` regresses), client
/// round-trip p99, and server e2e p99 (a rise beyond `tolerance`
/// regresses). Scenarios present in only one report are skipped: a new
/// benchmark has no baseline, and a retired one no successor.
///
/// `tolerance` is fractional (0.2 = 20%). Errors are malformed reports,
/// not regressions — callers decide whether regressions fail the build.
pub fn diff_bench_reports(
    prev: &Json,
    cur: &Json,
    tolerance: f64,
) -> Result<Vec<BenchComparison>, String> {
    fn index(report: &Json) -> Result<Vec<(String, &Json)>, String> {
        let scenarios = report
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("missing \"scenarios\" array")?;
        scenarios
            .iter()
            .map(|s| {
                let name = s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("scenario missing \"name\"")?;
                let protocol = s.get("protocol").and_then(Json::as_str).unwrap_or("json");
                let fsync = s
                    .get("fsync_policy")
                    .and_then(Json::as_str)
                    .unwrap_or("none");
                let placement = s.get("placement").and_then(Json::as_str).unwrap_or("on");
                // In-memory placement-on scenarios keep the historical
                // `name[protocol]` key so they pair with pre-durability
                // (and pre-placement) baselines; only the non-default
                // variants grow a suffix.
                let mut opts = String::new();
                if fsync != "none" {
                    opts.push_str(&format!(",fsync={fsync}"));
                }
                if placement == "off" {
                    opts.push_str(",placement=off");
                }
                let key = format!("{name}[{protocol}{opts}]");
                Ok((key, s))
            })
            .collect()
    }
    fn metric(scenario: &Json, path: &[&str]) -> Result<f64, String> {
        let mut v = scenario;
        for key in path {
            v = v
                .get(key)
                .ok_or_else(|| format!("missing \"{}\"", path.join(".")))?;
        }
        v.as_f64()
            .ok_or_else(|| format!("\"{}\" is not a number", path.join(".")))
    }

    let prev_index = index(prev)?;
    let current = index(cur)?;
    let mut comparisons = Vec::new();
    for (key, cur_scenario) in &current {
        let Some((_, prev_scenario)) = prev_index.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let tag = |e: String| format!("scenario {key}: {e}");
        // (metric label, json path, true when higher is worse)
        let metrics: [(&str, &[&str], bool); 3] = [
            (
                "throughput_pubs_per_sec",
                &["throughput_pubs_per_sec"],
                false,
            ),
            ("client_rtt_p99_ns", &["client_rtt", "p99"], true),
            (
                "server_e2e_p99_ns",
                &["server", "latency", "e2e", "p99"],
                true,
            ),
        ];
        for (label, path, higher_is_worse) in metrics {
            let previous = metric(prev_scenario, path).map_err(tag)?;
            let current = metric(cur_scenario, path).map_err(tag)?;
            let regression = if higher_is_worse {
                current > previous * (1.0 + tolerance)
            } else {
                current < previous * (1.0 - tolerance)
            };
            comparisons.push(BenchComparison {
                scenario: key.clone(),
                metric: label.to_string(),
                previous,
                current,
                regression,
            });
        }
    }
    Ok(comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_well_formed() {
        let (s, set) = covered_instance(5, 20);
        assert_eq!(set.len(), 20);
        assert_eq!(s.arity(), 5);
        let (s2, set2) = covered_instance(5, 20);
        assert_eq!(s, s2);
        assert_eq!(set, set2);

        let (_, set) = non_covered_instance(5, 30);
        assert_eq!(set.len(), 30);

        let (_, set) = extreme_instance(0.02);
        assert_eq!(set.len(), 50);

        let (schema, subs, pubs) = stream_fixture(10, 50, 10);
        assert_eq!(schema.len(), 10);
        assert_eq!(subs.len(), 50);
        assert_eq!(pubs.len(), 10);

        let (schema, subs, pubs) = uniform_fixture(4, 30, 5, 300, 7);
        assert_eq!(schema.len(), 4);
        assert_eq!(subs.len(), 30);
        assert_eq!(pubs.len(), 5);
        let (_, subs2, _) = uniform_fixture(4, 30, 5, 300, 7);
        assert_eq!(subs, subs2, "fixture is deterministic per seed");

        let (schema, subs, pubs) = skewed_fixture(4, 40, 10, 250, 9);
        assert_eq!(schema.len(), 4);
        assert_eq!(subs.len(), 40);
        assert_eq!(pubs.len(), 10);
        for s in &subs {
            let r = s.ranges()[0];
            assert_eq!(r.lo(), r.hi(), "topic attribute is a point");
            assert_eq!((r.lo() - 20) % 41, 0, "topic drawn from the hot set");
        }
        let (_, subs2, _) = skewed_fixture(4, 40, 10, 250, 9);
        assert_eq!(subs, subs2, "skewed fixture is deterministic per seed");

        let (schema, subs, pubs) = semantic_fixture(10, 20, 11);
        assert_eq!(schema.len(), 4);
        assert_eq!(pubs.len(), 20);
        // Each request expands to 2–6 conjunctive subscriptions.
        assert!(subs.len() >= 20 && subs.len() <= 60, "got {}", subs.len());
        for s in &subs {
            let topic = s.ranges()[0];
            assert_eq!(topic.lo(), topic.hi(), "synonym alternative is a point");
        }
        let (_, subs2, _) = semantic_fixture(10, 20, 11);
        assert_eq!(subs, subs2, "semantic fixture is deterministic per seed");
    }

    #[test]
    fn bench_report_validator_accepts_and_rejects() {
        let stage = |count: u64| {
            Json::obj([
                ("count", Json::UInt(count)),
                ("min", Json::UInt(10)),
                ("max", Json::UInt(500)),
                ("mean", Json::Float(120.0)),
                ("p50", Json::UInt(100)),
                ("p90", Json::UInt(200)),
                ("p99", Json::UInt(400)),
                ("p999", Json::UInt(480)),
            ])
        };
        let scenario = Json::obj([
            ("name", Json::Str("steady".into())),
            ("connections", Json::UInt(10)),
            ("subscriptions", Json::UInt(20)),
            ("publishes", Json::UInt(100)),
            ("elapsed_secs", Json::Float(0.5)),
            ("throughput_pubs_per_sec", Json::Float(200.0)),
            ("client_rtt", stage(100)),
            (
                "server",
                Json::obj([
                    ("publications_total", Json::UInt(100)),
                    (
                        "latency",
                        Json::obj([("e2e", stage(100)), ("decode", stage(100))]),
                    ),
                ]),
            ),
        ]);
        let report = |scenarios: Vec<Json>| {
            Json::obj([
                ("bench", Json::Str("loadgen".into())),
                ("issue", Json::UInt(6)),
                ("mode", Json::Str("smoke".into())),
                ("shards", Json::UInt(2)),
                ("scenarios", Json::Arr(scenarios)),
            ])
        };
        assert_eq!(
            validate_bench_report(&report(vec![scenario.clone()])),
            Ok(())
        );

        assert!(
            validate_bench_report(&report(vec![])).is_err(),
            "empty scenarios"
        );
        assert!(
            validate_bench_report(&Json::obj([("bench", Json::Str("other".into()))])).is_err(),
            "wrong bench name"
        );
        // A zero-sample e2e stage must fail: it means no publish ever
        // completed the publish→deliver span.
        let mut broken = scenario.clone();
        if let Json::Obj(pairs) = &mut broken {
            for (k, v) in pairs.iter_mut() {
                if k == "server" {
                    *v = Json::obj([
                        ("publications_total", Json::UInt(100)),
                        ("latency", Json::obj([("e2e", stage(0))])),
                    ]);
                }
            }
        }
        assert!(
            validate_bench_report(&report(vec![broken])).is_err(),
            "empty e2e"
        );
        // A non-monotone quantile ladder must fail.
        let mut skewed_ladder = scenario;
        if let Json::Obj(pairs) = &mut skewed_ladder {
            for (k, v) in pairs.iter_mut() {
                if k == "client_rtt" {
                    let mut s = stage(100);
                    if let Json::Obj(sp) = &mut s {
                        for (sk, sv) in sp.iter_mut() {
                            if sk == "p99" {
                                *sv = Json::UInt(50);
                            }
                        }
                    }
                    *v = s;
                }
            }
        }
        assert!(
            validate_bench_report(&report(vec![skewed_ladder])).is_err(),
            "non-monotone ladder"
        );
    }

    fn diff_scenario(name: &str, protocol: Option<&str>, tput: f64, p99: u64) -> Json {
        let stage = |p99: u64| {
            Json::obj([
                ("count", Json::UInt(100)),
                ("p50", Json::UInt(p99 / 2)),
                ("p99", Json::UInt(p99)),
            ])
        };
        let mut pairs = vec![("name".to_string(), Json::Str(name.into()))];
        if let Some(p) = protocol {
            pairs.push(("protocol".to_string(), Json::Str(p.into())));
        }
        pairs.extend([
            ("throughput_pubs_per_sec".to_string(), Json::Float(tput)),
            ("client_rtt".to_string(), stage(p99)),
            (
                "server".to_string(),
                Json::obj([("latency", Json::obj([("e2e", stage(p99))]))]),
            ),
        ]);
        Json::Obj(pairs)
    }

    #[test]
    fn validator_checks_protocol_decode_stage() {
        let stage = |count: u64| {
            Json::obj([
                ("count", Json::UInt(count)),
                ("p50", Json::UInt(100)),
                ("p90", Json::UInt(200)),
                ("p99", Json::UInt(400)),
                ("p999", Json::UInt(480)),
                ("max", Json::UInt(500)),
            ])
        };
        let scenario = |protocol: &str, decode_key: &'static str| {
            Json::obj([
                ("name", Json::Str("steady".into())),
                ("protocol", Json::Str(protocol.into())),
                ("connections", Json::UInt(10)),
                ("subscriptions", Json::UInt(20)),
                ("publishes", Json::UInt(100)),
                ("elapsed_secs", Json::Float(0.5)),
                ("throughput_pubs_per_sec", Json::Float(200.0)),
                ("client_rtt", stage(100)),
                (
                    "server",
                    Json::obj([
                        ("publications_total", Json::UInt(100)),
                        (
                            "latency",
                            Json::obj([("e2e", stage(100)), (decode_key, stage(100))]),
                        ),
                    ]),
                ),
            ])
        };
        let report = |s: Json| {
            Json::obj([
                ("bench", Json::Str("loadgen".into())),
                ("issue", Json::UInt(7)),
                ("mode", Json::Str("smoke".into())),
                ("shards", Json::UInt(2)),
                ("scenarios", Json::Arr(vec![s])),
            ])
        };
        assert_eq!(
            validate_bench_report(&report(scenario("binary", "decode_binary"))),
            Ok(())
        );
        assert!(
            validate_bench_report(&report(scenario("binary", "decode"))).is_err(),
            "binary scenario without decode_binary samples"
        );
        assert!(
            validate_bench_report(&report(scenario("json", "decode_binary"))).is_err(),
            "json scenario without decode samples"
        );
        assert!(
            validate_bench_report(&report(scenario("carrier-pigeon", "decode"))).is_err(),
            "unknown protocol"
        );
    }

    #[test]
    fn diff_pairs_durable_scenarios_by_fsync_policy() {
        let durable = |name: &str, policy: &str, tput: f64, p99: u64| {
            let mut s = diff_scenario(name, Some("json"), tput, p99);
            if let Json::Obj(pairs) = &mut s {
                pairs.push(("fsync_policy".to_string(), Json::Str(policy.into())));
            }
            s
        };
        let report = |scenarios: Vec<Json>| Json::obj([("scenarios", Json::Arr(scenarios))]);
        let prev = report(vec![
            diff_scenario("steady", Some("json"), 20_000.0, 40_000),
            durable("steady", "always", 12_000.0, 50_000),
        ]);
        let cur = report(vec![
            diff_scenario("steady", Some("json"), 21_000.0, 39_000),
            durable("steady", "always", 6_000.0, 50_000),
            durable("steady", "never", 18_000.0, 45_000), // new: no baseline
        ]);
        let comparisons = diff_bench_reports(&prev, &cur, 0.2).expect("well-formed");
        // The in-memory and fsync=always scenarios pair up; fsync=never
        // is new and skipped. The durable throughput halved: regression.
        assert_eq!(comparisons.len(), 6);
        assert!(comparisons
            .iter()
            .any(|c| c.scenario == "steady[json,fsync=always]"
                && c.metric == "throughput_pubs_per_sec"
                && c.regression));
        assert!(comparisons
            .iter()
            .filter(|c| c.scenario == "steady[json]")
            .all(|c| !c.regression));
    }

    #[test]
    fn validator_checks_fsync_policy_tag() {
        let stage = |count: u64| {
            Json::obj([
                ("count", Json::UInt(count)),
                ("p50", Json::UInt(100)),
                ("p90", Json::UInt(200)),
                ("p99", Json::UInt(400)),
                ("p999", Json::UInt(480)),
                ("max", Json::UInt(500)),
            ])
        };
        let scenario = |policy: &str| {
            Json::obj([
                ("name", Json::Str("steady".into())),
                ("fsync_policy", Json::Str(policy.into())),
                ("connections", Json::UInt(10)),
                ("subscriptions", Json::UInt(20)),
                ("publishes", Json::UInt(100)),
                ("elapsed_secs", Json::Float(0.5)),
                ("throughput_pubs_per_sec", Json::Float(200.0)),
                ("client_rtt", stage(100)),
                (
                    "server",
                    Json::obj([
                        ("publications_total", Json::UInt(100)),
                        (
                            "latency",
                            Json::obj([("e2e", stage(100)), ("decode", stage(100))]),
                        ),
                    ]),
                ),
            ])
        };
        let report = |s: Json| {
            Json::obj([
                ("bench", Json::Str("loadgen".into())),
                ("issue", Json::UInt(8)),
                ("mode", Json::Str("smoke".into())),
                ("shards", Json::UInt(2)),
                ("scenarios", Json::Arr(vec![s])),
            ])
        };
        assert_eq!(validate_bench_report(&report(scenario("always"))), Ok(()));
        assert_eq!(validate_bench_report(&report(scenario("never"))), Ok(()));
        assert_eq!(validate_bench_report(&report(scenario("none"))), Ok(()));
        assert!(
            validate_bench_report(&report(scenario("sometimes"))).is_err(),
            "unknown fsync policy"
        );
    }

    #[test]
    fn validator_checks_placement_tag_and_uniform_pruning_gate() {
        let stage = |count: u64| {
            Json::obj([
                ("count", Json::UInt(count)),
                ("p50", Json::UInt(100)),
                ("p90", Json::UInt(200)),
                ("p99", Json::UInt(400)),
                ("p999", Json::UInt(480)),
                ("max", Json::UInt(500)),
            ])
        };
        let scenario = |name: &str, placement: &str, pruned: f64| {
            Json::obj([
                ("name", Json::Str(name.into())),
                ("placement", Json::Str(placement.into())),
                ("shards", Json::UInt(8)),
                (
                    "shard_visits_pruned",
                    Json::UInt((pruned * 800.0).max(0.0) as u64),
                ),
                ("pruned_fraction", Json::Float(pruned)),
                ("connections", Json::UInt(10)),
                ("subscriptions", Json::UInt(20)),
                ("publishes", Json::UInt(100)),
                ("elapsed_secs", Json::Float(0.5)),
                ("throughput_pubs_per_sec", Json::Float(200.0)),
                ("client_rtt", stage(100)),
                (
                    "server",
                    Json::obj([
                        ("publications_total", Json::UInt(100)),
                        (
                            "latency",
                            Json::obj([("e2e", stage(100)), ("decode", stage(100))]),
                        ),
                    ]),
                ),
            ])
        };
        let report = |s: Json| {
            Json::obj([
                ("bench", Json::Str("loadgen".into())),
                ("issue", Json::UInt(9)),
                ("mode", Json::Str("smoke".into())),
                ("shards", Json::UInt(2)),
                ("scenarios", Json::Arr(vec![s])),
            ])
        };
        // The pruning gate: placement-on uniform runs must show the
        // effect; hash (placement-off) runs are allowed to prune nothing.
        assert_eq!(
            validate_bench_report(&report(scenario("uniform", "on", 0.55))),
            Ok(())
        );
        assert!(
            validate_bench_report(&report(scenario("uniform", "on", 0.2))).is_err(),
            "placement-on uniform below 40% pruning"
        );
        assert_eq!(
            validate_bench_report(&report(scenario("uniform", "off", 0.02))),
            Ok(())
        );
        // Other scenarios carry the tags without the uniform gate.
        assert_eq!(
            validate_bench_report(&report(scenario("steady", "on", 0.0))),
            Ok(())
        );
        assert!(
            validate_bench_report(&report(scenario("uniform", "sideways", 0.5))).is_err(),
            "unknown placement tag"
        );
        assert!(
            validate_bench_report(&report(scenario("uniform", "on", 1.5))).is_err(),
            "pruned_fraction outside [0, 1]"
        );
        // The tag requires its companion keys.
        let mut missing = scenario("uniform", "on", 0.5);
        if let Json::Obj(pairs) = &mut missing {
            pairs.retain(|(k, _)| k != "pruned_fraction");
        }
        assert!(
            validate_bench_report(&report(missing)).is_err(),
            "placement tag without pruned_fraction"
        );
    }

    #[test]
    fn diff_pairs_placement_scenarios_by_tag() {
        let tagged = |name: &str, placement: &str, tput: f64, p99: u64| {
            let mut s = diff_scenario(name, Some("json"), tput, p99);
            if let Json::Obj(pairs) = &mut s {
                pairs.push(("placement".to_string(), Json::Str(placement.into())));
            }
            s
        };
        let report = |scenarios: Vec<Json>| Json::obj([("scenarios", Json::Arr(scenarios))]);
        // The previous report predates placement tags entirely.
        let prev = report(vec![diff_scenario(
            "steady",
            Some("json"),
            20_000.0,
            40_000,
        )]);
        let cur = report(vec![
            tagged("steady", "on", 21_000.0, 39_000),
            tagged("uniform", "on", 30_000.0, 20_000),
            tagged("uniform", "off", 29_000.0, 21_000),
        ]);
        let comparisons = diff_bench_reports(&prev, &cur, 0.2).expect("well-formed");
        // Placement-on pairs with the untagged baseline; the uniform
        // scenarios are new (both keys) and skipped.
        assert_eq!(comparisons.len(), 3);
        assert!(comparisons.iter().all(|c| c.scenario == "steady[json]"));
        // Across two tagged reports, off pairs only with off.
        let prev2 = report(vec![
            tagged("uniform", "on", 30_000.0, 20_000),
            tagged("uniform", "off", 20_000.0, 30_000),
        ]);
        let cur2 = report(vec![
            tagged("uniform", "on", 31_000.0, 19_000),
            tagged("uniform", "off", 10_000.0, 30_000),
        ]);
        let comparisons = diff_bench_reports(&prev2, &cur2, 0.2).expect("well-formed");
        assert_eq!(comparisons.len(), 6);
        assert!(comparisons
            .iter()
            .any(|c| c.scenario == "uniform[json,placement=off]"
                && c.metric == "throughput_pubs_per_sec"
                && c.regression));
        assert!(comparisons
            .iter()
            .filter(|c| c.scenario == "uniform[json]")
            .all(|c| !c.regression));
    }

    #[test]
    fn diff_flags_regressions_and_pairs_by_protocol() {
        let report = |scenarios: Vec<Json>| Json::obj([("scenarios", Json::Arr(scenarios))]);
        // Previous report predates protocol tags (implicitly json).
        let prev = report(vec![diff_scenario("steady", None, 20_000.0, 40_000)]);
        let cur = report(vec![
            diff_scenario("steady", Some("json"), 15_000.0, 60_000),
            diff_scenario("steady", Some("binary"), 45_000.0, 20_000),
        ]);
        let comparisons = diff_bench_reports(&prev, &cur, 0.2).expect("well-formed");
        // Only steady[json] has a baseline; binary is new and skipped.
        assert_eq!(comparisons.len(), 3);
        assert!(comparisons.iter().all(|c| c.scenario == "steady[json]"));
        let by_metric = |m: &str| {
            comparisons
                .iter()
                .find(|c| c.metric == m)
                .expect("metric present")
        };
        assert!(
            by_metric("throughput_pubs_per_sec").regression,
            "25% throughput drop exceeds 20% tolerance"
        );
        assert!(
            by_metric("client_rtt_p99_ns").regression,
            "50% p99 rise exceeds 20% tolerance"
        );
        // Within tolerance: no regression.
        let calm = report(vec![diff_scenario(
            "steady",
            Some("json"),
            18_000.0,
            44_000,
        )]);
        let comparisons = diff_bench_reports(&prev, &calm, 0.2).expect("well-formed");
        assert!(comparisons.iter().all(|c| !c.regression));
        assert!(!comparisons[0].to_string().contains("REGRESSION"));
    }
}
