//! # psc-bench
//!
//! Criterion benchmarks covering every figure family of the paper plus the
//! ablations called out in DESIGN.md §7. Shared fixtures live here; the
//! bench targets are under `benches/`:
//!
//! | Bench target | Measures | Paper artifact |
//! |---|---|---|
//! | `conflict_table` | table construction `O(m·k)` | Definition 2 |
//! | `mcs_reduction` | MCS fixpoint cost & effect | Figures 6, 8 |
//! | `rspc_sampling` | point sampling + witness checks | Figures 10, 11 |
//! | `subsumption_pipeline` | full Algorithm 4, stage ablations | Figures 7, 9 |
//! | `matching` | naive vs counting vs two-phase store | Algorithm 5 |
//! | `comparison_stream` | pairwise vs group stream filtering | Figures 13, 14 |
//! | `broker_network` | per-policy subscription propagation | Figures 1, 5 |
//! | `service_throughput` | sharded service publish throughput | serving layer |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use psc_model::expand::Template;
use psc_model::wire::Json;
use psc_model::{Publication, Range, Schema, Subscription};
use psc_workload::{
    seeded_rng, ComparisonWorkload, ExtremeNonCoverScenario, NonCoverScenario,
    RedundantCoverScenario,
};
use rand::Rng;

/// A ready-made covered instance (redundant covering scenario).
pub fn covered_instance(m: usize, k: usize) -> (Subscription, Vec<Subscription>) {
    let inst = RedundantCoverScenario::new(m, k).generate(&mut seeded_rng(0xBEEF));
    (inst.s, inst.set)
}

/// A ready-made non-covered instance (non-cover scenario).
pub fn non_covered_instance(m: usize, k: usize) -> (Subscription, Vec<Subscription>) {
    let inst = NonCoverScenario::new(m, k).generate(&mut seeded_rng(0xFEED));
    (inst.s, inst.set)
}

/// A ready-made extreme non-cover instance (gap sweep fixture).
pub fn extreme_instance(gap: f64) -> (Subscription, Vec<Subscription>) {
    let inst = ExtremeNonCoverScenario::new(gap).generate(&mut seeded_rng(0xABBA));
    (inst.s, inst.set)
}

/// A realistic subscription stream plus matching publications.
pub fn stream_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let wl = ComparisonWorkload::new(m);
    let schema = wl.schema();
    let mut rng = seeded_rng(0xD00D);
    let stream = wl.stream(subs, &mut rng);
    let publications = (0..pubs)
        .map(|_| wl.publication(&schema, &mut rng))
        .collect();
    (schema, stream, publications)
}

/// The paper's uniform workload: attribute domains `[0, 999]`, uniformly
/// placed range starts, uniform widths up to `max_width`. Used by the
/// service-layer benchmarks and tests.
pub fn uniform_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
    max_width: i64,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let schema = Schema::uniform(m, 0, 999);
    let mut rng = seeded_rng(seed);
    let subscriptions = (0..subs)
        .map(|_| {
            let ranges = (0..m)
                .map(|_| {
                    let lo = rng.gen_range(0i64..=999);
                    let width = rng.gen_range(0i64..=max_width);
                    Range::new(lo, (lo + width).min(999)).expect("ordered bounds")
                })
                .collect();
            Subscription::from_ranges(&schema, ranges).expect("within domain")
        })
        .collect();
    let publications = (0..pubs)
        .map(|_| {
            let values = (0..m).map(|_| rng.gen_range(0i64..=999)).collect();
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

/// Number of hot "topics" the skewed workload's subscribers concentrate
/// on (point constraints on attribute `x0`).
pub const SKEWED_HOT_TOPICS: usize = 24;

/// A topic-skewed workload for content-aware routing benchmarks.
///
/// Subscribers concentrate on [`SKEWED_HOT_TOPICS`] discrete "topics":
/// each subscription pins `x0` to one hot topic value (spread across the
/// `[0, 999]` domain) and constrains the remaining attributes with
/// uniform ranges like [`uniform_fixture`]. Publications split 50/50:
/// half land on a hot topic (these have subscribers and fan out widely),
/// half draw `x0` uniformly from the whole domain (mostly topics nobody
/// subscribed to — the classic pub/sub long tail). A shard's per-
/// attribute value set over `x0` then prunes most long-tail publications
/// outright, which is the effect the `service_throughput` fan-out report
/// measures.
pub fn skewed_fixture(
    m: usize,
    subs: usize,
    pubs: usize,
    max_width: i64,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    assert!(m >= 2, "skewed fixture needs a topic attribute plus one");
    let schema = Schema::uniform(m, 0, 999);
    let mut rng = seeded_rng(seed);
    let topic = |i: usize| 20 + 41 * i as i64; // 24 topics over [20, 963]
    let subscriptions = (0..subs)
        .map(|_| {
            let hot = topic(rng.gen_range(0usize..SKEWED_HOT_TOPICS));
            let mut ranges = vec![Range::point(hot)];
            ranges.extend((1..m).map(|_| {
                let lo = rng.gen_range(0i64..=999);
                let width = rng.gen_range(0i64..=max_width);
                Range::new(lo, (lo + width).min(999)).expect("ordered bounds")
            }));
            Subscription::from_ranges(&schema, ranges).expect("within domain")
        })
        .collect();
    let publications = (0..pubs)
        .map(|i| {
            let x0 = if i % 2 == 0 {
                topic(rng.gen_range(0usize..SKEWED_HOT_TOPICS))
            } else {
                rng.gen_range(0i64..=999)
            };
            let mut values = vec![x0];
            values.extend((1..m).map(|_| rng.gen_range(0i64..=999)));
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

/// A synonym-expanded semantic workload built on
/// [`psc_model::expand::Template`].
///
/// Each of the `requests` disjunctive requests constrains the topic
/// attribute `x0` to 2–3 synonym point values and the time attribute
/// `x1` to two admissible windows, then expands into conjunctive
/// subscriptions (cross-product, capped at 16 per request) — the
/// loadgen's stand-in for semantically equivalent subscription
/// vocabularies. Publications split 50/50 between values drawn inside a
/// random expanded subscription's box (guaranteed subscribers) and
/// uniform draws (the long tail).
pub fn semantic_fixture(
    requests: usize,
    pubs: usize,
    seed: u64,
) -> (Schema, Vec<Subscription>, Vec<Publication>) {
    let schema = Schema::uniform(4, 0, 999);
    let mut rng = seeded_rng(seed);
    let mut subscriptions: Vec<Subscription> = Vec::new();
    for _ in 0..requests {
        let base = rng.gen_range(0i64..=799);
        let synonyms = (0..rng.gen_range(2usize..=3))
            .map(|j| Range::point((base + 97 * j as i64) % 1000))
            .collect();
        let windows = (0..2)
            .map(|_| {
                let lo = rng.gen_range(0i64..=899);
                Range::new(lo, lo + 100).expect("ordered bounds")
            })
            .collect();
        let lo2 = rng.gen_range(0i64..=699);
        let expanded = Template::new(&schema)
            .alternatives(0, synonyms)
            .alternatives(1, windows)
            .alternatives(2, vec![Range::new(lo2, lo2 + 300).expect("ordered bounds")])
            .expand(16)
            .expect("expansion within cap");
        subscriptions.extend(expanded);
    }
    let publications = (0..pubs)
        .map(|i| {
            let values = if i % 2 == 0 && !subscriptions.is_empty() {
                let s = &subscriptions[rng.gen_range(0..subscriptions.len())];
                s.ranges()
                    .iter()
                    .map(|r| rng.gen_range(r.lo()..=r.hi()))
                    .collect()
            } else {
                (0..4).map(|_| rng.gen_range(0i64..=999)).collect()
            };
            Publication::from_values(&schema, values).expect("within domain")
        })
        .collect();
    (schema, subscriptions, publications)
}

/// Validates a loadgen `BENCH_*.json` report document.
///
/// The schema this enforces is what `docs/OBSERVABILITY.md` documents:
/// a top-level `bench`/`issue`/`mode`/`shards` header plus a non-empty
/// `scenarios` array, where every scenario carries its sizing, its
/// throughput, a client round-trip quantile ladder, and the server-side
/// per-stage latency with a populated end-to-end stage. Both the loadgen
/// binary (before writing a report) and CI (after running the smoke
/// mode) call this, so a report that drifts from the documented schema
/// fails loudly in both places.
pub fn validate_bench_report(report: &Json) -> Result<(), String> {
    fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
        v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string \"{key}\""))
    }
    fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer \"{key}\""))
    }
    fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number \"{key}\""))
    }
    fn quantile_ladder(stage: &Json, what: &str) -> Result<(), String> {
        let tag = |e| format!("{what}: {e}");
        if u64_field(stage, "count").map_err(tag)? == 0 {
            return Err(format!("{what}: zero samples"));
        }
        let ladder = ["p50", "p90", "p99", "p999", "max"];
        let mut last = 0u64;
        for key in ladder {
            let v = u64_field(stage, key).map_err(tag)?;
            if v < last {
                return Err(format!("{what}: quantile ladder not monotone at {key}"));
            }
            last = v;
        }
        Ok(())
    }

    if str_field(report, "bench")? != "loadgen" {
        return Err("\"bench\" is not \"loadgen\"".into());
    }
    u64_field(report, "issue")?;
    u64_field(report, "shards")?;
    let mode = str_field(report, "mode")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("unknown mode \"{mode}\""));
    }
    let scenarios = report
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("missing \"scenarios\" array")?;
    if scenarios.is_empty() {
        return Err("\"scenarios\" is empty".into());
    }
    for scenario in scenarios {
        let name = str_field(scenario, "name")?;
        let tag = |e: String| format!("scenario \"{name}\": {e}");
        if u64_field(scenario, "connections").map_err(tag)? == 0 {
            return Err(format!("scenario \"{name}\": no connections"));
        }
        u64_field(scenario, "subscriptions").map_err(tag)?;
        if u64_field(scenario, "publishes").map_err(tag)? == 0 {
            return Err(format!("scenario \"{name}\": no publishes"));
        }
        if f64_field(scenario, "elapsed_secs").map_err(tag)? <= 0.0 {
            return Err(format!("scenario \"{name}\": non-positive elapsed"));
        }
        if f64_field(scenario, "throughput_pubs_per_sec").map_err(tag)? <= 0.0 {
            return Err(format!("scenario \"{name}\": non-positive throughput"));
        }
        let rtt = scenario
            .get("client_rtt")
            .ok_or_else(|| format!("scenario \"{name}\": missing \"client_rtt\""))?;
        quantile_ladder(rtt, &format!("scenario \"{name}\" client_rtt"))?;
        let server = scenario
            .get("server")
            .ok_or_else(|| format!("scenario \"{name}\": missing \"server\""))?;
        u64_field(server, "publications_total").map_err(tag)?;
        let latency = server
            .get("latency")
            .ok_or_else(|| format!("scenario \"{name}\": missing server latency"))?;
        let e2e = latency
            .get("e2e")
            .ok_or_else(|| format!("scenario \"{name}\": missing e2e stage"))?;
        quantile_ladder(e2e, &format!("scenario \"{name}\" e2e"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_well_formed() {
        let (s, set) = covered_instance(5, 20);
        assert_eq!(set.len(), 20);
        assert_eq!(s.arity(), 5);
        let (s2, set2) = covered_instance(5, 20);
        assert_eq!(s, s2);
        assert_eq!(set, set2);

        let (_, set) = non_covered_instance(5, 30);
        assert_eq!(set.len(), 30);

        let (_, set) = extreme_instance(0.02);
        assert_eq!(set.len(), 50);

        let (schema, subs, pubs) = stream_fixture(10, 50, 10);
        assert_eq!(schema.len(), 10);
        assert_eq!(subs.len(), 50);
        assert_eq!(pubs.len(), 10);

        let (schema, subs, pubs) = uniform_fixture(4, 30, 5, 300, 7);
        assert_eq!(schema.len(), 4);
        assert_eq!(subs.len(), 30);
        assert_eq!(pubs.len(), 5);
        let (_, subs2, _) = uniform_fixture(4, 30, 5, 300, 7);
        assert_eq!(subs, subs2, "fixture is deterministic per seed");

        let (schema, subs, pubs) = skewed_fixture(4, 40, 10, 250, 9);
        assert_eq!(schema.len(), 4);
        assert_eq!(subs.len(), 40);
        assert_eq!(pubs.len(), 10);
        for s in &subs {
            let r = s.ranges()[0];
            assert_eq!(r.lo(), r.hi(), "topic attribute is a point");
            assert_eq!((r.lo() - 20) % 41, 0, "topic drawn from the hot set");
        }
        let (_, subs2, _) = skewed_fixture(4, 40, 10, 250, 9);
        assert_eq!(subs, subs2, "skewed fixture is deterministic per seed");

        let (schema, subs, pubs) = semantic_fixture(10, 20, 11);
        assert_eq!(schema.len(), 4);
        assert_eq!(pubs.len(), 20);
        // Each request expands to 2–6 conjunctive subscriptions.
        assert!(subs.len() >= 20 && subs.len() <= 60, "got {}", subs.len());
        for s in &subs {
            let topic = s.ranges()[0];
            assert_eq!(topic.lo(), topic.hi(), "synonym alternative is a point");
        }
        let (_, subs2, _) = semantic_fixture(10, 20, 11);
        assert_eq!(subs, subs2, "semantic fixture is deterministic per seed");
    }

    #[test]
    fn bench_report_validator_accepts_and_rejects() {
        let stage = |count: u64| {
            Json::obj([
                ("count", Json::UInt(count)),
                ("min", Json::UInt(10)),
                ("max", Json::UInt(500)),
                ("mean", Json::Float(120.0)),
                ("p50", Json::UInt(100)),
                ("p90", Json::UInt(200)),
                ("p99", Json::UInt(400)),
                ("p999", Json::UInt(480)),
            ])
        };
        let scenario = Json::obj([
            ("name", Json::Str("steady".into())),
            ("connections", Json::UInt(10)),
            ("subscriptions", Json::UInt(20)),
            ("publishes", Json::UInt(100)),
            ("elapsed_secs", Json::Float(0.5)),
            ("throughput_pubs_per_sec", Json::Float(200.0)),
            ("client_rtt", stage(100)),
            (
                "server",
                Json::obj([
                    ("publications_total", Json::UInt(100)),
                    ("latency", Json::obj([("e2e", stage(100))])),
                ]),
            ),
        ]);
        let report = |scenarios: Vec<Json>| {
            Json::obj([
                ("bench", Json::Str("loadgen".into())),
                ("issue", Json::UInt(6)),
                ("mode", Json::Str("smoke".into())),
                ("shards", Json::UInt(2)),
                ("scenarios", Json::Arr(scenarios)),
            ])
        };
        assert_eq!(
            validate_bench_report(&report(vec![scenario.clone()])),
            Ok(())
        );

        assert!(
            validate_bench_report(&report(vec![])).is_err(),
            "empty scenarios"
        );
        assert!(
            validate_bench_report(&Json::obj([("bench", Json::Str("other".into()))])).is_err(),
            "wrong bench name"
        );
        // A zero-sample e2e stage must fail: it means no publish ever
        // completed the publish→deliver span.
        let mut broken = scenario.clone();
        if let Json::Obj(pairs) = &mut broken {
            for (k, v) in pairs.iter_mut() {
                if k == "server" {
                    *v = Json::obj([
                        ("publications_total", Json::UInt(100)),
                        ("latency", Json::obj([("e2e", stage(0))])),
                    ]);
                }
            }
        }
        assert!(
            validate_bench_report(&report(vec![broken])).is_err(),
            "empty e2e"
        );
        // A non-monotone quantile ladder must fail.
        let mut skewed_ladder = scenario;
        if let Json::Obj(pairs) = &mut skewed_ladder {
            for (k, v) in pairs.iter_mut() {
                if k == "client_rtt" {
                    let mut s = stage(100);
                    if let Json::Obj(sp) = &mut s {
                        for (sk, sv) in sp.iter_mut() {
                            if sk == "p99" {
                                *sv = Json::UInt(50);
                            }
                        }
                    }
                    *v = s;
                }
            }
        }
        assert!(
            validate_bench_report(&report(vec![skewed_ladder])).is_err(),
            "non-monotone ladder"
        );
    }
}
