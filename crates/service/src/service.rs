//! The sharded pub/sub service: routing, batching, and fan-out/merge.
//!
//! [`PubSubService`] owns `N` shard worker threads (see the private
//! `shard` module).
//! Subscriptions are *placed* content-aware: the router scores each
//! shard by how much admitting the subscription would widen its
//! attribute-space summary and picks the minimum-widening shard,
//! recording the choice in a placement directory for unsubscribe (see
//! [`crate::routing::placement`]; with `placement_enabled` off the old
//! id-hash decides instead). Publications fan out to the shards whose
//! attribute-space summary admits them ([`crate::routing`];
//! provably-unmatchable shards are skipped) and the per-shard match
//! sets are merged. Incoming
//! subscriptions are buffered per shard and admitted in batches (the
//! admission pipeline), which lets the covering store admit widest-first
//! and suppress covered subscriptions without demotion churn.
//!
//! ## Consistency model
//!
//! `subscribe` enqueues; a subscription is guaranteed visible to matching
//! once the service *flushes* — which happens automatically when the
//! shard's buffer reaches `batch_size` and before every `publish`,
//! `unsubscribe`, `metrics`, or `snapshot` call. Per-shard command queues
//! are FIFO, so after a flush every later publication observes the batch.

use crate::metrics::ServiceMetrics;
use crate::routing::{PlacementDirectory, ShardSummary, SummaryCell, DEFAULT_SUMMARY_INTERVALS};
use crate::shard::{SelectedIndices, ShardCommand, ShardWorker};
use crate::storage::{FsyncPolicy, ShardStorage, StorageConfig};
use crate::telemetry::{AtomicHistogram, ServiceLatency};
use psc_core::SubsumptionChecker;
use psc_matcher::CoveringStore;
use psc_model::wire::PlacementStats;
use psc_model::{Publication, Schema, Subscription, SubscriptionId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Cap on per-shard in-flight (sent, unconfirmed) batch summaries the
/// router retains for routing decisions; beyond it the two oldest merge.
/// Bounds router memory on subscribe-heavy, publish-free workloads while
/// staying conservative (a merged summary is a union).
const MAX_INFLIGHT_SUMMARIES: usize = 8;

/// Tuning knobs for a [`PubSubService`] and its serving edges.
///
/// The first block configures the matching engine; the second configures
/// the reactor front-end ([`crate::ServiceServer`]); `io_timeout` bounds
/// the blocking [`crate::ServiceClient`]'s socket operations.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Admission buffer size per shard; a full buffer flushes itself.
    pub batch_size: usize,
    /// Error probability `δ` for the probabilistic subsumption checker.
    pub error_probability: f64,
    /// Iteration cap for the RSPC sampling loop.
    pub max_iterations: u64,
    /// Base seed; shard `i` derives its RNG from `seed ^ i`.
    pub seed: u64,
    /// Server: open-connection cap; accepts beyond it are closed
    /// immediately (counted in
    /// [`ReactorMetrics::connections_rejected_at_cap`](crate::ReactorMetrics)).
    pub max_connections: usize,
    /// Server: per-connection bound on unsent response bytes; a consumer
    /// whose backlog exceeds it is disconnected (slow-consumer policy).
    pub max_write_buffer_bytes: usize,
    /// Server: disconnect connections idle longer than this
    /// (`None` = never reap).
    pub idle_timeout: Option<std::time::Duration>,
    /// Server: longest accepted request frame — a JSON line or a binary
    /// frame payload. One cap shared by both protocols, enforced
    /// mid-stream by the incremental framers so an unterminated hostile
    /// line (or absurd binary length header) never buffers more than
    /// this many bytes per connection.
    pub max_frame_bytes: usize,
    /// Server: size of each connection's pooled read buffer, allocated
    /// once per connection and reused for every read.
    pub read_buffer_bytes: usize,
    /// Server: initial capacity of each connection's response write
    /// buffer (distinct from `max_write_buffer_bytes`, which is the
    /// backlog *cap*); steady-state responses append without
    /// reallocating.
    pub write_buffer_bytes: usize,
    /// Client: connect/read/write timeout for [`crate::ServiceClient`],
    /// so a hung server surfaces as a timeout error instead of wedging
    /// the caller forever (`None` = block indefinitely).
    pub io_timeout: Option<std::time::Duration>,
    /// Storage: root directory for durable shard state (`None` = purely
    /// in-memory; a restart forgets every subscription). Each shard owns
    /// `<data_dir>/shard-<i>` with a write-ahead log and snapshots; on
    /// start the service rebuilds every shard store from disk. See
    /// [`crate::storage`].
    pub data_dir: Option<PathBuf>,
    /// Storage: whether write-ahead-log appends are fsynced
    /// ([`FsyncPolicy::Always`], power-loss safe) or left to the page
    /// cache ([`FsyncPolicy::Never`], process-crash safe).
    pub fsync: FsyncPolicy,
    /// Storage: snapshot after this many log records per shard; `0`
    /// disables snapshots (the log then grows without bound). Snapshots
    /// are written by a per-shard background thread — admission does not
    /// stall while one is in flight — and log segments fully behind a
    /// completed snapshot are deleted.
    pub snapshot_every: u64,
    /// Storage: rotate a shard's write-ahead log into a new segment once
    /// the current one reaches this many bytes (`0` = never rotate).
    /// Bounded segments are the unit of snapshot-based log pruning (and,
    /// later, federation log-shipping); a segment may exceed the cap by
    /// at most one record.
    pub wal_segment_bytes: u64,
    /// Routing: consult per-shard attribute-space summaries on the
    /// publish path and skip shards that provably cannot match (see
    /// [`crate::routing`]). Disable to fan every publish out to all
    /// shards — useful for A/B measurement; results are identical either
    /// way (summaries are conservative).
    pub routing_enabled: bool,
    /// Routing: rebuild (re-tighten) a shard's summary from its store
    /// once more than this many unsubscriptions have accumulated since
    /// the last rebuild. Removals never narrow a summary in place, so a
    /// lower value keeps summaries tighter (better pruning) at the cost
    /// of more rebuild work; `0` re-tightens on every unsubscription.
    pub summary_retighten_after: u64,
    /// Routing: place each new subscription on the shard whose summary it
    /// would widen least (greedy attribute-space clustering, see
    /// [`crate::routing::placement`]) instead of hashing its id. Pruning
    /// then bites even on uniform workloads, where hash placement makes
    /// every shard's summary statistically identical. Disable to fall
    /// back to hash placement — results are identical either way; only
    /// the visit counts differ.
    pub placement_enabled: bool,
    /// Routing: per-attribute interval cap for the multi-interval shard
    /// summaries (clamped to ≥ 1). Higher keeps summaries (and therefore
    /// placement clustering and pruning) sharper at the cost of a larger
    /// seqlock cell and slightly slower summary operations.
    pub summary_intervals: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            batch_size: 32,
            error_probability: 1e-6,
            max_iterations: 2_000,
            seed: 0x5EED,
            max_connections: 8_192,
            max_write_buffer_bytes: 1 << 20,
            idle_timeout: None,
            max_frame_bytes: crate::wire::MAX_REQUEST_LINE_BYTES,
            read_buffer_bytes: 16 * 1024,
            write_buffer_bytes: 16 * 1024,
            io_timeout: Some(std::time::Duration::from_secs(30)),
            data_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: 4_096,
            wal_segment_bytes: 8 << 20,
            routing_enabled: true,
            summary_retighten_after: 64,
            placement_enabled: true,
            summary_intervals: DEFAULT_SUMMARY_INTERVALS,
        }
    }
}

impl ServiceConfig {
    /// Config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }
}

/// Errors surfaced by [`PubSubService`] calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The subscription/publication was built against a different schema.
    SchemaMismatch,
    /// Durable storage could not be opened or recovered at boot
    /// (unwritable `data_dir`, corrupt snapshot, invalid store image).
    Storage {
        /// The `io::ErrorKind` the failure maps to — the underlying kind
        /// for filesystem failures (`PermissionDenied`, `StorageFull`,
        /// …), `InvalidData` for corruption — so callers can distinguish
        /// an environment problem from damaged data.
        kind: std::io::ErrorKind,
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::SchemaMismatch => {
                write!(f, "object schema does not match the service schema")
            }
            ServiceError::Storage { detail, .. } => write!(f, "storage failed: {detail}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Router-side admission state of one shard, guarded by its mutex.
struct PendingState {
    /// Buffered subscriptions not yet sent to the shard worker.
    buffer: Vec<(SubscriptionId, Subscription)>,
    /// Conservative summary of `buffer` (widened on every subscribe).
    summary: ShardSummary,
    /// Summaries of admission batches sent but not yet confirmed applied
    /// by the shard's cell (`(batch seq, summary)`, ascending seq). The
    /// routing decision unions these on top of the cell snapshot so a
    /// publication enqueued behind an in-flight batch can never be pruned
    /// away from subscriptions in that batch.
    sent: VecDeque<(u64, ShardSummary)>,
    /// Admit commands sent to this shard since boot (the handshake
    /// counterpart of the cell's `applied_batches`).
    batches_sent: u64,
    /// Highest `applied_batches` any publisher has popped `sent` against.
    /// A publisher whose pre-lock cell view is older than this floor must
    /// re-read the cell under the lock: a fresher-viewed publisher may
    /// already have dropped `sent` entries the stale view does not cover,
    /// and deciding from the stale pair could prune a shard that holds a
    /// flushed, matching subscription.
    confirmed_floor: u64,
}

struct Shard {
    commands: Sender<ShardCommand>,
    pending: Mutex<PendingState>,
    /// The shard worker's published summary (router reads, worker writes).
    cell: Arc<SummaryCell>,
    /// Publish fan-outs that skipped this shard (router-side; overlaid
    /// onto the shard's scraped metrics).
    pruned: AtomicU64,
    join: Option<JoinHandle<()>>,
}

/// The sharded concurrent subscription/matching service.
///
/// Shareable across threads (`&self` methods only); wrap in an [`Arc`] to
/// serve multiple connections.
///
/// # Example
/// ```
/// use psc_model::{Publication, Schema, Subscription, SubscriptionId};
/// use psc_service::{PubSubService, ServiceConfig};
///
/// let schema = Schema::uniform(2, 0, 99);
/// let service = PubSubService::start(schema.clone(), ServiceConfig::with_shards(2));
///
/// let wide = Subscription::builder(&schema).range("x0", 0, 50).build()?;
/// let narrow = Subscription::builder(&schema).range("x0", 10, 20).build()?;
/// service.subscribe(SubscriptionId(1), wide)?;
/// service.subscribe(SubscriptionId(2), narrow)?;
///
/// let p = Publication::builder(&schema).set("x0", 15).set("x1", 3).build()?;
/// assert_eq!(
///     service.publish(&p)?,
///     vec![SubscriptionId(1), SubscriptionId(2)],
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PubSubService {
    schema: Schema,
    shards: Vec<Shard>,
    batch_size: usize,
    routing_enabled: bool,
    placement_enabled: bool,
    /// Per-attribute interval cap for every summary the router builds.
    summary_intervals: usize,
    /// id→shard assignments plus the per-shard placement views the
    /// greedy scorer reads. Maintained in both placement modes so
    /// unsubscribe always resolves through it; rebuilt from recovery,
    /// never persisted.
    directory: Mutex<PlacementDirectory>,
    /// Whether shards persist to disk (`data_dir` was set). Lets the
    /// serving edge decide if a flush should also be a durability barrier.
    durable: bool,
    /// Publications accepted by the router, before any pruning. The
    /// per-shard `publications_processed` counters cannot reconstruct
    /// this under routing (a pruned publish never reaches the shard), so
    /// the router counts at ingress; see [`ServiceMetrics::publications_total`].
    publications_total: AtomicU64,
    /// Wall time of each per-shard routing decision (summary consult +
    /// in-flight merge) — the `route` telemetry stage, recorded by the
    /// publishing threads themselves.
    route_latency: AtomicHistogram,
}

impl PubSubService {
    /// Spawns the shard workers and returns the running service.
    ///
    /// Convenience wrapper over [`open`](PubSubService::open) for
    /// in-memory configurations, which cannot fail.
    ///
    /// # Panics
    /// Panics if `config.shards` or `config.batch_size` is zero, or if
    /// `config.data_dir` is set and opening/recovering storage fails —
    /// use `open` to handle storage errors.
    pub fn start(schema: Schema, config: ServiceConfig) -> Self {
        PubSubService::open(schema, config).expect("open service storage")
    }

    /// Opens durable storage (when `config.data_dir` is set), rebuilds
    /// each shard's store from its snapshot + write-ahead log, spawns the
    /// shard workers, and returns the running service.
    ///
    /// Recovery is exact: a shard rebooted from disk holds the same
    /// active/covered columns, parent links, and RNG state as the shard
    /// that was stopped, so it serves identical match results (see
    /// [`crate::storage`] for the crash-consistency rules, including the
    /// tolerated torn final log record).
    ///
    /// # Panics
    /// Panics if `config.shards` or `config.batch_size` is zero.
    pub fn open(schema: Schema, config: ServiceConfig) -> Result<Self, ServiceError> {
        assert!(config.shards > 0, "a service needs at least one shard");
        assert!(config.batch_size > 0, "batch_size must be positive");
        let storage_err = |e: crate::storage::StorageError| ServiceError::Storage {
            kind: e.io_kind(),
            detail: e.to_string(),
        };
        let summary_intervals = config.summary_intervals.max(1);
        let mut directory = PlacementDirectory::new(config.shards, schema.len(), summary_intervals);
        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let checker = SubsumptionChecker::builder()
                .error_probability(config.error_probability)
                .max_iterations(config.max_iterations)
                .build();
            let mut rng = StdRng::seed_from_u64(config.seed ^ i as u64);
            let mut storage = None;
            let mut log_records = Vec::new();
            let mut image_entries = None;
            if let Some(data_dir) = &config.data_dir {
                let (shard_storage, recovery) = ShardStorage::open(
                    StorageConfig {
                        dir: data_dir.join(format!("shard-{i}")),
                        fsync: config.fsync,
                        snapshot_every: config.snapshot_every,
                        segment_bytes: config.wal_segment_bytes,
                    },
                    &schema,
                )
                .map_err(storage_err)?;
                if let Some(image) = recovery.image {
                    // The snapshot restores the exact store image *and*
                    // the RNG stream position captured with it, so
                    // replayed post-snapshot records reproduce the same
                    // probabilistic admission decisions as live traffic.
                    rng = StdRng::from_state(image.rng_state);
                    image_entries = Some(image.entries);
                }
                storage = Some(shard_storage);
                log_records = recovery.records;
            }
            // Rebuild this shard's slice of the placement directory from
            // what recovery found, before the image moves into the store
            // and the log records into the worker thread. The live set is
            // snapshot entries plus the log suffix in order; admissions
            // keep the *existing* entry on a duplicate id, mirroring the
            // worker's replay-dedup (and the store's keep-existing rule),
            // so the directory agrees with the store byte-for-byte.
            {
                let mut live: HashMap<SubscriptionId, &Subscription> = HashMap::new();
                for (id, sub, _) in image_entries.iter().flatten() {
                    live.insert(*id, sub);
                }
                for record in &log_records {
                    match record {
                        crate::storage::LogRecord::Admit(batch) => {
                            for (id, sub) in batch {
                                live.entry(*id).or_insert(sub);
                            }
                        }
                        crate::storage::LogRecord::Unsubscribe(id) => {
                            live.remove(id);
                        }
                    }
                }
                for (id, sub) in live {
                    directory.record(id, i, &schema, sub.ranges());
                }
            }
            let store = match image_entries {
                Some(entries) => CoveringStore::from_entries(checker, entries)
                    .map_err(|e| storage_err(crate::storage::StorageError::Restore(e)))?,
                None => CoveringStore::new(checker),
            };
            let cell = Arc::new(SummaryCell::new(schema.len(), summary_intervals));
            let mut worker = ShardWorker::new(
                schema.clone(),
                store,
                rng,
                storage,
                Arc::clone(&cell),
                config.routing_enabled,
                config.summary_retighten_after,
                summary_intervals,
            );
            let (tx, rx) = channel();
            let join = std::thread::Builder::new()
                .name(format!("psc-shard-{i}"))
                // Replay runs inside the worker thread so N shards
                // recover in parallel (boot time is the slowest shard,
                // not the sum). Commands sent meanwhile just queue: the
                // FIFO channel guarantees they observe the replayed
                // state.
                .spawn(move || {
                    worker.replay(log_records);
                    worker.run(rx)
                })
                .expect("spawn shard worker");
            shards.push(Shard {
                commands: tx,
                pending: Mutex::new(PendingState {
                    buffer: Vec::new(),
                    summary: ShardSummary::with_intervals(schema.len(), summary_intervals),
                    sent: VecDeque::new(),
                    batches_sent: 0,
                    confirmed_floor: 0,
                }),
                cell,
                pruned: AtomicU64::new(0),
                join: Some(join),
            });
        }
        Ok(PubSubService {
            schema,
            shards,
            batch_size: config.batch_size,
            routing_enabled: config.routing_enabled,
            placement_enabled: config.placement_enabled,
            summary_intervals,
            directory: Mutex::new(directory),
            durable: config.data_dir.is_some(),
            publications_total: AtomicU64::new(0),
            route_latency: AtomicHistogram::new(),
        })
    }

    /// The schema all subscriptions and publications must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: SubscriptionId) -> usize {
        // SplitMix64 finalizer: subscription ids are often sequential, and
        // this spreads them uniformly across shards.
        let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    fn send(&self, shard: usize, command: ShardCommand) {
        self.shards[shard]
            .commands
            .send(command)
            .expect("shard worker alive while service exists");
    }

    /// Enqueues a subscription for admission on its owning shard.
    ///
    /// The owning shard is chosen content-aware (minimum summary
    /// widening) when `placement_enabled`, by id hash otherwise; either
    /// way the choice lands in the placement directory, which is what
    /// [`unsubscribe`](PubSubService::unsubscribe) resolves through. A
    /// duplicate id routes to its existing shard, whose store rejects it.
    ///
    /// The subscription becomes visible to matching at the next flush
    /// (automatic once the shard buffer holds `batch_size` entries, and
    /// before any publish/unsubscribe/metrics/snapshot call).
    pub fn subscribe(&self, id: SubscriptionId, sub: Subscription) -> Result<(), ServiceError> {
        if !sub.schema().same_shape(&self.schema) {
            return Err(ServiceError::SchemaMismatch);
        }
        // The directory lock is released before the pending lock below is
        // taken — the two never nest, in either order.
        let shard = self.directory.lock().expect("directory lock").place(
            id,
            &self.schema,
            sub.ranges(),
            self.shard_of(id),
            self.placement_enabled,
        );
        // Drain and enqueue under the same lock: if the send happened after
        // unlocking, a concurrent publish whose flush saw an empty buffer
        // could enqueue its MatchBatch ahead of this batch, breaking the
        // flush-before-publish visibility guarantee. The send never blocks
        // (unbounded channel), so holding the mutex across it is safe.
        let mut pending = self.shards[shard].pending.lock().expect("pending lock");
        // The buffered summary widens before any routing decision can see
        // an empty buffer: a publish on this shard either observes the
        // subscription in `buffer`+`summary` here, in `sent` after the
        // batch ships, or in the cell once the worker confirms it applied.
        // (With routing disabled, no decision ever reads these; skip.)
        if self.routing_enabled {
            pending.summary.widen(&sub);
        }
        pending.buffer.push((id, sub));
        if pending.buffer.len() >= self.batch_size {
            self.send_pending_batch(shard, &mut pending);
        }
        Ok(())
    }

    /// Ships the buffered batch to the shard worker and rolls its summary
    /// into the in-flight list. Caller holds the shard's pending lock.
    fn send_pending_batch(&self, shard: usize, pending: &mut PendingState) {
        let batch = std::mem::take(&mut pending.buffer);
        if self.routing_enabled {
            let summary = std::mem::replace(
                &mut pending.summary,
                ShardSummary::with_intervals(self.schema.len(), self.summary_intervals),
            );
            pending.batches_sent += 1;
            pending.sent.push_back((pending.batches_sent, summary));
            // Bound the in-flight list on publish-free workloads: merge
            // the two oldest entries under the newer sequence number. The
            // union is conservative and simply lives until both batches
            // confirm.
            if pending.sent.len() > MAX_INFLIGHT_SUMMARIES {
                let (_, oldest) = pending.sent.pop_front().expect("len > cap");
                let (_, next) = pending.sent.front_mut().expect("len > cap - 1");
                next.merge(&oldest);
            }
        }
        self.send(shard, ShardCommand::Admit(batch));
    }

    fn flush_shard(&self, shard: usize) {
        // Drain + enqueue atomically; see `subscribe` for why.
        let mut pending = self.shards[shard].pending.lock().expect("pending lock");
        if !pending.buffer.is_empty() {
            self.send_pending_batch(shard, &mut pending);
        }
    }

    /// Pushes every buffered subscription into its shard's admission queue.
    pub fn flush(&self) {
        for shard in 0..self.shards.len() {
            self.flush_shard(shard);
        }
    }

    /// Whether this service persists shard state to disk.
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// Flushes every buffered subscription and blocks until each shard
    /// has **committed** every operation enqueued before this call: on a
    /// durable service with [`FsyncPolicy::Always`] that means fsynced —
    /// when this returns, those operations survive power loss. Shards are
    /// barriered in parallel (one fan-out, not N sequential fsyncs). On
    /// an in-memory service this degrades to "applied", i.e. a flush that
    /// also waits for the queues to drain.
    pub fn barrier(&self) {
        self.flush();
        let replies: Vec<_> = (0..self.shards.len())
            .map(|i| {
                let (tx, rx) = channel();
                self.send(i, ShardCommand::Barrier(tx));
                rx
            })
            .collect();
        for rx in replies {
            let _ = rx.recv();
        }
    }

    /// Removes a subscription. Returns whether it was stored.
    ///
    /// The shard is resolved through the placement directory; an id the
    /// directory has never seen is not stored anywhere, so the call
    /// returns `false` without a shard round-trip. The directory entry is
    /// dropped only after the shard acknowledged the removal, so a
    /// concurrent lookup never dangles.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let Some(shard) = self.directory.lock().expect("directory lock").lookup(id) else {
            return false;
        };
        self.flush_shard(shard);
        let (tx, rx) = channel();
        self.send(shard, ShardCommand::Unsubscribe(id, tx));
        let removed = rx.recv().expect("shard replies to unsubscribe");
        if removed {
            self.directory
                .lock()
                .expect("directory lock")
                .confirm_removal(id, shard);
        }
        removed
    }

    /// Matches one publication against every shard whose routing summary
    /// admits it and merges the results (ascending id order).
    pub fn publish(&self, publication: &Publication) -> Result<Vec<SubscriptionId>, ServiceError> {
        Ok(self
            .publish_batch(std::slice::from_ref(publication))?
            .pop()
            .expect("one result per publication"))
    }

    /// Selects the batch indices shard `i` must see: reads the shard's
    /// summary cell lock-free, then flushes the shard's buffer and clones
    /// the in-flight summaries under the pending lock, and runs the
    /// per-publication filter with the lock released (so neither the
    /// seqlock's spin-retries nor large batches serialize concurrent
    /// publishers or stall subscribes on this shard).
    ///
    /// Conservatism: a subscription is *always* visible to this decision
    /// through exactly one of three places — the pending buffer's summary
    /// (just shipped to `sent` by the flush below), an unconfirmed entry
    /// of `sent` (cloned into `in_flight` before unlocking), or the cell
    /// snapshot once the worker confirmed the batch applied
    /// (`seq <= applied_batches`, the condition for dropping the `sent`
    /// entry). Popping `sent` is shared-state destructive, so it is only
    /// sound against the freshest view any publisher has popped with
    /// (`confirmed_floor`); a pre-lock view older than the floor is
    /// re-read under the lock — see `PendingState::confirmed_floor`.
    /// `None` from the cell (never published, or a reader that lost its
    /// seqlock races) pops nothing and selects everything.
    fn route_shard(
        &self,
        i: usize,
        shard: &Shard,
        publications: &[Publication],
    ) -> SelectedIndices {
        let mut view = if self.routing_enabled {
            shard.cell.read()
        } else {
            None
        };
        let in_flight: Vec<ShardSummary> = {
            let mut pending = shard.pending.lock().expect("pending lock");
            if !pending.buffer.is_empty() {
                self.send_pending_batch(i, &mut pending);
            }
            if !self.routing_enabled {
                return (0..publications.len() as u32).collect();
            }
            if view
                .as_ref()
                .is_some_and(|v| v.applied_batches < pending.confirmed_floor)
            {
                // Another publisher already popped `sent` against a
                // fresher view: this stale one could miss a popped batch.
                // The cell is monotone, so a re-read reaches the floor.
                view = shard.cell.read();
            }
            if let Some(view) = &view {
                pending.confirmed_floor = pending.confirmed_floor.max(view.applied_batches);
                while pending
                    .sent
                    .front()
                    .is_some_and(|(seq, _)| *seq <= view.applied_batches)
                {
                    pending.sent.pop_front();
                }
            }
            // Clone the (≤ MAX_INFLIGHT_SUMMARIES) unconfirmed summaries
            // so the filter below runs without the lock.
            pending.sent.iter().map(|(_, s)| s.clone()).collect()
        };
        publications
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                view.as_ref().is_none_or(|v| v.summary.may_match(p))
                    || in_flight.iter().any(|s| s.may_match(p))
            })
            .map(|(j, _)| j as u32)
            .collect()
    }

    /// Matches a batch of publications in one fan-out round-trip per
    /// *visited* shard; returns one merged, ascending id-vector per
    /// publication.
    ///
    /// Batching amortizes the cross-thread messaging: every visited shard
    /// matches its slice of the batch against its local store in parallel
    /// with the others. With routing enabled (the default), shards whose
    /// attribute-space summary proves they cannot match a publication are
    /// skipped for it — results are identical to all-shard fan-out because
    /// summaries are conservative (see [`crate::routing`]).
    pub fn publish_batch(
        &self,
        publications: &[Publication],
    ) -> Result<Vec<Vec<SubscriptionId>>, ServiceError> {
        // Validate arity up front: `Subscription::matches` only
        // debug-asserts the schema shape, so a mismatched publication
        // would silently compare a prefix of attributes in release builds.
        if publications
            .iter()
            .any(|p| !p.schema().same_shape(&self.schema))
        {
            return Err(ServiceError::SchemaMismatch);
        }
        if publications.is_empty() {
            return Ok(Vec::new());
        }
        self.publications_total
            .fetch_add(publications.len() as u64, Ordering::Relaxed);
        // The shared clone of the batch is built lazily: a publication the
        // summaries prune away from *every* shard completes without
        // cloning or allocating at all — the common case for selective
        // workloads, and the backbone of the zero-allocation publish path.
        let mut shared: Option<Arc<[Publication]>> = None;
        // One reply channel for the whole fan-out: each shard echoes its
        // selected indices back with its matches, so replies carry their
        // own merge positions and can arrive in any order.
        let (tx, rx) = channel();
        let mut visited = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            // Flushing happens inside route_shard, under the same
            // pending-lock hold as the routing decision; per-shard
            // FIFO then guarantees the MatchBatch below observes
            // every admission the decision accounted for.
            let route_started = std::time::Instant::now();
            let selected = self.route_shard(i, shard, publications);
            self.route_latency.record_duration(route_started.elapsed());
            let pruned = publications.len() - selected.len();
            if pruned > 0 {
                shard.pruned.fetch_add(pruned as u64, Ordering::Relaxed);
            }
            if selected.is_empty() {
                continue;
            }
            let shared = shared.get_or_insert_with(|| publications.to_vec().into());
            self.send(
                i,
                ShardCommand::MatchBatch(Arc::clone(shared), selected, tx.clone()),
            );
            visited += 1;
        }
        let mut merged: Vec<Vec<SubscriptionId>> = vec![Vec::new(); publications.len()];
        for _ in 0..visited {
            let (selected, shard_matches) = rx.recv().expect("shard replies to match batch");
            debug_assert_eq!(shard_matches.len(), selected.len());
            for (&index, ids) in selected.iter().zip(shard_matches) {
                merged[index as usize].extend(ids);
            }
        }
        for slot in &mut merged {
            slot.sort_unstable();
        }
        Ok(merged)
    }

    /// Scrapes every shard's metrics (after a flush, so buffered
    /// subscriptions are counted). The router overlays its per-shard
    /// pruning counters and service-wide publish total — the workers
    /// cannot count publishes that never reached them.
    pub fn metrics(&self) -> ServiceMetrics {
        self.observe().0
    }

    /// The merged latency view: per-stage histograms, with every shard's
    /// match-stage histogram folded in. The front-end stages (`decode`,
    /// `deliver`, `e2e`) stay empty here; [`crate::ServiceServer`]'s
    /// reactor overlays them when serving a `stats` request.
    pub fn latency(&self) -> ServiceLatency {
        self.observe().1
    }

    /// One scrape round-trip returning both the counter and the latency
    /// view, so a `stats` request costs a single flush + fan-out.
    pub fn observe(&self) -> (ServiceMetrics, ServiceLatency) {
        self.flush();
        let replies: Vec<_> = (0..self.shards.len())
            .map(|i| {
                let (tx, rx) = channel();
                self.send(i, ShardCommand::Scrape(tx));
                rx
            })
            .collect();
        let mut latency = ServiceLatency {
            route: self.route_latency.snapshot(),
            ..ServiceLatency::default()
        };
        let shards = replies
            .into_iter()
            .zip(&self.shards)
            .map(|(rx, shard)| {
                let (mut metrics, match_latency) = rx.recv().expect("shard replies to scrape");
                metrics.shards_pruned = shard.pruned.load(Ordering::Relaxed);
                latency.shard_match.merge(&match_latency);
                metrics
            })
            .collect();
        let placement = {
            let directory = self.directory.lock().expect("directory lock");
            PlacementStats {
                enabled: self.placement_enabled,
                directory_entries: directory.len() as u64,
                placement_moves: directory.moves(),
            }
        };
        let metrics = ServiceMetrics {
            shards,
            publications_total: self.publications_total.load(Ordering::Relaxed),
            placement,
        };
        (metrics, latency)
    }

    /// Dumps `(id, subscription, is_active)` across all shards — the
    /// reference view differential tests compare against.
    pub fn snapshot(&self) -> HashMap<SubscriptionId, (Subscription, bool)> {
        self.flush();
        let replies: Vec<_> = (0..self.shards.len())
            .map(|i| {
                let (tx, rx) = channel();
                self.send(i, ShardCommand::Snapshot(tx));
                rx
            })
            .collect();
        let mut merged = HashMap::new();
        for rx in replies {
            merged.extend(rx.recv().expect("shard replies to snapshot"));
        }
        merged
    }
}

impl Drop for PubSubService {
    fn drop(&mut self) {
        // Flush buffered admissions before signaling shutdown: shard
        // queues are FIFO, so every enqueued subscription reaches its
        // worker — and, on a durable service, the write-ahead log —
        // before the Shutdown command does. The worker commits (fsyncs)
        // the group containing Shutdown and releases its deferred
        // acknowledgements *before* exiting its loop, so a graceful stop
        // never loses an acknowledged operation and never leaves an
        // unsubscribe caller hanging; it then joins its snapshot writer,
        // so no snapshot is ever abandoned mid-write by a clean stop.
        self.flush();
        for shard in &self.shards {
            let _ = shard.commands.send(ShardCommand::Shutdown);
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Range;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::from_ranges(
            schema,
            vec![
                Range::new(x0.0, x0.1).unwrap(),
                Range::new(x1.0, x1.1).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn routes_and_matches_across_shards() {
        let schema = schema();
        let service = PubSubService::start(schema.clone(), ServiceConfig::with_shards(4));
        for i in 0..40u64 {
            let lo = (i as i64 * 2) % 90;
            service
                .subscribe(SubscriptionId(i), sub(&schema, (lo, lo + 9), (0, 99)))
                .unwrap();
        }
        let p = Publication::builder(&schema)
            .set("x0", 5)
            .set("x1", 50)
            .build()
            .unwrap();
        let matched = service.publish(&p).unwrap();
        // Every subscription with lo <= 5 <= lo+9 matches, from any shard.
        assert!(!matched.is_empty());
        let mut sorted = matched.clone();
        sorted.sort_unstable();
        assert_eq!(matched, sorted, "merged ids are sorted");
        for id in matched {
            let lo = (id.0 as i64 * 2) % 90;
            assert!((lo..=lo + 9).contains(&5));
        }
    }

    #[test]
    fn subscribe_is_visible_after_publish_flush() {
        let schema = schema();
        // batch_size larger than the number of subscribes: only the
        // publish-triggered flush can make them visible.
        let config = ServiceConfig {
            shards: 2,
            batch_size: 1_000,
            ..Default::default()
        };
        let service = PubSubService::start(schema.clone(), config);
        service
            .subscribe(SubscriptionId(1), sub(&schema, (0, 99), (0, 99)))
            .unwrap();
        let p = Publication::builder(&schema)
            .set("x0", 1)
            .set("x1", 1)
            .build()
            .unwrap();
        assert_eq!(service.publish(&p).unwrap(), vec![SubscriptionId(1)]);
    }

    #[test]
    fn unsubscribe_sees_pending_and_removes() {
        let schema = schema();
        let config = ServiceConfig {
            shards: 3,
            batch_size: 1_000,
            ..Default::default()
        };
        let service = PubSubService::start(schema.clone(), config);
        service
            .subscribe(SubscriptionId(9), sub(&schema, (0, 9), (0, 9)))
            .unwrap();
        assert!(
            service.unsubscribe(SubscriptionId(9)),
            "pending flushed before removal"
        );
        assert!(
            !service.unsubscribe(SubscriptionId(9)),
            "second removal finds nothing"
        );
        let p = Publication::builder(&schema)
            .set("x0", 5)
            .set("x1", 5)
            .build()
            .unwrap();
        assert!(service.publish(&p).unwrap().is_empty());
    }

    #[test]
    fn duplicate_ids_rejected_not_fatal() {
        let schema = schema();
        let service = PubSubService::start(schema.clone(), ServiceConfig::with_shards(2));
        service
            .subscribe(SubscriptionId(5), sub(&schema, (0, 50), (0, 50)))
            .unwrap();
        service
            .subscribe(SubscriptionId(5), sub(&schema, (10, 20), (10, 20)))
            .unwrap();
        let metrics = service.metrics();
        let totals = metrics.totals();
        assert_eq!(totals.subscriptions_ingested, 1);
        assert_eq!(totals.subscriptions_rejected, 1);
        // Service still fully operational after the rejection.
        let p = Publication::builder(&schema)
            .set("x0", 25)
            .set("x1", 25)
            .build()
            .unwrap();
        assert_eq!(service.publish(&p).unwrap(), vec![SubscriptionId(5)]);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let service = PubSubService::start(schema(), ServiceConfig::with_shards(1));
        let other = Schema::uniform(3, 0, 9);
        let bad = Subscription::from_ranges(
            &other,
            vec![
                Range::new(0, 1).unwrap(),
                Range::new(0, 1).unwrap(),
                Range::new(0, 1).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(
            service.subscribe(SubscriptionId(1), bad),
            Err(ServiceError::SchemaMismatch)
        );
    }

    #[test]
    fn metrics_track_suppression_across_shards() {
        let schema = schema();
        let config = ServiceConfig {
            shards: 2,
            batch_size: 8,
            ..Default::default()
        };
        let service = PubSubService::start(schema.clone(), config);
        // The whole-space subscription covers everything routed to its
        // shard; narrow subscriptions on that shard get suppressed.
        for i in 0..60u64 {
            let s = if i % 10 == 0 {
                sub(&schema, (0, 99), (0, 99))
            } else {
                sub(&schema, (10, 12), (10, 12))
            };
            service.subscribe(SubscriptionId(i), s).unwrap();
        }
        let totals = service.metrics().totals();
        assert_eq!(totals.subscriptions_ingested, 60);
        assert!(totals.subscriptions_suppressed > 0);
        assert!(totals.suppression_ratio() > 0.0);
        assert_eq!(
            totals.active_subscriptions + totals.covered_subscriptions,
            60
        );
    }

    #[test]
    fn concurrent_subscribers_and_publishers() {
        let schema = schema();
        let service = Arc::new(PubSubService::start(
            schema.clone(),
            ServiceConfig {
                shards: 4,
                batch_size: 16,
                ..Default::default()
            },
        ));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let service = Arc::clone(&service);
            let schema = schema.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let id = t * 1_000 + i;
                    let lo = ((id * 7) % 90) as i64;
                    service
                        .subscribe(SubscriptionId(id), sub(&schema, (lo, lo + 9), (0, 99)))
                        .unwrap();
                }
            }));
        }
        for t in 0..2 {
            let service = Arc::clone(&service);
            let schema = schema.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..30 {
                    let v = (t * 31 + i * 13) % 100;
                    let p = Publication::builder(&schema)
                        .set("x0", v)
                        .set("x1", v)
                        .build()
                        .unwrap();
                    // Concurrent publishes must never panic or deadlock;
                    // match content is racy by design while subscribers run.
                    let _ = service.publish(&p);
                }
            }));
        }
        for join in joins {
            join.join().unwrap();
        }
        // Quiescent state: everything subscribed must now be stored.
        assert_eq!(service.snapshot().len(), 200);
        assert_eq!(service.metrics().totals().subscriptions_ingested, 200);
    }

    #[test]
    fn placement_stats_flow_through_metrics() {
        let schema = schema();
        let service = PubSubService::start(schema.clone(), ServiceConfig::with_shards(4));
        // Two tight clusters: greedy placement keeps each together, and
        // clustering forces at least one id off its hash shard.
        for i in 0..24u64 {
            let s = if i % 2 == 0 {
                sub(&schema, (0, 9), (0, 9))
            } else {
                sub(&schema, (90, 99), (90, 99))
            };
            service.subscribe(SubscriptionId(i), s).unwrap();
        }
        let placement = service.metrics().placement;
        assert!(placement.enabled);
        assert_eq!(placement.directory_entries, 24);
        assert!(
            placement.placement_moves > 0,
            "clustering never moved an id"
        );

        // Unsubscribing drains the directory; unknown ids short-circuit.
        assert!(service.unsubscribe(SubscriptionId(3)));
        assert!(!service.unsubscribe(SubscriptionId(777)));
        assert_eq!(service.metrics().placement.directory_entries, 23);
    }

    #[test]
    fn placement_disabled_falls_back_to_hash_and_still_unsubscribes() {
        let schema = schema();
        let service = PubSubService::start(
            schema.clone(),
            ServiceConfig {
                shards: 4,
                placement_enabled: false,
                ..Default::default()
            },
        );
        for i in 0..16u64 {
            service
                .subscribe(SubscriptionId(i), sub(&schema, (0, 9), (0, 9)))
                .unwrap();
        }
        let placement = service.metrics().placement;
        assert!(!placement.enabled);
        assert_eq!(placement.directory_entries, 16);
        assert_eq!(placement.placement_moves, 0, "hash placement never moves");
        for i in 0..16u64 {
            assert!(service.unsubscribe(SubscriptionId(i)));
        }
        assert_eq!(service.metrics().placement.directory_entries, 0);
    }
}
