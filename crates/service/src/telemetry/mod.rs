//! End-to-end latency telemetry: stage timers and their histograms.
//!
//! Counting says *how much* work the service did; this module says *how
//! long* each pipeline stage took, as full distributions rather than
//! averages — the paper's probabilistic subsumption trade-off (bounded
//! false-exclusion risk bought for matching speed) is only observable
//! through tail latency, so quantiles are the first-class product here.
//!
//! ## Stage map
//!
//! Five stages cover one publication's life through the serving stack;
//! every timer records into a fixed-memory [`LogHistogram`] (see
//! [`histogram`] for the bucket layout and error bound):
//!
//! | stage | span | recorded by |
//! |---|---|---|
//! | `decode` | JSON request line → decoded [`Request`](crate::wire::Request) | reactor thread ([`AtomicHistogram`]) |
//! | `decode_binary` | binary frame → decoded request (fast publish path) | reactor thread ([`AtomicHistogram`]) |
//! | `route` | per shard: summary consult + in-flight merge → selected indices | publishing threads ([`AtomicHistogram`]) |
//! | `match` | per publication: store match on one shard | shard worker (owned [`LogHistogram`], scraped on demand) |
//! | `deliver` | response encode → enqueue on the connection's write backlog | reactor thread ([`AtomicHistogram`]) |
//! | `e2e` | publish ingress (request line framed) → notification enqueue | reactor thread ([`AtomicHistogram`]) |
//!
//! `e2e` is the headline number: it is stamped when a `publish` request's
//! line completes framing and observed when the matched-notification
//! response is queued for delivery, so it covers decode, routing, the
//! cross-thread shard round-trip, merging, and encoding — everything but
//! the kernel's socket time.
//!
//! ## Recording discipline
//!
//! Same pattern as [`crate::ShardMetrics`]: hot paths never lock. The
//! shard's match histogram is owned by its worker thread and reported
//! through the existing scrape message; the router and reactor stages are
//! recorded into [`AtomicHistogram`]s (one relaxed `fetch_add` per
//! sample). Scrapes merge per-shard histograms into one
//! [`ServiceLatency`], whose [`LatencyStats`] projection travels in the
//! `stats` wire response (decode-optional, so older peers interoperate).

pub mod histogram;

pub use histogram::{AtomicHistogram, LogHistogram, Nanos};

use psc_model::wire::{LatencyStats, StageLatency};
use std::fmt;

/// The merged latency view of a service: one histogram per pipeline
/// stage. Front-end stages are empty when the service is driven
/// in-process without a reactor.
#[derive(Clone, Default, Debug)]
pub struct ServiceLatency {
    /// JSON request-line decode (reactor).
    pub decode: LogHistogram,
    /// Binary request-frame decode (reactor); empty on connections that
    /// never negotiated the binary protocol.
    pub decode_binary: LogHistogram,
    /// Router summary consult, per shard visit decision.
    pub route: LogHistogram,
    /// Per-publication store match, merged across shard workers.
    pub shard_match: LogHistogram,
    /// Response encode + enqueue onto the connection backlog (reactor).
    pub deliver: LogHistogram,
    /// Publish ingress → notification enqueue (reactor).
    pub end_to_end: LogHistogram,
}

/// Projects one histogram into the wire quantile summary — the single
/// place the quantile ladder (p50/p90/p99/p999) is defined.
pub fn stage_summary(h: &LogHistogram) -> StageLatency {
    StageLatency {
        count: h.count(),
        min_ns: h.min(),
        max_ns: h.max(),
        mean_ns: h.mean(),
        p50_ns: h.quantile(0.50),
        p90_ns: h.quantile(0.90),
        p99_ns: h.quantile(0.99),
        p999_ns: h.quantile(0.999),
    }
}

impl ServiceLatency {
    /// Projects each stage's histogram into the wire quantile summary.
    pub fn to_stats(&self) -> LatencyStats {
        let stage = stage_summary;
        LatencyStats {
            decode: stage(&self.decode),
            decode_binary: stage(&self.decode_binary),
            route: stage(&self.route),
            shard_match: stage(&self.shard_match),
            deliver: stage(&self.deliver),
            end_to_end: stage(&self.end_to_end),
        }
    }
}

impl fmt::Display for ServiceLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "latency per stage:")?;
        for (name, h) in [
            ("e2e       ", &self.end_to_end),
            ("decode    ", &self.decode),
            ("decode_bin", &self.decode_binary),
            ("route     ", &self.route),
            ("match     ", &self.shard_match),
            ("deliver   ", &self.deliver),
        ] {
            writeln!(f, "  {name} {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_projection_carries_quantiles() {
        let mut lat = ServiceLatency::default();
        for v in 1..=1_000u64 {
            lat.end_to_end.record(v * 1_000);
        }
        let stats = lat.to_stats();
        assert_eq!(stats.end_to_end.count, 1_000);
        assert!(stats.end_to_end.p50_ns >= 500_000);
        assert!(stats.end_to_end.p999_ns <= stats.end_to_end.max_ns);
        assert_eq!(stats.decode.count, 0);
        assert!(!lat.to_string().is_empty());
    }
}
