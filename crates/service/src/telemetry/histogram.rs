//! Fixed-memory log-bucketed latency histograms (HDR-style).
//!
//! A [`LogHistogram`] covers the full `u64` nanosecond range with
//! power-of-two groups, each split into [`SUB_BUCKETS`] linear
//! sub-buckets, so relative quantile error is bounded by
//! `1 / SUB_BUCKETS` (~3.1%) at every magnitude while the whole
//! structure stays a flat, fixed-size counter array (~15 KiB) — no
//! allocation on record, O(buckets) merge and quantile extraction,
//! no loss of the distribution's tail.
//!
//! Two flavors share the bucket layout:
//!
//! - [`LogHistogram`] — plain counters for single-owner recording
//!   (shard workers own one and report it through the same
//!   scrape-on-demand message as [`crate::ShardMetrics`]).
//! - [`AtomicHistogram`] — relaxed-atomic counters for stages recorded
//!   from many threads at once (the router's summary-consult stage, the
//!   reactor's decode/deliver/end-to-end stages). Recording is a single
//!   `fetch_add` per bucket — lock-free, wait-free, never contended with
//!   scrapes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two group, as a power of two.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two group (32).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Power-of-two groups above the linear head (msb positions
/// `SUB_BITS..=63`).
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total buckets: a linear head for values below [`SUB_BUCKETS`] plus
/// [`SUB_BUCKETS`] sub-buckets per group.
pub const BUCKETS: usize = SUB_BUCKETS + GROUPS * SUB_BUCKETS;

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`, and every `u64` maps in-range.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let top = 63 - value.leading_zeros(); // msb position, >= SUB_BITS
    let group = (top - SUB_BITS) as usize;
    let sub = (value >> (top - SUB_BITS)) as usize - SUB_BUCKETS;
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket — the value quantile extraction
/// reports, so reported quantiles never *under*-state a latency.
fn bucket_high(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    let width = 1u64 << group;
    let low = ((SUB_BUCKETS + sub) as u64) << group;
    low + (width - 1)
}

/// A fixed-memory log-bucketed histogram of `u64` values (nanoseconds
/// by convention).
///
/// # Example
/// ```
/// use psc_service::telemetry::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.50);
/// // Bounded relative error: the reported quantile never understates
/// // and overstates by at most one sub-bucket width (~3%).
/// assert!((500..=516).contains(&p50));
/// ```
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    /// Exact extrema and total, tracked beside the buckets so `min`/
    /// `max`/`mean` carry no bucketing error.
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("BUCKETS length"),
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Records a duration as saturating nanoseconds.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty). Exact.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty). Exact.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty). Exact.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`.
    ///
    /// Semantics: the reported value is an upper bound for the
    /// `ceil(q · count)`-th smallest recorded value (rank statistics, no
    /// interpolation), clamped to the exact recorded maximum. It never
    /// understates the true quantile and overstates it by at most one
    /// sub-bucket width — a relative error bounded by `1/32` (~3.1%).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one. Equivalent to having
    /// recorded both histograms' values into one (the property tests
    /// assert this bucket-exactly).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Bucket-level equality (used by the merge-equivalence tests).
    pub fn same_distribution(&self, other: &LogHistogram) -> bool {
        self.count == other.count
            && self.min == other.min
            && self.max == other.max
            && self.sum == other.sum
            && self.counts[..] == other.counts[..]
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl fmt::Display for LogHistogram {
    /// Operator-facing one-liner: count plus the quantile ladder, in
    /// human units.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "no samples");
        }
        write!(
            f,
            "n={} p50={} p90={} p99={} p999={} max={}",
            self.count,
            Nanos(self.quantile(0.50)),
            Nanos(self.quantile(0.90)),
            Nanos(self.quantile(0.99)),
            Nanos(self.quantile(0.999)),
            Nanos(self.max()),
        )
    }
}

/// Nanoseconds pretty-printed at a human scale (`ns`/`µs`/`ms`/`s`).
pub struct Nanos(pub u64);

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v < 1_000 {
            write!(f, "{v}ns")
        } else if v < 1_000_000 {
            write!(f, "{:.1}µs", v as f64 / 1e3)
        } else if v < 1_000_000_000 {
            write!(f, "{:.2}ms", v as f64 / 1e6)
        } else {
            write!(f, "{:.2}s", v as f64 / 1e9)
        }
    }
}

/// The same bucket layout with relaxed-atomic counters, for stages
/// recorded concurrently from many threads (router and reactor stages).
///
/// Recording is one `fetch_add` on the bucket plus relaxed updates of
/// the extrema — lock-free and wait-free; [`snapshot`](Self::snapshot)
/// produces a plain [`LogHistogram`] for merging and quantile
/// extraction. A snapshot taken while writers are racing is *per-field*
/// consistent (each counter is atomically read) rather than a frozen
/// point in time, which is the same contract the rest of the metrics
/// scrapes already offer.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Sum of recorded nanoseconds; wraps only after ~584 years of
    /// cumulative recorded latency, which no scrape cadence observes.
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (relaxed ordering; counters are monotone and
    /// scrapes tolerate in-flight racers).
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as saturating nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A plain copy for merging and quantile extraction.
    pub fn snapshot(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed) as u128;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            1_000_000,
            u64::from(u32::MAX),
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotone at {v}");
            assert!(bucket_high(i) >= v, "bucket high below its own value");
            last = i;
        }
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        // Consecutive buckets abut exactly: high(i) + 1 is in bucket i+1.
        for i in 0..BUCKETS - 1 {
            let hi = bucket_high(i);
            if hi == u64::MAX {
                break;
            }
            assert_eq!(bucket_index(hi), i, "high({i}) maps back to {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "buckets abut at {i}");
        }
    }

    #[test]
    fn quantiles_bound_exact_ranks() {
        let mut h = LogHistogram::new();
        let mut values: Vec<u64> = (0..4_000u64).map(|i| (i * i * 7) % 1_000_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank];
            let reported = h.quantile(q);
            assert!(reported >= exact, "q={q}: {reported} < exact {exact}");
            assert!(
                reported <= exact + exact / 32 + 1,
                "q={q}: {reported} exceeds bound over {exact}"
            );
        }
        assert_eq!(h.min(), values[0]);
        assert_eq!(h.max(), *values.last().unwrap());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.to_string(), "no samples");
    }

    #[test]
    fn merge_equals_record_all() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 10_000;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert!(a.same_distribution(&all));
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        // Values stay within the atomic sum's u64 range (its documented
        // limit: cumulative recorded time, not single-value headroom).
        let atomic = AtomicHistogram::new();
        let mut plain = LogHistogram::new();
        for v in [0u64, 5, 90, 4_096, 1 << 40, 1 << 62] {
            atomic.record(v);
            plain.record(v);
        }
        assert!(atomic.snapshot().same_distribution(&plain));
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(Nanos(12).to_string(), "12ns");
        assert_eq!(Nanos(4_500).to_string(), "4.5µs");
        assert_eq!(Nanos(12_300_000).to_string(), "12.30ms");
        assert_eq!(Nanos(2_000_000_000).to_string(), "2.00s");
    }
}
