//! Per-shard and service-wide metrics, modeled on `psc_broker::metrics`.
//!
//! Each shard worker owns its counters and reports them on demand through a
//! `ShardCommand::Scrape` message, so scraping never takes a
//! lock on the hot path. [`ServiceMetrics`] is the merged view a `stats`
//! wire request returns.

use psc_model::wire::{Json, PlacementStats, SummaryStats, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Counters owned by one shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Subscriptions admitted into the shard's store.
    pub subscriptions_ingested: u64,
    /// Admitted subscriptions that were parked as covered (suppressed from
    /// the active matching set).
    pub subscriptions_suppressed: u64,
    /// Subscriptions rejected on admission (duplicate id).
    pub subscriptions_rejected: u64,
    /// Subscriptions the shard rebooted with, rebuilt from its snapshot
    /// and write-ahead log (0 when storage is not configured).
    pub subscriptions_recovered: u64,
    /// Unsubscriptions that removed a stored subscription.
    pub unsubscriptions: u64,
    /// Admission batches processed.
    pub batches_admitted: u64,
    /// Records appended to the shard's write-ahead log since boot.
    pub wal_records_appended: u64,
    /// Snapshots written by the background writer since boot.
    pub snapshots_written: u64,
    /// Storage operations that failed (the shard keeps serving from
    /// memory; durability is degraded until appends succeed again).
    pub storage_errors: u64,
    /// Bytes truncated off the write-ahead log's tail at boot. After a
    /// crash mid-append this is at most one record (the torn tail);
    /// anything larger indicates mid-log damage whose later records were
    /// lost with it.
    pub wal_truncated_bytes: u64,
    /// Commit groups completed (each at most one fsync under
    /// `FsyncPolicy::Always`); `wal_records_appended / wal_group_commits`
    /// is the realized group-commit amortization.
    pub wal_group_commits: u64,
    /// Log segment rotations since boot.
    pub wal_segments_rotated: u64,
    /// Snapshot-covered log segments deleted since boot (including
    /// leftovers of an interrupted prune removed at open).
    pub wal_segments_pruned: u64,
    /// Publications matched by this shard. Without content-aware routing
    /// every shard observes every publication, so aggregates merge this
    /// by max, not sum; with routing enabled, pruned publishes never
    /// reach the shard, so the max is the *busiest* shard's count and may
    /// undercount total publishes — true totals live in the router-side
    /// [`ServiceMetrics::publications_total`]. At quiescence every shard
    /// satisfies `publications_processed + shards_pruned ==
    /// publications_total` (each publication either visits a shard or is
    /// pruned for it).
    pub publications_processed: u64,
    /// Publish fan-outs that skipped this shard because its routing
    /// summary proved nothing here could match (router-side counter; sums
    /// across shards in aggregates).
    pub shards_pruned: u64,
    /// Routing-summary health: epoch of the published snapshot, full
    /// rebuilds, and unsubscriptions absorbed since the last rebuild.
    pub summary: SummaryStats,
    /// Local subscription matches produced across all publications.
    pub notifications: u64,
    /// Currently active (uncovered) subscriptions.
    pub active_subscriptions: u64,
    /// Currently covered (parked) subscriptions.
    pub covered_subscriptions: u64,
    /// Phase-1 probes: publication tests against the active set.
    pub phase1_probes: u64,
    /// Phase-2 probes: publication tests against the covered pool.
    pub phase2_probes: u64,
    /// Covered entries skipped by parent gating.
    pub phase2_probes_skipped: u64,
    /// Publications for which phase 2 was skipped wholesale.
    pub phase2_wholesale_skips: u64,
    /// Seconds since the shard worker started (at scrape time).
    pub uptime_secs: f64,
}

impl ShardMetrics {
    /// Fraction of ingested subscriptions suppressed from the active set.
    pub fn suppression_ratio(&self) -> f64 {
        if self.subscriptions_ingested == 0 {
            0.0
        } else {
            self.subscriptions_suppressed as f64 / self.subscriptions_ingested as f64
        }
    }

    /// Subscriptions admitted per second of shard uptime.
    pub fn ingest_rate(&self) -> f64 {
        if self.uptime_secs <= 0.0 {
            0.0
        } else {
            self.subscriptions_ingested as f64 / self.uptime_secs
        }
    }

    /// Encodes as a JSON object for the wire `stats` response.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = [
            ("ingested", Json::UInt(self.subscriptions_ingested)),
            ("suppressed", Json::UInt(self.subscriptions_suppressed)),
            ("rejected", Json::UInt(self.subscriptions_rejected)),
            ("recovered", Json::UInt(self.subscriptions_recovered)),
            ("unsubscribed", Json::UInt(self.unsubscriptions)),
            ("batches", Json::UInt(self.batches_admitted)),
            ("wal_records", Json::UInt(self.wal_records_appended)),
            ("snapshots", Json::UInt(self.snapshots_written)),
            ("storage_errors", Json::UInt(self.storage_errors)),
            ("wal_truncated", Json::UInt(self.wal_truncated_bytes)),
            ("group_commits", Json::UInt(self.wal_group_commits)),
            ("segments_rotated", Json::UInt(self.wal_segments_rotated)),
            ("segments_pruned", Json::UInt(self.wal_segments_pruned)),
            ("publications", Json::UInt(self.publications_processed)),
            ("shards_pruned", Json::UInt(self.shards_pruned)),
            ("notifications", Json::UInt(self.notifications)),
            ("active", Json::UInt(self.active_subscriptions)),
            ("covered", Json::UInt(self.covered_subscriptions)),
            ("phase1_probes", Json::UInt(self.phase1_probes)),
            ("phase2_probes", Json::UInt(self.phase2_probes)),
            ("phase2_skipped", Json::UInt(self.phase2_probes_skipped)),
            (
                "phase2_wholesale_skips",
                Json::UInt(self.phase2_wholesale_skips),
            ),
            ("uptime_secs", Json::Float(self.uptime_secs)),
            ("suppression_ratio", Json::Float(self.suppression_ratio())),
            ("ingest_rate", Json::Float(self.ingest_rate())),
        ]
        .map(|(key, value)| (key.to_string(), value))
        .into();
        // The routing-summary counters flatten into the same object
        // (`summary_epoch` / `summary_rebuilds` / `summary_staleness`).
        pairs.extend(self.summary.to_json_fields());
        Json::Obj(pairs)
    }

    /// Decodes from the wire `stats` response.
    ///
    /// Version-skew policy: the original counter set (present since the
    /// first release of the protocol) is required — its absence means the
    /// payload is not a shard metrics object at all — while every counter
    /// added later (the storage counters, the routing keys, and anything
    /// newer) is decode-optional with a zero default, so scraping an
    /// older peer degrades to zeros instead of erroring out the whole
    /// `stats` response.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let field = |key: &str| -> Result<u64, WireError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::Shape(format!("shard metrics missing \"{key}\"")))
        };
        // Counters newer than the original protocol (storage: `recovered`
        // / `wal_records` / `snapshots` / `storage_errors` /
        // `wal_truncated`; routing: `shards_pruned` + summary keys)
        // default to zero when absent.
        let optional = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok(ShardMetrics {
            subscriptions_ingested: field("ingested")?,
            subscriptions_suppressed: field("suppressed")?,
            subscriptions_rejected: field("rejected")?,
            subscriptions_recovered: optional("recovered"),
            unsubscriptions: field("unsubscribed")?,
            batches_admitted: field("batches")?,
            wal_records_appended: optional("wal_records"),
            snapshots_written: optional("snapshots"),
            storage_errors: optional("storage_errors"),
            wal_truncated_bytes: optional("wal_truncated"),
            wal_group_commits: optional("group_commits"),
            wal_segments_rotated: optional("segments_rotated"),
            wal_segments_pruned: optional("segments_pruned"),
            publications_processed: field("publications")?,
            shards_pruned: optional("shards_pruned"),
            summary: SummaryStats::from_json(value),
            notifications: field("notifications")?,
            active_subscriptions: field("active")?,
            covered_subscriptions: field("covered")?,
            phase1_probes: field("phase1_probes")?,
            phase2_probes: field("phase2_probes")?,
            phase2_probes_skipped: field("phase2_skipped")?,
            phase2_wholesale_skips: field("phase2_wholesale_skips")?,
            uptime_secs: value
                .get("uptime_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| WireError::Shape("shard metrics missing \"uptime_secs\"".into()))?,
        })
    }
}

impl AddAssign for ShardMetrics {
    fn add_assign(&mut self, rhs: ShardMetrics) {
        self.subscriptions_ingested += rhs.subscriptions_ingested;
        self.subscriptions_suppressed += rhs.subscriptions_suppressed;
        self.subscriptions_rejected += rhs.subscriptions_rejected;
        self.subscriptions_recovered += rhs.subscriptions_recovered;
        self.unsubscriptions += rhs.unsubscriptions;
        self.batches_admitted += rhs.batches_admitted;
        self.wal_records_appended += rhs.wal_records_appended;
        self.snapshots_written += rhs.snapshots_written;
        self.storage_errors += rhs.storage_errors;
        self.wal_truncated_bytes += rhs.wal_truncated_bytes;
        self.wal_group_commits += rhs.wal_group_commits;
        self.wal_segments_rotated += rhs.wal_segments_rotated;
        self.wal_segments_pruned += rhs.wal_segments_pruned;
        // Every visited shard observes the publication, so summing would
        // count it once per shard; like uptime, take the max (with routing
        // enabled this is the busiest shard's count).
        self.publications_processed = self.publications_processed.max(rhs.publications_processed);
        self.shards_pruned += rhs.shards_pruned;
        // Epochs advance independently per shard: report the most-advanced
        // one; rebuilds and staleness sum like other counters.
        self.summary.epoch = self.summary.epoch.max(rhs.summary.epoch);
        self.summary.rebuilds += rhs.summary.rebuilds;
        self.summary.staleness += rhs.summary.staleness;
        self.summary.intervals += rhs.summary.intervals;
        // Staleness age is a "worst shard" signal, like uptime.
        self.summary.age_secs = self.summary.age_secs.max(rhs.summary.age_secs);
        self.notifications += rhs.notifications;
        self.active_subscriptions += rhs.active_subscriptions;
        self.covered_subscriptions += rhs.covered_subscriptions;
        self.phase1_probes += rhs.phase1_probes;
        self.phase2_probes += rhs.phase2_probes;
        self.phase2_probes_skipped += rhs.phase2_probes_skipped;
        self.phase2_wholesale_skips += rhs.phase2_wholesale_skips;
        self.uptime_secs = self.uptime_secs.max(rhs.uptime_secs);
    }
}

impl fmt::Display for ShardMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingested: {} (suppressed: {}, ratio {:.2}), recovered: {}, \
             active/covered: {}/{}, \
             pubs: {}, notifications: {}, probes p1/p2/skip: {}/{}/{}",
            self.subscriptions_ingested,
            self.subscriptions_suppressed,
            self.suppression_ratio(),
            self.subscriptions_recovered,
            self.active_subscriptions,
            self.covered_subscriptions,
            self.publications_processed,
            self.notifications,
            self.phase1_probes,
            self.phase2_probes,
            self.phase2_probes_skipped,
        )
    }
}

/// The merged metrics view of a whole service: one entry per shard plus
/// the router-side totals no shard can observe on its own.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceMetrics {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardMetrics>,
    /// Publications the router accepted, counted at publish ingress
    /// *before* routing prunes any shard visit. Under content-aware
    /// routing the per-shard `publications` counters merge by max and
    /// undercount (they see only unpruned visits); this is the true
    /// publish total, and at quiescence every shard satisfies
    /// `publications + shards_pruned == publications_total`.
    pub publications_total: u64,
    /// Router-side placement state: whether content-aware placement is
    /// on, how many id→shard directory entries are live, and how many
    /// placements diverged from the hash baseline.
    pub placement: PlacementStats,
}

impl ServiceMetrics {
    /// Sums every shard's counters (uptime and publications, which every
    /// shard observes in full, merge by max instead).
    pub fn totals(&self) -> ShardMetrics {
        let mut total = ShardMetrics::default();
        for shard in &self.shards {
            total += *shard;
        }
        total
    }

    /// Encodes as a JSON object for the wire `stats` response. The
    /// placement counters flatten into the same object
    /// (`placement_enabled` / `directory_entries` / `placement_moves`).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            (
                "shards".to_string(),
                Json::Arr(self.shards.iter().map(ShardMetrics::to_json).collect()),
            ),
            ("totals".to_string(), self.totals().to_json()),
            (
                "publications_total".to_string(),
                Json::UInt(self.publications_total),
            ),
        ];
        pairs.extend(self.placement.to_json_fields());
        Json::Obj(pairs)
    }

    /// Decodes from the wire `stats` response (`publications_total` and
    /// the placement keys are decode-optional: peers older than
    /// router-side publish counting or content-aware placement simply
    /// omit them).
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let shards = value
            .get("shards")
            .and_then(Json::as_array)
            .ok_or_else(|| WireError::Shape("service metrics missing \"shards\"".into()))?
            .iter()
            .map(ShardMetrics::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServiceMetrics {
            shards,
            publications_total: value
                .get("publications_total")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            placement: PlacementStats::from_json(value),
        })
    }
}

/// Counters of the readiness-based front-end (one reactor thread).
///
/// Shard metrics describe the matching engine; these describe the serving
/// edge — connection lifecycle and the protection policies (write-
/// backpressure disconnects, idle reaping, the connection cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReactorMetrics {
    /// Connections accepted since start (including ones later closed).
    pub connections_accepted: u64,
    /// Connections open right now.
    pub connections_current: u64,
    /// Accepts closed immediately because `max_connections` was reached.
    pub connections_rejected_at_cap: u64,
    /// Connections dropped for exceeding the write-backlog bound.
    pub slow_consumer_disconnects: u64,
    /// Connections reaped by the idle-timeout wheel.
    pub idle_disconnects: u64,
    /// Well-formed request lines served.
    pub requests_handled: u64,
    /// Request lines discarded for exceeding the line-length cap.
    pub oversized_lines: u64,
}

impl ReactorMetrics {
    /// Encodes as a JSON object for the wire `stats` response.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("accepted", Json::UInt(self.connections_accepted)),
            ("current", Json::UInt(self.connections_current)),
            (
                "rejected_at_cap",
                Json::UInt(self.connections_rejected_at_cap),
            ),
            ("slow_consumer", Json::UInt(self.slow_consumer_disconnects)),
            ("idle", Json::UInt(self.idle_disconnects)),
            ("requests", Json::UInt(self.requests_handled)),
            ("oversized_lines", Json::UInt(self.oversized_lines)),
        ])
    }

    /// Decodes from the wire `stats` response.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let field = |key: &str| -> Result<u64, WireError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::Shape(format!("reactor metrics missing \"{key}\"")))
        };
        Ok(ReactorMetrics {
            connections_accepted: field("accepted")?,
            connections_current: field("current")?,
            connections_rejected_at_cap: field("rejected_at_cap")?,
            slow_consumer_disconnects: field("slow_consumer")?,
            idle_disconnects: field("idle")?,
            requests_handled: field("requests")?,
            oversized_lines: field("oversized_lines")?,
        })
    }
}

impl fmt::Display for ReactorMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "connections: {} open / {} accepted ({} at-cap rejects), \
             disconnects slow/idle: {}/{}, requests: {} ({} oversized lines)",
            self.connections_current,
            self.connections_accepted,
            self.connections_rejected_at_cap,
            self.slow_consumer_disconnects,
            self.idle_disconnects,
            self.requests_handled,
            self.oversized_lines,
        )
    }
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service totals ({} publications routed): {}",
            self.publications_total,
            self.totals()
        )?;
        for (i, shard) in self.shards.iter().enumerate() {
            writeln!(f, "  shard {i}: {shard}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> ShardMetrics {
        ShardMetrics {
            subscriptions_ingested: 10 * i,
            subscriptions_suppressed: 4 * i,
            subscriptions_rejected: i,
            subscriptions_recovered: 2 * i,
            unsubscriptions: i,
            batches_admitted: 2 * i,
            wal_records_appended: 11 * i,
            snapshots_written: i,
            storage_errors: 0,
            wal_truncated_bytes: 3 * i,
            wal_group_commits: 5 * i,
            wal_segments_rotated: 2 * i,
            wal_segments_pruned: i,
            publications_processed: 5 * i,
            shards_pruned: 8 * i,
            summary: SummaryStats {
                epoch: 12 * i,
                rebuilds: i,
                staleness: 2 * i,
                intervals: 6 * i,
                age_secs: i as f64 / 2.0,
            },
            notifications: 7 * i,
            active_subscriptions: 3 * i,
            covered_subscriptions: 4 * i,
            phase1_probes: 30 * i,
            phase2_probes: 9 * i,
            phase2_probes_skipped: 6 * i,
            phase2_wholesale_skips: i,
            uptime_secs: i as f64,
        }
    }

    #[test]
    fn ratios() {
        let m = sample(2);
        assert!((m.suppression_ratio() - 0.4).abs() < 1e-12);
        assert!((m.ingest_rate() - 10.0).abs() < 1e-12);
        assert_eq!(ShardMetrics::default().suppression_ratio(), 0.0);
        assert_eq!(ShardMetrics::default().ingest_rate(), 0.0);
    }

    #[test]
    fn totals_sum_counters_and_max_uptime() {
        let svc = ServiceMetrics {
            shards: vec![sample(1), sample(3)],
            publications_total: 0,
            placement: PlacementStats::default(),
        };
        let t = svc.totals();
        assert_eq!(t.subscriptions_ingested, 40);
        assert_eq!(t.notifications, 28);
        // Fan-out counters merge by max: every shard saw all publications.
        assert_eq!(t.publications_processed, 15);
        assert_eq!(t.uptime_secs, 3.0);
        // Router-side prunes sum; summary epochs merge by max.
        assert_eq!(t.shards_pruned, 32);
        assert_eq!(t.summary.epoch, 36);
        assert_eq!(t.summary.rebuilds, 4);
        assert_eq!(t.summary.staleness, 8);
        // Interval counts sum; staleness age is worst-shard (max).
        assert_eq!(t.summary.intervals, 24);
        assert_eq!(t.summary.age_secs, 1.5);
    }

    #[test]
    fn json_round_trip() {
        let svc = ServiceMetrics {
            shards: vec![sample(1), sample(2)],
            publications_total: 23,
            placement: PlacementStats {
                enabled: true,
                directory_entries: 30,
                placement_moves: 12,
            },
        };
        let json = svc.to_json().to_string();
        let parsed = psc_model::wire::Json::parse(&json).unwrap();
        let back = ServiceMetrics::from_json(&parsed).unwrap();
        assert_eq!(back, svc);
    }

    #[test]
    fn newer_counters_decode_optional_for_version_skew() {
        // A shard object as an older (pre-storage, pre-routing,
        // pre-telemetry) peer emits it: only the original counter set.
        let old_peer = r#"{"ingested":5,"suppressed":1,"rejected":0,"unsubscribed":2,
            "batches":1,"publications":9,"notifications":4,"active":3,"covered":1,
            "phase1_probes":20,"phase2_probes":5,"phase2_skipped":2,
            "phase2_wholesale_skips":1,"uptime_secs":1.5}"#;
        let parsed = psc_model::wire::Json::parse(old_peer).unwrap();
        let m = ShardMetrics::from_json(&parsed).expect("older peer stats must decode");
        assert_eq!(m.subscriptions_ingested, 5);
        // Every newer counter degrades to zero instead of failing.
        assert_eq!(m.subscriptions_recovered, 0);
        assert_eq!(m.wal_records_appended, 0);
        assert_eq!(m.snapshots_written, 0);
        assert_eq!(m.storage_errors, 0);
        assert_eq!(m.wal_truncated_bytes, 0);
        assert_eq!(m.wal_group_commits, 0);
        assert_eq!(m.wal_segments_rotated, 0);
        assert_eq!(m.wal_segments_pruned, 0);
        assert_eq!(m.shards_pruned, 0);
        assert_eq!(m.summary, SummaryStats::default());
        // A genuinely required key still hard-fails: absence means this
        // is not a shard metrics object.
        let not_metrics = psc_model::wire::Json::parse(r#"{"uptime_secs":1.0}"#).unwrap();
        assert!(ShardMetrics::from_json(&not_metrics).is_err());
    }

    #[test]
    fn reactor_metrics_json_round_trip() {
        let m = ReactorMetrics {
            connections_accepted: 10,
            connections_current: 7,
            connections_rejected_at_cap: 1,
            slow_consumer_disconnects: 2,
            idle_disconnects: 3,
            requests_handled: 40,
            oversized_lines: 5,
        };
        let json = m.to_json().to_string();
        let parsed = psc_model::wire::Json::parse(&json).unwrap();
        assert_eq!(ReactorMetrics::from_json(&parsed).unwrap(), m);
        assert!(!m.to_string().is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ServiceMetrics {
            shards: vec![sample(1)],
            publications_total: 5,
            placement: PlacementStats::default(),
        }
        .to_string()
        .is_empty());
    }
}
