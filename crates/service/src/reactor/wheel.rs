//! A hashed timer wheel for idle-connection timeouts.
//!
//! Thousands of mostly-idle connections each carry one deadline that is
//! rescheduled on every request; a wheel makes both the reschedule and
//! the expiry sweep O(1) amortized, where a `BinaryHeap` would pay
//! O(log n) per touch and accumulate dead entries. Slots are coarse
//! buckets of one `tick` each; an entry lands in the slot of its deadline
//! tick and expires when the hand sweeps past it.

use std::collections::HashMap;
use std::os::unix::io::RawFd;
use std::time::{Duration, Instant};

/// The wheel. Deadlines are quantized to ticks of `timeout / 16`
/// (clamped to 5ms..=1s), so expiry fires within roughly one tick after
/// the configured timeout.
pub struct TimerWheel {
    tick: Duration,
    /// Slot → (fd → absolute deadline tick). Entries from a later lap sit
    /// in the same slot but carry a larger deadline and survive the sweep.
    slots: Vec<HashMap<RawFd, u64>>,
    /// fd → slot index, for O(1) cancel/touch.
    positions: HashMap<RawFd, usize>,
    /// Absolute tick the hand has swept through.
    hand: u64,
    epoch: Instant,
}

impl TimerWheel {
    /// A wheel sized for deadlines around `timeout`.
    pub fn new(timeout: Duration, now: Instant) -> TimerWheel {
        let tick = (timeout / 16).clamp(Duration::from_millis(5), Duration::from_secs(1));
        // Enough slots that a fresh deadline never laps the hand.
        let span = Self::ticks(timeout, tick) as usize + 2;
        TimerWheel {
            tick,
            slots: vec![HashMap::new(); span],
            positions: HashMap::new(),
            hand: 0,
            epoch: now,
        }
    }

    fn ticks(d: Duration, tick: Duration) -> u64 {
        (d.as_nanos().div_ceil(tick.as_nanos().max(1))).min(u64::MAX as u128) as u64
    }

    fn tick_of(&self, at: Instant) -> u64 {
        Self::ticks(at.saturating_duration_since(self.epoch), self.tick)
    }

    /// Schedules (or reschedules) `fd` to expire `timeout` after `now`.
    pub fn touch(&mut self, fd: RawFd, timeout: Duration, now: Instant) {
        self.cancel(fd);
        // +1 guards quantization: expiry must never fire early.
        let deadline = self.tick_of(now) + Self::ticks(timeout, self.tick) + 1;
        let slot = (deadline % self.slots.len() as u64) as usize;
        self.slots[slot].insert(fd, deadline);
        self.positions.insert(fd, slot);
    }

    /// Removes `fd`'s deadline, if any.
    pub fn cancel(&mut self, fd: RawFd) {
        if let Some(slot) = self.positions.remove(&fd) {
            self.slots[slot].remove(&fd);
        }
    }

    /// How long the poller may sleep before the wheel needs a sweep.
    /// `None` when no deadline is armed.
    pub fn poll_timeout(&self) -> Option<Duration> {
        if self.positions.is_empty() {
            None
        } else {
            Some(self.tick)
        }
    }

    /// Sweeps the hand forward to `now`, returning every expired fd.
    pub fn expired(&mut self, now: Instant) -> Vec<RawFd> {
        let target = self.tick_of(now);
        let mut out = Vec::new();
        // One full revolution visits every slot, so cap the walk there even
        // if the reactor slept for many ticks.
        let steps = target
            .saturating_sub(self.hand)
            .min(self.slots.len() as u64);
        for _ in 0..steps {
            self.hand += 1;
            let idx = (self.hand % self.slots.len() as u64) as usize;
            let slot = &mut self.slots[idx];
            if slot.is_empty() {
                continue;
            }
            slot.retain(|&fd, &mut deadline| {
                if deadline <= target {
                    out.push(fd);
                    false
                } else {
                    true // a later lap's entry: not due yet
                }
            });
        }
        self.hand = target;
        for fd in &out {
            self.positions.remove(fd);
        }
        out
    }

    /// Number of armed deadlines (test observability).
    #[cfg(test)]
    pub fn armed(&self) -> usize {
        self.positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMEOUT: Duration = Duration::from_millis(160); // tick = 10ms

    #[test]
    fn entries_expire_after_timeout_not_before() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TIMEOUT, start);
        wheel.touch(3, TIMEOUT, start);
        wheel.touch(4, TIMEOUT, start);
        assert!(wheel.expired(start + Duration::from_millis(100)).is_empty());
        let mut due = wheel.expired(start + Duration::from_millis(400));
        due.sort_unstable();
        assert_eq!(due, vec![3, 4]);
        assert_eq!(wheel.armed(), 0);
        assert!(wheel.poll_timeout().is_none());
    }

    #[test]
    fn touch_postpones_expiry() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TIMEOUT, start);
        wheel.touch(7, TIMEOUT, start);
        // Activity just before the deadline pushes it a full timeout out.
        let active_at = start + Duration::from_millis(150);
        wheel.touch(7, TIMEOUT, active_at);
        assert!(wheel.expired(start + Duration::from_millis(250)).is_empty());
        assert_eq!(wheel.expired(start + Duration::from_millis(500)), vec![7]);
    }

    #[test]
    fn cancel_removes_the_deadline() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TIMEOUT, start);
        wheel.touch(9, TIMEOUT, start);
        wheel.cancel(9);
        assert!(wheel.expired(start + Duration::from_secs(10)).is_empty());
    }

    #[test]
    fn long_sleep_sweeps_every_slot_once() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TIMEOUT, start);
        for fd in 0..50 {
            wheel.touch(fd, TIMEOUT, start + Duration::from_millis(fd as u64));
        }
        // The reactor slept way past every deadline (many laps).
        let due = wheel.expired(start + Duration::from_secs(3600));
        assert_eq!(due.len(), 50);
    }
}
