//! Raw Linux syscall bindings for the reactor.
//!
//! The build environment has no crates.io access, so there is no `mio` or
//! `libc` to lean on; this module declares the handful of `extern "C"`
//! symbols the event loop needs — `epoll_create1` / `epoll_ctl` /
//! `epoll_wait`, `fcntl`, and a `pipe` for cross-thread wakeups — and
//! wraps each in a safe, `io::Result`-returning function. All unsafe code
//! in `psc-service` lives in this file; everything above it (the poller,
//! the connection state machines, the event loop) is safe Rust over these
//! wrappers.
//!
//! Linux-only by design: the ROADMAP's follow-on is to swap this layer
//! for tokio (or mio) once registry access exists, which would bring
//! portability for free.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;

/// The fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// The fd can accept bytes.
pub const EPOLLOUT: u32 = 0x004;
/// The fd is in an error state.
pub const EPOLLERR: u32 = 0x008;
/// The peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (half-close shows up as readable EOF).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change a registration's interest.
pub const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const F_SETFD: c_int = 2;
const FD_CLOEXEC: c_int = 1;
const O_NONBLOCK: c_int = 0o4000;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (12 bytes); other architectures use natural alignment.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLL*` constants).
    pub events: u32,
    /// User data; the reactor stores the fd here.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds/modifies/deletes interest in `fd`; `data` rides back on events.
pub fn epoll_control(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data };
    // DEL ignores the event argument; passing a valid pointer is always safe.
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut event) })?;
    Ok(())
}

/// Blocks for readiness events, retrying on `EINTR`. `timeout_ms < 0`
/// blocks indefinitely. Returns how many entries of `events` were filled.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        let n = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

/// Marks `fd` non-blocking (and close-on-exec) via `fcntl`.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    cvt(unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) })?;
    Ok(())
}

/// Creates a `(read_end, write_end)` pipe with both ends non-blocking —
/// the reactor's cross-thread wakeup channel.
pub fn wake_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as c_int; 2];
    cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
    for &fd in &fds {
        if let Err(e) = set_nonblocking(fd) {
            close_fd(fds[0]);
            close_fd(fds[1]);
            return Err(e);
        }
    }
    Ok((fds[0], fds[1]))
}

/// Closes a raw fd, ignoring errors (used in drops and error paths).
pub fn close_fd(fd: RawFd) {
    unsafe {
        let _ = close(fd);
    }
}

/// Reads into `buf`; `Ok(None)` means the fd has nothing right now
/// (`EAGAIN`).
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<Option<usize>> {
    loop {
        let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
        if n >= 0 {
            return Ok(Some(n as usize));
        }
        let err = io::Error::last_os_error();
        match err.raw_os_error() {
            Some(EAGAIN) => return Ok(None),
            Some(EINTR) => continue,
            _ => return Err(err),
        }
    }
}

/// Writes `buf`; `Ok(None)` means the fd cannot take bytes right now
/// (`EAGAIN`).
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<Option<usize>> {
    loop {
        let n = unsafe { write(fd, buf.as_ptr() as *const c_void, buf.len()) };
        if n >= 0 {
            return Ok(Some(n as usize));
        }
        let err = io::Error::last_os_error();
        match err.raw_os_error() {
            Some(EAGAIN) => return Ok(None),
            Some(EINTR) => continue,
            _ => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_round_trips_a_byte() {
        let (r, w) = wake_pipe().expect("pipe");
        assert_eq!(read_fd(r, &mut [0u8; 8]).expect("read"), None, "empty");
        assert_eq!(write_fd(w, b"x").expect("write"), Some(1));
        let mut buf = [0u8; 8];
        assert_eq!(read_fd(r, &mut buf).expect("read"), Some(1));
        assert_eq!(buf[0], b'x');
        close_fd(r);
        close_fd(w);
    }

    #[test]
    fn epoll_reports_pipe_readability() {
        let epfd = epoll_create().expect("epoll_create1");
        let (r, w) = wake_pipe().expect("pipe");
        epoll_control(epfd, EPOLL_CTL_ADD, r, EPOLLIN, r as u64).expect("ctl add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(
            epoll_wait_events(epfd, &mut events, 0).expect("wait"),
            0,
            "nothing readable yet"
        );
        write_fd(w, b"!")
            .expect("write")
            .expect("pipe takes a byte");
        let n = epoll_wait_events(epfd, &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, r as u64);
        close_fd(r);
        close_fd(w);
        close_fd(epfd);
    }
}
