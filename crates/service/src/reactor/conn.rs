//! Per-connection state for the reactor: a non-blocking stream, an
//! incremental line framer on the read side, and a bounded backlog of
//! unsent response bytes on the write side.

use psc_model::wire::{Frame, LineFramer};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Outcome of draining a readable socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// More bytes may arrive later.
    Open,
    /// The peer closed (EOF) — finish pending frames, flush, then drop.
    PeerClosed,
    /// The socket errored — drop immediately.
    Errored,
}

/// Cap on bytes consumed from one connection per readiness event, so a
/// client streaming a firehose cannot starve its neighbours; level-
/// triggered epoll re-reports the fd on the next loop iteration.
const MAX_BYTES_PER_EVENT: usize = 256 * 1024;

/// One client connection owned by the reactor thread.
pub struct Connection {
    stream: TcpStream,
    framer: LineFramer,
    /// Unsent response bytes; `out_pos` marks how far flushing got.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Whether the poller registration currently includes writability.
    pub writable_registered: bool,
    /// Peer half-closed with responses still queued: write-only until the
    /// backlog empties, then close.
    pub draining: bool,
}

impl Connection {
    /// Wraps an accepted (already non-blocking) stream.
    pub fn new(stream: TcpStream, max_line_bytes: usize) -> Connection {
        Connection {
            stream,
            framer: LineFramer::new(max_line_bytes),
            outbuf: Vec::new(),
            out_pos: 0,
            writable_registered: false,
            draining: false,
        }
    }

    /// Reads whatever the socket has (up to the per-event cap) into the
    /// framer.
    pub fn read_ready(&mut self) -> ReadStatus {
        let mut buf = [0u8; 16 * 1024];
        let mut consumed = 0;
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF: whatever trailed without a newline is the last
                    // request (matches the old blocking front-end).
                    self.framer.finish();
                    return ReadStatus::PeerClosed;
                }
                Ok(n) => {
                    self.framer.feed(&buf[..n]);
                    consumed += n;
                    if consumed >= MAX_BYTES_PER_EVENT {
                        return ReadStatus::Open;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStatus::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadStatus::Errored,
            }
        }
    }

    /// The next fully framed request, if any.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.framer.next_frame()
    }

    /// Queues one response line (newline appended) for sending.
    pub fn queue_line(&mut self, line: &str) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    /// Bytes queued but not yet accepted by the socket — the quantity the
    /// slow-consumer policy bounds.
    pub fn backlog(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    /// Whether the poller should watch for writability.
    pub fn wants_write(&self) -> bool {
        self.backlog() > 0
    }

    /// Writes queued bytes until the socket blocks or the queue empties.
    /// An `Err` means the connection is dead.
    pub fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos >= 64 * 1024 {
            // Reclaim the flushed prefix so a long-lived connection's
            // buffer doesn't grow monotonically.
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }
}
