//! Per-connection state for the reactor: a non-blocking stream, an
//! incremental framer on the read side (JSON lines by default, binary
//! frames after a preamble sniff), and a bounded backlog of unsent
//! response bytes on the write side.

use psc_model::codec::{BinFrame, BinaryFramer, BINARY_PREAMBLE};
use psc_model::wire::{Frame, LineFramer};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Outcome of draining a readable socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// More bytes may arrive later.
    Open,
    /// The peer closed (EOF) — finish pending frames, flush, then drop.
    PeerClosed,
    /// The socket errored (or sent a malformed preamble) — drop
    /// immediately.
    Errored,
}

/// Cap on bytes consumed from one connection per readiness event, so a
/// client streaming a firehose cannot starve its neighbours; level-
/// triggered epoll re-reports the fd on the next loop iteration.
const MAX_BYTES_PER_EVENT: usize = 256 * 1024;

/// The connection's protocol state machine. Every connection starts in
/// `Sniff`: the first byte decides the protocol for the connection's
/// whole lifetime. [`BINARY_PREAMBLE`]'s leading byte can never begin a
/// JSON request line, so the decision needs exactly one byte — the full
/// five-byte preamble is then verified before binary framing engages.
enum Framing {
    /// Waiting for enough bytes to decide the protocol.
    Sniff {
        /// Preamble bytes collected so far (only while the first byte
        /// matched the binary tag).
        preamble: [u8; BINARY_PREAMBLE.len()],
        /// How many of `preamble` are filled.
        have: usize,
    },
    /// Line-delimited JSON (the default and debuggability path).
    Json(LineFramer),
    /// Length-prefixed binary frames.
    Binary(BinaryFramer),
}

/// One framed request unit, tagged with the connection's protocol so
/// the serving layer answers in kind.
pub enum ConnFrame<'a> {
    /// A complete JSON request line.
    JsonLine(String),
    /// A JSON line that exceeded the frame cap mid-stream.
    JsonTooLong {
        /// Bytes the line had reached when it was cut off.
        len: usize,
    },
    /// A complete binary frame payload, borrowed from the framer's
    /// buffer — decode before pulling the next frame.
    Binary(&'a [u8]),
    /// A binary frame whose header declared more than the cap.
    BinaryTooLong {
        /// Payload length the oversized header declared.
        len: usize,
    },
}

/// What the preamble sniff decided after a read.
enum SniffDecision {
    /// Still collecting preamble bytes (or already decided earlier).
    Undecided,
    /// First byte is not the binary tag: JSON, feed from byte zero.
    Json,
    /// Full preamble matched: binary, feed from past the preamble.
    Binary,
    /// First byte was the binary tag but the rest mismatched.
    Malformed,
}

/// One client connection owned by the reactor thread.
pub struct Connection {
    stream: TcpStream,
    framing: Framing,
    /// Pooled read buffer, sized once from `read_buffer_bytes` and
    /// reused for every read on this connection.
    read_buf: Vec<u8>,
    /// Unsent response bytes; `out_pos` marks how far flushing got.
    outbuf: Vec<u8>,
    out_pos: usize,
    max_frame_bytes: usize,
    /// Whether the poller registration currently includes writability.
    pub writable_registered: bool,
    /// Peer half-closed with responses still queued: write-only until the
    /// backlog empties, then close.
    pub draining: bool,
}

impl Connection {
    /// Wraps an accepted (already non-blocking) stream. `read_buffer_bytes`
    /// sizes the pooled read buffer; `write_buffer_bytes` pre-allocates
    /// the response backlog so steady-state responses never reallocate.
    pub fn new(
        stream: TcpStream,
        max_frame_bytes: usize,
        read_buffer_bytes: usize,
        write_buffer_bytes: usize,
    ) -> Connection {
        Connection {
            stream,
            framing: Framing::Sniff {
                preamble: [0; BINARY_PREAMBLE.len()],
                have: 0,
            },
            read_buf: vec![0; read_buffer_bytes.max(1)],
            outbuf: Vec::with_capacity(write_buffer_bytes),
            out_pos: 0,
            max_frame_bytes,
            writable_registered: false,
            draining: false,
        }
    }

    /// Reads whatever the socket has (up to the per-event cap) into the
    /// active framer, sniffing the protocol on the first bytes.
    pub fn read_ready(&mut self) -> ReadStatus {
        let mut consumed = 0;
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    // EOF: a trailing JSON line without a newline is the
                    // last request (matches the old blocking front-end);
                    // a trailing partial binary frame is truncation and
                    // is dropped.
                    if let Framing::Json(framer) = &mut self.framing {
                        framer.finish();
                    }
                    return ReadStatus::PeerClosed;
                }
                Ok(n) => {
                    if !self.ingest(n) {
                        return ReadStatus::Errored;
                    }
                    consumed += n;
                    if consumed >= MAX_BYTES_PER_EVENT {
                        return ReadStatus::Open;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStatus::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadStatus::Errored,
            }
        }
    }

    /// Routes `read_buf[..n]` into the framer, deciding the protocol
    /// first if this connection is still in the sniff state. Returns
    /// `false` when the peer sent a malformed binary preamble.
    fn ingest(&mut self, n: usize) -> bool {
        let mut offset = 0;
        let mut decision = SniffDecision::Undecided;
        if let Framing::Sniff { preamble, have } = &mut self.framing {
            if *have == 0 && self.read_buf[0] != BINARY_PREAMBLE[0] {
                decision = SniffDecision::Json;
            } else {
                while *have < BINARY_PREAMBLE.len() && offset < n {
                    preamble[*have] = self.read_buf[offset];
                    *have += 1;
                    offset += 1;
                }
                if *have < BINARY_PREAMBLE.len() {
                    return true; // preamble split across reads: wait
                }
                decision = if *preamble == BINARY_PREAMBLE {
                    SniffDecision::Binary
                } else {
                    SniffDecision::Malformed
                };
            }
        }
        match decision {
            SniffDecision::Undecided => {}
            SniffDecision::Json => {
                self.framing = Framing::Json(LineFramer::new(self.max_frame_bytes));
            }
            SniffDecision::Binary => {
                self.framing = Framing::Binary(BinaryFramer::new(self.max_frame_bytes));
                // Acknowledge the negotiation: the Ready frame is the
                // first frame on every binary connection.
                crate::wire::encode_ready_frame(&mut self.outbuf);
            }
            SniffDecision::Malformed => return false,
        }
        match &mut self.framing {
            Framing::Json(framer) => framer.feed(&self.read_buf[offset..n]),
            Framing::Binary(framer) => framer.feed(&self.read_buf[offset..n]),
            Framing::Sniff { .. } => unreachable!("sniff resolved above"),
        }
        true
    }

    /// Pops the next framed request and hands it to `serve` together
    /// with the connection's write buffer (responses append straight to
    /// the wire backlog — no intermediate allocation). Returns `None`
    /// when no frame is ready.
    pub fn serve_next<R>(
        &mut self,
        serve: impl FnOnce(ConnFrame<'_>, &mut Vec<u8>) -> R,
    ) -> Option<R> {
        match &mut self.framing {
            Framing::Sniff { .. } => None,
            Framing::Json(framer) => {
                let frame = match framer.next_frame()? {
                    Frame::Line(line) => ConnFrame::JsonLine(line),
                    Frame::TooLong { len } => ConnFrame::JsonTooLong { len },
                };
                Some(serve(frame, &mut self.outbuf))
            }
            Framing::Binary(framer) => {
                let frame = match framer.next_frame()? {
                    BinFrame::Frame(payload) => ConnFrame::Binary(payload),
                    BinFrame::TooLong { len } => ConnFrame::BinaryTooLong { len },
                };
                Some(serve(frame, &mut self.outbuf))
            }
        }
    }

    /// Direct access to the write backlog, for responses produced after
    /// the frame loop ends (the reactor drains its pending publish batch
    /// into the connection once no more frames are ready).
    pub fn outbuf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.outbuf
    }

    /// Bytes queued but not yet accepted by the socket — the quantity the
    /// slow-consumer policy bounds.
    pub fn backlog(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    /// Whether the poller should watch for writability.
    pub fn wants_write(&self) -> bool {
        self.backlog() > 0
    }

    /// Writes queued bytes until the socket blocks or the queue empties.
    /// An `Err` means the connection is dead.
    pub fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.outbuf.len() {
            // Fully drained: reset in place, keeping the pooled capacity.
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos >= 64 * 1024 {
            // Reclaim the flushed prefix so a long-lived connection's
            // buffer doesn't grow monotonically.
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }
}
