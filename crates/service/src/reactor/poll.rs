//! Safe readiness-polling wrappers over the raw epoll bindings.
//!
//! [`Poller`] owns the epoll fd and exposes add/modify/delete/wait;
//! [`WakePipe`] is the cross-thread wakeup channel `ServiceServer::stop`
//! uses to interrupt a blocked `epoll_wait` without connecting a socket.

use super::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness a registration cares about. Level-triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd can take more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Write-only interest — a half-closed connection draining its
    /// response backlog. Deliberately excludes `EPOLLRDHUP`: the peer's
    /// half-close already happened, and level-triggered RDHUP with nobody
    /// reading would re-fire on every wait.
    pub const WRITE_ONLY: Interest = Interest {
        readable: false,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness event, translated out of the raw bitmask.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The fd the event is about (stored in the epoll user data).
    pub fd: RawFd,
    /// Readable — includes EOF, peer hangup, and error conditions, so a
    /// follow-up `read` observes them.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    /// Registers `fd` with the given interest.
    pub fn add(&self, fd: RawFd, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            interest.bits(),
            fd as u64,
        )
    }

    /// Changes the interest of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            interest.bits(),
            fd as u64,
        )
    }

    /// Deregisters `fd`. Errors are ignored: the fd is about to be closed,
    /// which removes it from the epoll set anyway.
    pub fn delete(&self, fd: RawFd) {
        let _ = sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until readiness (or `timeout`, or a wakeup), appending the
    /// translated events to `out`.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            // Round up so a 1.4ms timer does not busy-spin at 0ms waits.
            Some(t) => t.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
            None => -1,
        };
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 1024];
        let n = sys::epoll_wait_events(self.epfd, &mut events, timeout_ms)?;
        for event in &events[..n] {
            // Copy out of the (packed) struct before using the fields.
            let bits = event.events;
            let data = event.data;
            out.push(Event {
                fd: data as RawFd,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                    != 0,
                writable: bits & sys::EPOLLOUT != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// A non-blocking self-pipe: any thread may `wake`, the reactor drains.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe with both ends non-blocking.
    pub fn new() -> io::Result<WakePipe> {
        let (read_fd, write_fd) = sys::wake_pipe()?;
        Ok(WakePipe { read_fd, write_fd })
    }

    /// The end the reactor registers with its poller.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the reactor. A full pipe means a wakeup is already pending,
    /// so `EAGAIN` (and any other failure) is intentionally ignored.
    pub fn wake(&self) {
        let _ = sys::write_fd(self.write_fd, b"!");
    }

    /// Drains pending wakeup bytes so level-triggered polling settles.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(Some(n)) = sys::read_fd(self.read_fd, &mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poller_times_out_without_events() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn wake_pipe_triggers_poller() {
        let poller = Poller::new().expect("poller");
        let pipe = WakePipe::new().expect("pipe");
        poller.add(pipe.read_fd(), Interest::READ).expect("add");
        pipe.wake();
        pipe.wake(); // double-wake coalesces, never errors
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        assert_eq!(events[0].fd, pipe.read_fd());
        pipe.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .expect("wait");
        assert!(events.is_empty(), "drained pipe is quiet");
    }
}
