//! The readiness-based event loop serving all client connections on one
//! thread.
//!
//! ```text
//!                    ┌──────────── reactor thread ────────────┐
//!  accept ──────────▶│ epoll { listener, wake pipe, N conns } │
//!  wake pipe ───────▶│   readable → framer → respond → queue  │
//!                    │   writable → flush backlog             │
//!                    │   timer wheel → reap idle conns        │
//!                    └───────────────┬────────────────────────┘
//!                                    ▼ (existing mpsc channels)
//!                          shard worker threads (unchanged)
//! ```
//!
//! One thread owns every connection — thread count stays O(shards), not
//! O(connections) — and each connection is a small state machine: a
//! protocol sniff on the first bytes (binary preamble → length-prefixed
//! frames via [`BinaryFramer`](psc_model::codec::BinaryFramer), anything
//! else → an incremental [`LineFramer`](psc_model::wire::LineFramer)),
//! a pooled read buffer, and a bounded write backlog. Policy decisions:
//!
//! - **Backpressure.** Responses queue per connection; a consumer whose
//!   unsent backlog still exceeds `max_write_buffer_bytes` when its next
//!   request arrives is disconnected (slow-consumer policy) rather than
//!   allowed to wedge the loop or buffer unbounded memory. The bound is
//!   checked before serving, not after queueing, so a single response
//!   larger than the bound can still drain in full to a prompt reader.
//!   Other connections are unaffected.
//! - **Half-close draining.** A peer that shuts down its write side with
//!   responses still queued (pipeline-then-shutdown clients) flips to a
//!   write-only draining state: every queued response is delivered, then
//!   the connection closes.
//! - **Idle reaping.** With an `idle_timeout` configured, a timer wheel
//!   reschedules a connection's deadline on every received byte batch and
//!   reaps connections that stay silent past it.
//! - **Admission cap.** At `max_connections` open connections, further
//!   accepts are closed immediately (counted, never served).
//! - **Shutdown.** `stop` flips a flag and writes the wake pipe; the loop
//!   wakes, best-effort flushes every backlog once, and exits.

pub mod conn;
pub mod poll;
pub mod sys;
pub mod wheel;

use crate::metrics::ReactorMetrics;
use crate::server::dispatch;
use crate::service::PubSubService;
use crate::telemetry::{AtomicHistogram, ServiceLatency};
use crate::wire::{decode_binary_request, BinRequest, Request, Response};
use conn::{ConnFrame, Connection, ReadStatus};
use poll::{Event, Interest, Poller, WakePipe};
use psc_model::Publication;
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wheel::TimerWheel;

/// Front-end policy knobs, extracted from `ServiceConfig`.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Open-connection cap; accepts beyond it are closed immediately.
    pub max_connections: usize,
    /// Per-connection bound on unsent response bytes.
    pub max_write_buffer_bytes: usize,
    /// Reap connections silent for this long (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Longest accepted request frame — a JSON line or a binary
    /// payload; one cap, enforced mid-stream by both framers.
    pub max_frame_bytes: usize,
    /// Size of each connection's pooled read buffer.
    pub read_buffer_bytes: usize,
    /// Initial capacity of each connection's response backlog.
    pub write_buffer_bytes: usize,
}

/// Shared live counters; `snapshot` produces the public view.
#[derive(Default)]
pub struct ReactorCounters {
    accepted: AtomicU64,
    current: AtomicU64,
    rejected_at_cap: AtomicU64,
    slow_consumer_disconnects: AtomicU64,
    idle_disconnects: AtomicU64,
    requests: AtomicU64,
    oversized_lines: AtomicU64,
    /// Request-line → decoded `Request` time (the `decode` stage).
    decode: AtomicHistogram,
    /// Binary-frame → decoded request time (the `decode_binary` stage —
    /// kept separate from `decode` so the two protocols' costs are
    /// directly comparable in one stats scrape).
    decode_binary: AtomicHistogram,
    /// Response encode + enqueue onto the write backlog (`deliver`).
    deliver: AtomicHistogram,
    /// Publish-frame completion → matched-notification enqueue (`e2e`).
    end_to_end: AtomicHistogram,
}

impl ReactorCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ReactorMetrics {
        ReactorMetrics {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_current: self.current.load(Ordering::Relaxed),
            connections_rejected_at_cap: self.rejected_at_cap.load(Ordering::Relaxed),
            slow_consumer_disconnects: self.slow_consumer_disconnects.load(Ordering::Relaxed),
            idle_disconnects: self.idle_disconnects.load(Ordering::Relaxed),
            requests_handled: self.requests.load(Ordering::Relaxed),
            oversized_lines: self.oversized_lines.load(Ordering::Relaxed),
        }
    }

    /// Records one request-line decode duration (called by the request
    /// dispatcher, which is the only place that sees decode begin/end).
    pub(crate) fn record_decode(&self, elapsed: Duration) {
        self.decode.record_duration(elapsed);
    }

    /// Records one binary-frame decode duration.
    pub(crate) fn record_decode_binary(&self, elapsed: Duration) {
        self.decode_binary.record_duration(elapsed);
    }

    /// Records an accepted connection (thread-per-connection front ends,
    /// e.g. the federation layer, share these counters with the reactor).
    pub(crate) fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.current.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub(crate) fn record_closed(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one handled request.
    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one response encode/enqueue duration (`deliver` stage).
    pub(crate) fn record_deliver(&self, elapsed: Duration) {
        self.deliver.record_duration(elapsed);
    }

    /// Records one publish-ingress → response-written duration (`e2e`).
    pub(crate) fn record_end_to_end(&self, elapsed: Duration) {
        self.end_to_end.record_duration(elapsed);
    }

    /// Copies the reactor-owned stages (`decode`, `decode_binary`,
    /// `deliver`, `e2e`) into a merged latency view whose service-side
    /// stages are already filled in.
    pub(crate) fn overlay_latency(&self, latency: &mut ServiceLatency) {
        latency.decode = self.decode.snapshot();
        latency.decode_binary = self.decode_binary.snapshot();
        latency.deliver = self.deliver.snapshot();
        latency.end_to_end = self.end_to_end.snapshot();
    }
}

/// Owner's handle to a running reactor thread.
pub struct ReactorHandle {
    counters: Arc<ReactorCounters>,
    wake: Arc<WakePipe>,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Live counters.
    pub fn counters(&self) -> &Arc<ReactorCounters> {
        &self.counters
    }

    /// Signals shutdown through the wake pipe and joins the thread.
    /// Idempotent.
    pub fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            self.wake.wake();
            let _ = join.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns the reactor thread serving `listener` against `service`.
pub fn spawn(
    listener: TcpListener,
    service: Arc<PubSubService>,
    config: ReactorConfig,
) -> io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let wake = Arc::new(WakePipe::new()?);
    poller.add(listener.as_raw_fd(), Interest::READ)?;
    poller.add(wake.read_fd(), Interest::READ)?;
    let counters = Arc::new(ReactorCounters::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut reactor = Reactor {
        poller,
        listener,
        wake: Arc::clone(&wake),
        shutdown: Arc::clone(&shutdown),
        counters: Arc::clone(&counters),
        service,
        conns: HashMap::new(),
        wheel: config
            .idle_timeout
            .map(|t| TimerWheel::new(t, Instant::now())),
        accept_paused_until: None,
        batch: PublishBatch::default(),
        config,
    };
    let join = std::thread::Builder::new()
        .name("psc-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle {
        counters,
        wake,
        shutdown,
        join: Some(join),
    })
}

/// How long the listener stays deregistered after a persistent accept
/// error (EMFILE and friends) before the reactor retries.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    wake: Arc<WakePipe>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ReactorCounters>,
    service: Arc<PubSubService>,
    conns: HashMap<RawFd, Connection>,
    wheel: Option<TimerWheel>,
    /// `Some` while accepting is paused after a persistent accept error.
    accept_paused_until: Option<Instant>,
    /// Reusable accumulator for consecutive publish frames within one
    /// connection's readiness event — drained (one `publish_batch` call,
    /// responses appended in arrival order) before any non-publish
    /// request is served and when the event's frames run out. Living on
    /// the reactor keeps its capacity pooled across events; the drain
    /// points guarantee it is empty between events.
    batch: PublishBatch,
    config: ReactorConfig,
}

/// Pending publishes for the current readiness event, kept as parallel
/// vectors because [`PubSubService::publish_batch`] wants a contiguous
/// `&[Publication]`.
#[derive(Default)]
struct PublishBatch {
    publications: Vec<Publication>,
    /// Per-publish ingress stamp (for the `e2e` stage) and wire protocol
    /// (so each response is encoded in the frame's own protocol).
    meta: Vec<(Instant, Proto)>,
}

impl PublishBatch {
    fn push(&mut self, publication: Publication, ingress: Instant, proto: Proto) {
        self.publications.push(publication);
        self.meta.push((ingress, proto));
    }

    fn is_empty(&self) -> bool {
        self.publications.is_empty()
    }

    fn clear(&mut self) {
        self.publications.clear();
        self.meta.clear();
    }
}

/// Which wire protocol a frame (and therefore its response) speaks.
#[derive(Clone, Copy)]
enum Proto {
    Json,
    Binary,
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            events.clear();
            let mut timeout = self.wheel.as_ref().and_then(TimerWheel::poll_timeout);
            if let Some(wait) = self.resume_accepting_or_wait() {
                timeout = Some(timeout.map_or(wait, |t| t.min(wait)));
            }
            if self.poller.wait(&mut events, timeout).is_err() {
                // epoll_wait only fails on programmer error (EBADF/EINVAL);
                // treat it as fatal for the front-end rather than spinning.
                break;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for &event in &events {
                if event.fd == self.wake.read_fd() {
                    self.wake.drain();
                } else if event.fd == self.listener.as_raw_fd() {
                    self.accept_ready();
                } else {
                    self.connection_ready(event);
                }
            }
            self.reap_idle();
        }
        // Graceful exit: one best-effort flush of every backlog, then close.
        for (_, mut conn) in self.conns.drain() {
            let _ = conn.flush();
        }
    }

    /// If accepting is paused after a persistent accept error, re-arms the
    /// listener once the backoff elapses; otherwise returns how long the
    /// poller may sleep before the re-arm is due.
    fn resume_accepting_or_wait(&mut self) -> Option<Duration> {
        let resume_at = self.accept_paused_until?;
        let now = Instant::now();
        if now >= resume_at {
            if self
                .poller
                .add(self.listener.as_raw_fd(), Interest::READ)
                .is_ok()
            {
                self.accept_paused_until = None;
                return None;
            }
            // Registration itself failed (fds still exhausted): back off
            // again.
            self.accept_paused_until = Some(now + ACCEPT_BACKOFF);
        }
        Some(
            self.accept_paused_until
                .expect("still paused")
                .saturating_duration_since(now),
        )
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    if self.conns.len() >= self.config.max_connections {
                        self.counters
                            .rejected_at_cap
                            .fetch_add(1, Ordering::Relaxed);
                        drop(stream); // immediate close: the cap is a hard limit
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are small lines; without NODELAY, Nagle +
                    // delayed ACK stalls pipelined responses off-loopback.
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let conn = Connection::new(
                        stream,
                        self.config.max_frame_bytes,
                        self.config.read_buffer_bytes,
                        self.config.write_buffer_bytes,
                    );
                    if self.poller.add(fd, Interest::READ).is_err() {
                        continue;
                    }
                    self.conns.insert(fd, conn);
                    self.counters.current.fetch_add(1, Ordering::Relaxed);
                    if let (Some(wheel), Some(timeout)) =
                        (self.wheel.as_mut(), self.config.idle_timeout)
                    {
                        wheel.touch(fd, timeout, Instant::now());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept errors (EMFILE when fds run out)
                    // re-trigger level-triggered epoll immediately. Pause
                    // the listener registration for a backoff window —
                    // established connections keep being served; sleeping
                    // here would stall the whole loop.
                    self.poller.delete(self.listener.as_raw_fd());
                    self.accept_paused_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    break;
                }
            }
        }
    }

    fn connection_ready(&mut self, event: Event) {
        let Some(conn) = self.conns.get_mut(&event.fd) else {
            // Closed earlier in this same event batch.
            return;
        };
        if conn.draining {
            // Write-only tail of a half-closed connection: deliver what
            // remains, close when the backlog empties (or the peer dies).
            let done = conn.flush().is_err() || conn.backlog() == 0;
            if done {
                self.close(event.fd, None);
            }
            return;
        }
        let status = if event.readable {
            conn.read_ready()
        } else {
            ReadStatus::Open
        };
        if status == ReadStatus::Errored {
            self.close(event.fd, None);
            return;
        }

        // Serve every completed frame, in order. Responses append onto
        // the connection's write backlog in wire form; consecutive
        // publish frames accumulate into `self.batch` and fan out to the
        // shards in one `publish_batch` call — a pipelined publisher pays
        // one shard round-trip per readiness event, not per publish. The
        // socket is flushed once per event, after the batch drains, so a
        // window of pipelined requests costs one write syscall.
        let mut served_any = false;
        loop {
            let service = &self.service;
            let counters = &self.counters;
            let max_frame_bytes = self.config.max_frame_bytes;
            let conn = self.conns.get_mut(&event.fd).expect("conn checked above");
            // Slow-consumer bound, checked against the backlog of *earlier*
            // responses before serving the next request: a consumer that is
            // not reading what it already asked for gets disconnected, but a
            // single response larger than the bound can still drain in full
            // to a prompt reader (memory is then bounded by one response
            // plus the cap, per connection). Because flushing now happens
            // once per event rather than per frame, the backlog is offered
            // to the kernel before judging — the policy targets a peer
            // that is not reading, not responses never yet offered.
            if conn.backlog() > self.config.max_write_buffer_bytes {
                let alive = conn.flush().is_ok();
                let over = conn.backlog() > self.config.max_write_buffer_bytes;
                if !alive || over {
                    self.batch.clear();
                    self.close(
                        event.fd,
                        if alive {
                            Some(Disconnect::SlowConsumer)
                        } else {
                            None
                        },
                    );
                    return;
                }
            }
            let batch = &mut self.batch;
            let served = conn.serve_next(|frame, out| {
                serve_frame(frame, service, counters, max_frame_bytes, batch, out)
            });
            if served.is_none() {
                break;
            }
            served_any = true;
        }
        {
            let service = &self.service;
            let counters = &self.counters;
            let batch = &mut self.batch;
            let conn = self.conns.get_mut(&event.fd).expect("conn still present");
            drain_publish_batch(batch, service, counters, conn.outbuf_mut());
            if served_any && conn.flush().is_err() {
                self.close(event.fd, None);
                return;
            }
        }

        let conn = self.conns.get_mut(&event.fd).expect("conn still present");
        if event.writable && conn.flush().is_err() {
            self.close(event.fd, None);
            return;
        }
        if status == ReadStatus::PeerClosed {
            let conn = self.conns.get_mut(&event.fd).expect("conn still present");
            if conn.backlog() == 0 {
                self.close(event.fd, None);
                return;
            }
            // Half-close: the peer shut down its write side but may still
            // be reading (pipeline-then-shutdown is a legitimate client
            // pattern). Switch to write-only draining so every queued
            // response is delivered before the close; the idle wheel still
            // bounds a peer that never drains.
            conn.draining = true;
            if self.poller.modify(event.fd, Interest::WRITE_ONLY).is_err() {
                self.close(event.fd, None);
                return;
            }
            let conn = self.conns.get_mut(&event.fd).expect("conn still present");
            conn.writable_registered = true;
            if let (Some(wheel), Some(timeout)) = (self.wheel.as_mut(), self.config.idle_timeout) {
                wheel.touch(event.fd, timeout, Instant::now());
            }
            return;
        }
        // Keep the poller's interest in sync with the backlog.
        let conn = self.conns.get_mut(&event.fd).expect("conn still present");
        let wants_write = conn.wants_write();
        if wants_write != conn.writable_registered {
            let interest = Interest {
                readable: true,
                writable: wants_write,
            };
            if self.poller.modify(event.fd, interest).is_err() {
                self.close(event.fd, None);
                return;
            }
            let conn = self.conns.get_mut(&event.fd).expect("conn still present");
            conn.writable_registered = wants_write;
        }
        if served_any || event.readable {
            if let (Some(wheel), Some(timeout)) = (self.wheel.as_mut(), self.config.idle_timeout) {
                wheel.touch(event.fd, timeout, Instant::now());
            }
        }
    }

    fn reap_idle(&mut self) {
        let Some(wheel) = self.wheel.as_mut() else {
            return;
        };
        let due = wheel.expired(Instant::now());
        for fd in due {
            if self.conns.contains_key(&fd) {
                self.close(fd, Some(Disconnect::Idle));
            }
        }
    }

    fn close(&mut self, fd: RawFd, why: Option<Disconnect>) {
        if let Some(conn) = self.conns.remove(&fd) {
            self.poller.delete(fd);
            if let Some(wheel) = self.wheel.as_mut() {
                wheel.cancel(fd);
            }
            self.counters.current.fetch_sub(1, Ordering::Relaxed);
            match why {
                Some(Disconnect::SlowConsumer) => {
                    self.counters
                        .slow_consumer_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(Disconnect::Idle) => {
                    self.counters
                        .idle_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
            drop(conn); // closes the socket
        }
    }
}

#[derive(Clone, Copy)]
enum Disconnect {
    SlowConsumer,
    Idle,
}

/// What one frame decoded to, before any response is produced.
enum Served {
    /// A validated publication — joins the pending batch instead of
    /// fanning out to the shards on its own.
    Publish(Publication),
    /// Any other well-formed request — answered synchronously.
    Other(Request),
    /// A malformed or schema-invalid request — answered with an error.
    Fail(String),
}

/// Serves one framed request. Publishes are *deferred*: they decode and
/// validate here (the `decode` / `decode_binary` stage, which for both
/// protocols now spans wire bytes → validated [`Publication`]) and then
/// join `batch`; the batch fans out to the shards in one
/// [`PubSubService::publish_batch`] call when a non-publish frame
/// arrives (responses must stay in request order) or when the event's
/// frames run out. Everything else is answered immediately, in the
/// frame's own protocol, straight onto the connection's write backlog.
///
/// Free function (not a `Reactor` method) so the caller can hold the
/// connection's `&mut` while this borrows the service, counters, and
/// batch — disjoint fields of the reactor.
fn serve_frame(
    frame: ConnFrame<'_>,
    service: &PubSubService,
    counters: &ReactorCounters,
    max_frame_bytes: usize,
    batch: &mut PublishBatch,
    out: &mut Vec<u8>,
) {
    // End-to-end ingress stamp: the request frame has just completed
    // framing. For publish requests the span from here to the matched-
    // notification enqueue is the `e2e` stage (under pipelining that
    // includes time spent waiting for the rest of the batch).
    let ingress = Instant::now();
    let (served, proto) = match frame {
        ConnFrame::JsonLine(line) => {
            if line.trim().is_empty() {
                return;
            }
            counters.requests.fetch_add(1, Ordering::Relaxed);
            let decode_started = Instant::now();
            // The decode stage costs the same whether the line parses or
            // not, so malformed lines are recorded too; publication
            // validation is part of the stage so that `decode` and
            // `decode_binary` measure the same span.
            let served = match Request::decode(&line) {
                Ok(Request::Publish(dto)) => match dto.into_publication(service.schema()) {
                    Ok(p) => Served::Publish(p),
                    Err(e) => Served::Fail(e.to_string()),
                },
                Ok(request) => Served::Other(request),
                Err(e) => Served::Fail(e.to_string()),
            };
            counters.record_decode(decode_started.elapsed());
            (served, Proto::Json)
        }
        ConnFrame::JsonTooLong { len } => {
            counters.oversized_lines.fetch_add(1, Ordering::Relaxed);
            (
                Served::Fail(format!(
                    "request line of {len} bytes exceeds {max_frame_bytes} bytes"
                )),
                Proto::Json,
            )
        }
        ConnFrame::Binary(payload) => {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            let decode_started = Instant::now();
            let served = match decode_binary_request(payload, service.schema()) {
                Ok(BinRequest::Publish(p)) => Served::Publish(p),
                Ok(BinRequest::Plain(request)) => Served::Other(request),
                Err(e) => Served::Fail(e.to_string()),
            };
            counters.record_decode_binary(decode_started.elapsed());
            (served, Proto::Binary)
        }
        ConnFrame::BinaryTooLong { len } => {
            counters.oversized_lines.fetch_add(1, Ordering::Relaxed);
            (
                Served::Fail(format!(
                    "binary frame of {len} bytes exceeds {max_frame_bytes} bytes"
                )),
                Proto::Binary,
            )
        }
    };
    match served {
        Served::Publish(publication) => batch.push(publication, ingress, proto),
        Served::Other(request) => {
            // Response order must match request order: settle the pending
            // publishes before answering this request.
            drain_publish_batch(batch, service, counters, out);
            let response = dispatch(request, service, Some(counters));
            encode_response(&response, proto, counters, out);
        }
        Served::Fail(message) => {
            drain_publish_batch(batch, service, counters, out);
            encode_response(&Response::Error(message), proto, counters, out);
        }
    }
}

/// Encodes one response in `proto` onto the write backlog, recording the
/// `deliver` stage.
fn encode_response(
    response: &Response,
    proto: Proto,
    counters: &ReactorCounters,
    out: &mut Vec<u8>,
) {
    let deliver_started = Instant::now();
    match proto {
        Proto::Json => response.encode_json_into(out),
        Proto::Binary => response.encode_binary(out),
    }
    counters.deliver.record_duration(deliver_started.elapsed());
}

/// Settles the pending publish batch: one [`PubSubService::publish_batch`]
/// call fans the whole run out to the shards (each visited shard is
/// messaged once for the run, not once per publish), then the matched
/// notifications are encoded in arrival order, each in its own frame's
/// protocol. No-op on an empty batch; always leaves the batch empty with
/// its capacity pooled.
fn drain_publish_batch(
    batch: &mut PublishBatch,
    service: &PubSubService,
    counters: &ReactorCounters,
    out: &mut Vec<u8>,
) {
    if batch.is_empty() {
        return;
    }
    match service.publish_batch(&batch.publications) {
        Ok(matched) => {
            for ((ingress, proto), ids) in batch.meta.iter().zip(matched) {
                let response = Response::Matched(ids.into_iter().map(|id| id.0).collect());
                encode_response(&response, *proto, counters, out);
                // The notification is now queued for delivery: close the
                // publish→deliver span (decode + batch wait + route +
                // shard round-trip + merge + encode; everything but
                // kernel socket time).
                counters.end_to_end.record_duration(ingress.elapsed());
            }
        }
        Err(e) => {
            // `publish_batch` validates arity per publication before any
            // shard work, and every batched publication already passed
            // schema validation at decode time — but answer every frame
            // if it does fail, so pipelined clients never lose a reply.
            let response = Response::Error(e.to_string());
            for (_, proto) in &batch.meta {
                encode_response(&response, *proto, counters, out);
            }
        }
    }
    batch.clear();
}
