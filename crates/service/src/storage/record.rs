//! Log-record framing: length-prefixed, CRC-checked binary records.
//!
//! Every durable file the storage layer writes — the write-ahead log and
//! the snapshot — is a sequence of *framed records*:
//!
//! ```text
//! ┌───────────┬───────────┬───────────────┐
//! │ u32 len   │ u32 crc32 │ payload bytes │   (integers little-endian)
//! └───────────┴───────────┴───────────────┘
//! ```
//!
//! `len` counts payload bytes only; `crc32` is the IEEE CRC-32 of the
//! payload. The frame makes torn writes detectable: a record the process
//! died in the middle of writing fails the length or checksum test, and
//! [`read_frames`] reports how many bytes formed valid records so the
//! caller can truncate the torn tail and keep running — a torn *final*
//! record is data loss of one unacknowledged operation, not corruption.
//!
//! The payload of a WAL frame is a [`LogRecord`] encoded with
//! [`psc_model::codec`]; snapshot files put their whole body in a single
//! frame (see [`super::snapshot`]).

use psc_model::codec::{ByteReader, ByteWriter, CodecError};
use psc_model::{Schema, Subscription, SubscriptionId};

/// Frame header size: `u32` length + `u32` CRC.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a single frame's payload, enforced on **both** sides:
/// writers refuse to emit a larger frame (an over-cap record written
/// "successfully" would read back as a torn tail and silently swallow
/// everything after it), and readers refuse to honor a larger length
/// field (so corruption cannot trigger a multi-gigabyte allocation
/// during recovery). 1 GiB accommodates snapshots of tens of millions
/// of subscriptions per shard while staying far under the `u32` length
/// field's range.
pub const MAX_FRAME_PAYLOAD_BYTES: usize = 1 << 30; // 1 GiB

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The initial register value for a streaming CRC-32 computation.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Folds `bytes` into a streaming CRC-32 register (start from
/// [`CRC_INIT`], finish with [`crc32_finalize`]). Streaming lets the log
/// maintain a running checksum of everything appended since the last
/// truncation without re-reading the file.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Finalizes a streaming CRC-32 register into the checksum value.
pub fn crc32_finalize(state: u32) -> u32 {
    !state
}

/// IEEE CRC-32 (the polynomial used by zip/PNG/Ethernet) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finalize(crc32_update(CRC_INIT, bytes))
}

/// Wraps `payload` in a length + CRC frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits `bytes` into the payloads of its valid leading frames.
///
/// Returns the payload list and the number of bytes they spanned (header
/// included). Reading stops — without error — at the first frame that is
/// incomplete, over-long, or checksum-corrupt: under an append-only
/// writer that is precisely a torn tail from a crashed process, and the
/// returned span is where the caller should truncate the file.
pub fn read_frames(bytes: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER_BYTES {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + FRAME_HEADER_BYTES;
        if len > MAX_FRAME_PAYLOAD_BYTES || bytes.len() - start < len {
            break;
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload);
        pos = start + len;
    }
    (payloads, pos)
}

const TAG_ADMIT: u8 = 1;
const TAG_UNSUBSCRIBE: u8 = 2;

/// One durable operation in a shard's write-ahead log.
///
/// An `Admit` record carries a whole admission batch **in the order the
/// router enqueued it**: replay pushes the batch through the same
/// widest-first admission path as live traffic, so the rebuilt store is
/// bit-for-bit the store the live shard had (same columns, same covered
/// parents, same RNG consumption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Admit a batch of subscriptions.
    Admit(Vec<(SubscriptionId, Subscription)>),
    /// Remove one subscription.
    Unsubscribe(SubscriptionId),
}

impl LogRecord {
    /// Encodes the record body (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            LogRecord::Admit(batch) => {
                w.u8(TAG_ADMIT);
                w.u32(batch.len() as u32);
                for (id, sub) in batch {
                    w.u64(id.0);
                    w.subscription(sub);
                }
            }
            LogRecord::Unsubscribe(id) => {
                w.u8(TAG_UNSUBSCRIBE);
                w.u64(id.0);
            }
        }
        w.into_bytes()
    }

    /// Decodes a record body produced by [`encode`](LogRecord::encode),
    /// validating subscriptions against `schema`.
    pub fn decode(payload: &[u8], schema: &Schema) -> Result<LogRecord, CodecError> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8()? {
            TAG_ADMIT => {
                let count = r.u32()? as usize;
                if count > payload.len() / 9 {
                    // Each entry costs ≥ 12 bytes (id + arity); 9 is a safe
                    // floor that keeps a corrupt count from pre-allocating.
                    return Err(CodecError::Invalid("admit batch count too large"));
                }
                let mut batch = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = SubscriptionId(r.u64()?);
                    let sub = r.subscription(schema)?;
                    batch.push((id, sub));
                }
                LogRecord::Admit(batch)
            }
            TAG_UNSUBSCRIBE => LogRecord::Unsubscribe(SubscriptionId(r.u64()?)),
            _ => return Err(CodecError::Invalid("unknown log record tag")),
        };
        if !r.is_empty() {
            return Err(CodecError::Invalid("trailing bytes after log record"));
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Subscription;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn sample_records(schema: &Schema) -> Vec<LogRecord> {
        let wide = Subscription::builder(schema)
            .range("x0", 0, 50)
            .build()
            .unwrap();
        let narrow = Subscription::builder(schema)
            .range("x0", 10, 20)
            .range("x1", 5, 9)
            .build()
            .unwrap();
        vec![
            LogRecord::Admit(vec![(SubscriptionId(1), wide), (SubscriptionId(2), narrow)]),
            LogRecord::Unsubscribe(SubscriptionId(1)),
            LogRecord::Admit(vec![]),
        ]
    }

    #[test]
    fn records_round_trip_through_frames() {
        let schema = schema();
        let records = sample_records(&schema);
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&frame(&record.encode()));
        }
        let (payloads, span) = read_frames(&bytes);
        assert_eq!(span, bytes.len());
        let decoded: Vec<_> = payloads
            .iter()
            .map(|p| LogRecord::decode(p, &schema).unwrap())
            .collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let schema = schema();
        let records = sample_records(&schema);
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&frame(&record.encode()));
        }
        let full = bytes.len();
        let last = frame(&records[2].encode()).len();
        // Tear the final record at every possible byte boundary: the two
        // intact records always survive, the torn one never does.
        for cut in (full - last + 1)..full {
            let (payloads, span) = read_frames(&bytes[..cut]);
            assert_eq!(payloads.len(), 2, "cut at {cut}");
            assert_eq!(span, full - last, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_crc_stops_reading() {
        let schema = schema();
        let records = sample_records(&schema);
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&frame(&record.encode()));
        }
        // Flip one payload byte of the second record.
        let first_len = frame(&records[0].encode()).len();
        bytes[first_len + FRAME_HEADER_BYTES] ^= 0xFF;
        let (payloads, span) = read_frames(&bytes);
        assert_eq!(payloads.len(), 1);
        assert_eq!(span, first_len);
    }

    #[test]
    fn absurd_length_field_rejected() {
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 12]);
        let (payloads, span) = read_frames(&bytes);
        assert!(payloads.is_empty());
        assert_eq!(span, 0);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let schema = schema();
        assert!(LogRecord::decode(&[], &schema).is_err());
        assert!(LogRecord::decode(&[9, 0, 0], &schema).is_err());
        let mut valid = LogRecord::Unsubscribe(SubscriptionId(3)).encode();
        valid.push(0); // trailing garbage
        assert!(LogRecord::decode(&valid, &schema).is_err());
    }
}
