//! Filesystem abstraction for the storage layer — and its crash injector.
//!
//! Every durable byte the storage layer writes goes through the
//! [`StorageFs`]/[`LogFile`] traits instead of `std::fs` directly. In
//! production that indirection costs one vtable hop per syscall-bound
//! operation ([`RealFs`]); in tests it buys the thing money can't buy on
//! a real filesystem: **deterministic crashes at every I/O boundary**.
//!
//! [`CrashFs`] is an in-memory filesystem that counts every mutating
//! operation and can be armed to *fail* at operation `k` — after which
//! every further operation errors, exactly like a process that lost its
//! storage mid-write. It tracks, per file, which bytes have been
//! `sync`ed, so a test can then ask for either of two post-mortem views:
//!
//! - [`CrashFs::process_crash_view`] — everything written survives (the
//!   OS page cache outlives the process). This is the world
//!   [`FsyncPolicy::Never`](super::FsyncPolicy) promises to recover
//!   from.
//! - [`CrashFs::power_loss_view`] — only synced bytes survive; files
//!   whose creation was never made durable (no file `sync` or parent
//!   directory sync) vanish entirely. This is the world
//!   [`FsyncPolicy::Always`](super::FsyncPolicy) promises an
//!   acknowledged operation survives.
//!
//! ## Fidelity limits
//!
//! The model errs adversarial where the storage layer's correctness
//! argument needs it (unsynced bytes vanish wholesale, unsynced file
//! creations vanish) and lenient where modeling would add complexity
//! without testing any code path we rely on: `rename` and `remove` are
//! atomic and immediately durable (the snapshot path syncs file contents
//! *before* renaming, and that ordering is exactly what the adversarial
//! content model verifies — a snapshot renamed into place without a
//! prior sync shows up torn and fails recovery). Partial persistence of
//! an unsynced tail (a real power loss can keep any byte subset) is
//! covered separately by the torn-tail tests, which cut log files at
//! arbitrary byte offsets.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open, writable log or snapshot file.
pub trait LogFile: Send + fmt::Debug {
    /// Appends `bytes` at the current end of the file.
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flushes file content to stable storage (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates the file to `len` bytes (used to drop torn tails).
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem surface the storage layer needs. Implemented by
/// [`RealFs`] (production) and [`CrashFs`] (crash-injection tests).
pub trait StorageFs: Send + Sync + fmt::Debug {
    /// Creates a directory and all its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Reads a whole file. `NotFound` if absent.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// File names (not paths) of a directory's entries.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn LogFile>>;
    /// Opens a file for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn LogFile>>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Makes a directory's entries (creations/renames) durable.
    /// Best-effort on filesystems that reject directory fsync.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The production [`StorageFs`]: a thin veneer over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

#[derive(Debug)]
struct RealFile(File);

impl LogFile for RealFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)?;
        // With `append` mode the cursor re-seeks to the end on the next
        // write, but `create` mode needs the explicit seek.
        self.0.seek(io::SeekFrom::Start(len)).map(|_| ())
    }
}

impl StorageFs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Some filesystems reject directory fsync; the rename itself is
        // still atomic there, so degrade silently like the previous
        // storage layer did.
        if let Ok(dir) = File::open(path) {
            let _ = dir.sync_all();
        }
        Ok(())
    }
}

/// One file's state inside [`CrashFs`].
#[derive(Debug, Clone, Default)]
struct FileState {
    content: Vec<u8>,
    /// Bytes guaranteed durable (`sync` has covered them).
    synced_len: usize,
    /// Whether the file's *existence* is durable: set by a file `sync`,
    /// a parent-directory sync, or an atomic rename onto this path.
    durable_entry: bool,
}

#[derive(Debug, Default)]
struct CrashFsState {
    files: BTreeMap<PathBuf, FileState>,
    dirs: Vec<PathBuf>,
    /// Mutating operations performed so far.
    ops: u64,
    /// Fail (and keep failing) from this operation index on.
    fail_at: Option<u64>,
    crashed: bool,
}

impl CrashFsState {
    /// Counts one mutating operation, tripping the failpoint if armed.
    fn mutating_op(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(injected());
        }
        if Some(self.ops) == self.fail_at {
            self.crashed = true;
            self.ops += 1;
            return Err(injected());
        }
        self.ops += 1;
        Ok(())
    }
}

fn injected() -> io::Error {
    io::Error::other("injected storage crash")
}

/// In-memory crash-injection filesystem. Clone-cheap handle (`Arc`
/// inside); see the [module docs](self) for the durability model.
#[derive(Debug, Clone, Default)]
pub struct CrashFs {
    state: Arc<Mutex<CrashFsState>>,
}

impl CrashFs {
    /// A fresh, empty filesystem with no failpoint armed.
    pub fn new() -> CrashFs {
        CrashFs::default()
    }

    /// Arms the failpoint: the `op`-th mutating operation (0-based)
    /// fails, and every operation after it fails too — the storage has
    /// crashed and stays crashed.
    pub fn fail_at(&self, op: u64) {
        self.state.lock().expect("crashfs lock").fail_at = Some(op);
    }

    /// Mutating operations performed so far (the sweep bound: run once
    /// without a failpoint, then re-run failing at `0..ops()`).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("crashfs lock").ops
    }

    /// Whether the armed failpoint has tripped.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("crashfs lock").crashed
    }

    /// What a process crash leaves behind: every written byte survives
    /// (the page cache outlives the process). The returned filesystem
    /// has no failpoint armed.
    pub fn process_crash_view(&self) -> CrashFs {
        let state = self.state.lock().expect("crashfs lock");
        let mut files = BTreeMap::new();
        for (path, file) in &state.files {
            let mut survived = file.clone();
            survived.synced_len = 0;
            survived.durable_entry = true;
            files.insert(path.clone(), survived);
        }
        CrashFs {
            state: Arc::new(Mutex::new(CrashFsState {
                files,
                dirs: state.dirs.clone(),
                ..CrashFsState::default()
            })),
        }
    }

    /// What a power loss leaves behind: only synced bytes survive, and
    /// files whose directory entry was never made durable vanish. The
    /// returned filesystem has no failpoint armed.
    pub fn power_loss_view(&self) -> CrashFs {
        let state = self.state.lock().expect("crashfs lock");
        let mut files = BTreeMap::new();
        for (path, file) in &state.files {
            if !file.durable_entry {
                continue;
            }
            let mut survived = file.clone();
            survived.content.truncate(file.synced_len);
            survived.synced_len = 0;
            survived.durable_entry = true;
            files.insert(path.clone(), survived);
        }
        CrashFs {
            state: Arc::new(Mutex::new(CrashFsState {
                files,
                dirs: state.dirs.clone(),
                ..CrashFsState::default()
            })),
        }
    }

    /// The full content of `path` as currently written (test inspection;
    /// bypasses the failpoint).
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        let state = self.state.lock().expect("crashfs lock");
        state.files.get(path).map(|f| f.content.clone())
    }

    /// Overwrites `path`'s content directly (test corruption injection;
    /// bypasses the failpoint and marks everything durable).
    pub fn poke(&self, path: &Path, content: Vec<u8>) {
        let mut state = self.state.lock().expect("crashfs lock");
        let synced_len = content.len();
        state.files.insert(
            path.to_path_buf(),
            FileState {
                content,
                synced_len,
                durable_entry: true,
            },
        );
    }
}

/// A handle to one open [`CrashFs`] file. Writes go straight into the
/// shared state (like the page cache); `sync` advances the durable
/// watermark.
#[derive(Debug)]
struct CrashFile {
    fs: CrashFs,
    path: PathBuf,
}

impl LogFile for CrashFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.fs.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        let file = state
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        file.content.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = self.fs.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        let file = state
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        file.synced_len = file.content.len();
        // fsync on most filesystems (and the conservative reading of
        // POSIX) persists the inode; deliberately adversarial would be
        // requiring a parent-dir sync too, but the storage layer *does*
        // file-sync before relying on any file, so modeling fsync as
        // entry-durable matches the guarantee journaling filesystems
        // document for fsync-ed files.
        file.durable_entry = true;
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut state = self.fs.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        let file = state
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        file.content.truncate(len as usize);
        file.synced_len = file.synced_len.min(len as usize);
        Ok(())
    }
}

impl StorageFs for CrashFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        if !state.dirs.iter().any(|d| d == path) {
            state.dirs.push(path.to_path_buf());
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.state.lock().expect("crashfs lock");
        if state.crashed {
            return Err(injected());
        }
        state
            .files
            .get(path)
            .map(|f| f.content.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let state = self.state.lock().expect("crashfs lock");
        if state.crashed {
            return Err(injected());
        }
        Ok(state
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .filter_map(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .collect())
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        let mut state = self.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        state.files.insert(path.to_path_buf(), FileState::default());
        Ok(Box::new(CrashFile {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        let mut state = self.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        state.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(CrashFile {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        let mut file = state
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename source missing"))?;
        // Atomic and immediately durable — see the module docs for why
        // this leniency is safe to rely on in tests.
        file.durable_entry = true;
        state.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        state
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "remove target missing"))
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("crashfs lock");
        state.mutating_op()?;
        let children: Vec<PathBuf> = state
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .cloned()
            .collect();
        for child in children {
            if let Some(file) = state.files.get_mut(&child) {
                file.durable_entry = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashfs_write_sync_and_views() {
        let fs = CrashFs::new();
        let dir = Path::new("/d");
        fs.create_dir_all(dir).unwrap();
        let mut f = fs.create(&dir.join("a")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        f.write_all(b" world").unwrap();

        // Process crash: everything written survives.
        let crash = fs.process_crash_view();
        assert_eq!(crash.read(&dir.join("a")).unwrap(), b"hello world");
        // Power loss: only the synced prefix survives.
        let power = fs.power_loss_view();
        assert_eq!(power.read(&dir.join("a")).unwrap(), b"hello");
    }

    #[test]
    fn unsynced_creation_vanishes_on_power_loss() {
        let fs = CrashFs::new();
        let dir = Path::new("/d");
        fs.create_dir_all(dir).unwrap();
        let mut f = fs.create(&dir.join("a")).unwrap();
        f.write_all(b"x").unwrap();
        // Never synced, dir never synced: gone after power loss, present
        // after a process crash.
        assert!(fs.power_loss_view().read(&dir.join("a")).is_err());
        assert!(fs.process_crash_view().read(&dir.join("a")).is_ok());

        // A parent-directory sync makes the entry durable (content still
        // truncated to the synced watermark — zero bytes).
        let mut g = fs.create(&dir.join("b")).unwrap();
        g.write_all(b"y").unwrap();
        fs.sync_dir(dir).unwrap();
        assert_eq!(fs.power_loss_view().read(&dir.join("b")).unwrap(), b"");
    }

    #[test]
    fn failpoint_trips_once_and_stays_tripped() {
        let fs = CrashFs::new();
        let dir = Path::new("/d");
        fs.create_dir_all(dir).unwrap();
        let mut f = fs.create(&dir.join("a")).unwrap();
        f.write_all(b"one").unwrap();
        let ops = fs.ops();

        let armed = CrashFs::new();
        armed.fail_at(ops); // the op after "write one"
        armed.create_dir_all(dir).unwrap();
        let mut f = armed.create(&dir.join("a")).unwrap();
        f.write_all(b"one").unwrap();
        assert!(f.sync().is_err(), "failpoint trips");
        assert!(armed.crashed());
        assert!(f.write_all(b"two").is_err(), "stays tripped");
        assert!(armed.read(&dir.join("a")).is_err(), "reads fail too");
        // The post-mortem views still work.
        assert_eq!(
            armed.process_crash_view().read(&dir.join("a")).unwrap(),
            b"one"
        );
    }

    #[test]
    fn rename_and_remove_and_list() {
        let fs = CrashFs::new();
        let dir = Path::new("/d");
        fs.create_dir_all(dir).unwrap();
        let mut f = fs.create(&dir.join("tmp")).unwrap();
        f.write_all(b"snap").unwrap();
        f.sync().unwrap();
        fs.rename(&dir.join("tmp"), &dir.join("final")).unwrap();
        let mut names = fs.list_dir(dir).unwrap();
        names.sort();
        assert_eq!(names, vec!["final"]);
        assert_eq!(
            fs.power_loss_view().read(&dir.join("final")).unwrap(),
            b"snap"
        );
        fs.remove_file(&dir.join("final")).unwrap();
        assert!(fs.read(&dir.join("final")).is_err());
    }

    #[test]
    fn realfs_round_trips() {
        let dir = std::env::temp_dir().join(format!("psc-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let mut f = fs.create(&dir.join("a")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut g = fs.open_append(&dir.join("a")).unwrap();
        g.write_all(b"def").unwrap();
        g.set_len(4).unwrap();
        drop(g);
        assert_eq!(fs.read(&dir.join("a")).unwrap(), b"abcd");
        fs.rename(&dir.join("a"), &dir.join("b")).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert!(fs.list_dir(&dir).unwrap().contains(&"b".to_string()));
        fs.remove_file(&dir.join("b")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
