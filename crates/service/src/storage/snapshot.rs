//! Snapshot files: a covering store's exact image, written atomically.
//!
//! A snapshot is the paper's covering relation put to work for
//! durability: the file records the store's covered/uncovered *split*, not
//! just its membership. Actives (the widest, uncovered subscriptions — the
//! only ones matching consults first) are stored as id/subscription
//! columns in store order; covered entries follow with their parent
//! links. Restoring therefore rebuilds the store **without a single
//! subsumption check** — recovery cost is decode cost — and the rebuilt
//! store probes and skips exactly like the one that was snapshotted.
//!
//! ## File format
//!
//! ```text
//! ┌──────────────┬──────────────────────────────────────────┬──────────────────┐
//! │ magic        │ body frame (u32 len, u32 crc32, body)    │ wal-mark frame   │
//! │ "PSCSNAP1"   │   schema · rng state (4×u64) · u32 count │   u64 covered    │
//! │              │   entries: kind u8 · id u64 ·            │   u32 prefix crc │
//! │              │            [parent u64] · subscription   │                  │
//! └──────────────┴──────────────────────────────────────────┴──────────────────┘
//! ```
//!
//! Both sections ride in CRC-framed records (see [`super::record`]), and
//! the file is written to a temporary sibling then renamed into place,
//! so a crash mid-snapshot leaves the previous snapshot intact; a
//! snapshot that fails its checksum is reported as corruption, never
//! silently served. The trailing [`WalMark`] identifies the log prefix
//! the snapshot supersedes, closing the crash window between snapshot
//! rename and log truncation (see `WalMark`'s docs).
//!
//! The shard's RNG state is part of the image: write-ahead-log records
//! replayed *after* the snapshot then consume the exact random stream the
//! live shard would have, keeping probabilistic subsumption decisions —
//! and hence the rebuilt store — reproducible across restarts.

use super::record::{frame, read_frames};
use psc_matcher::{CoverParents, CoveringStore};
use psc_model::codec::{ByteReader, ByteWriter};
use psc_model::{Schema, Subscription, SubscriptionId};

/// Leading magic of a snapshot file (version-bearing).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PSCSNAP1";

const KIND_ACTIVE: u8 = 0;
const KIND_COVERED_GROUP: u8 = 1;
const KIND_COVERED_SINGLE: u8 = 2;

/// A decoded snapshot: the store image plus the shard RNG state captured
/// with it.
#[derive(Debug, Clone)]
pub struct StoreImage {
    /// Entries in store order, as consumed by
    /// [`CoveringStore::from_entries`].
    pub entries: Vec<(SubscriptionId, Subscription, Option<CoverParents>)>,
    /// The shard RNG's internal state at snapshot time.
    pub rng_state: [u64; 4],
}

/// Identifies the write-ahead-log prefix a snapshot already covers.
///
/// A snapshot is renamed into place *before* the log is truncated, so a
/// crash between the two leaves the covered records in the log. The mark
/// lets boot-time recovery recognize that exact state — the log's first
/// `covered_bytes` bytes still checksum to `crc` — and skip the covered
/// prefix instead of re-applying records the snapshot already contains,
/// which would diverge from the live shard (re-admission consumes RNG
/// draws and can re-shuffle the active/covered split). If the log was
/// truncated (or truncated and refilled), the check fails and the whole
/// log is replayed — also exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalMark {
    /// Log bytes (from file start) captured by the snapshot.
    pub covered_bytes: u64,
    /// CRC-32 of that prefix, so a refilled log cannot masquerade as an
    /// un-truncated one.
    pub crc: u32,
}

/// Encodes a snapshot file image of `store` (including `rng_state` and
/// the [`WalMark`] of the log prefix this snapshot supersedes).
pub fn encode(
    store: &CoveringStore,
    schema: &Schema,
    rng_state: [u64; 4],
    wal_mark: WalMark,
) -> Vec<u8> {
    let mut body = ByteWriter::with_capacity(64 + store.len() * 40);
    body.schema(schema);
    for word in rng_state {
        body.u64(word);
    }
    body.u32(store.len() as u32);
    for (id, sub, parents) in store.iter_entries() {
        match parents {
            None => {
                body.u8(KIND_ACTIVE);
                body.u64(id.0);
            }
            Some(CoverParents::Group) => {
                body.u8(KIND_COVERED_GROUP);
                body.u64(id.0);
            }
            Some(CoverParents::Single(parent)) => {
                body.u8(KIND_COVERED_SINGLE);
                body.u64(id.0);
                body.u64(parent.0);
            }
        }
        body.subscription(sub);
    }
    let mut mark = ByteWriter::with_capacity(12);
    mark.u64(wal_mark.covered_bytes);
    mark.u32(wal_mark.crc);
    let mut file = SNAPSHOT_MAGIC.to_vec();
    file.extend_from_slice(&frame(body.bytes()));
    file.extend_from_slice(&frame(mark.bytes()));
    file
}

/// Decodes a snapshot file, validating magic, checksum, and `schema`.
///
/// Unlike a write-ahead log, a snapshot has no tolerated torn tail: the
/// file is renamed into place only after a complete write, so any
/// incomplete or checksum-failing content is corruption and surfaces as
/// an error (with a human-readable detail string).
pub fn decode(bytes: &[u8], schema: &Schema) -> Result<(StoreImage, WalMark), String> {
    let Some(rest) = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice()) else {
        return Err("snapshot magic missing or unsupported version".into());
    };
    let (payloads, span) = read_frames(rest);
    if payloads.len() != 2 || span != rest.len() {
        return Err("snapshot body incomplete or checksum-corrupt".into());
    }
    let mut m = ByteReader::new(payloads[1]);
    let wal_mark = WalMark {
        covered_bytes: m.u64().map_err(|e| format!("snapshot wal mark: {e}"))?,
        crc: m.u32().map_err(|e| format!("snapshot wal mark: {e}"))?,
    };
    if !m.is_empty() {
        return Err("trailing bytes after snapshot wal mark".into());
    }
    let mut r = ByteReader::new(payloads[0]);
    let file_schema = r.schema().map_err(|e| format!("snapshot schema: {e}"))?;
    if !file_schema.same_shape(schema) {
        return Err(format!(
            "snapshot was written for a different schema ({} attributes, service has {})",
            file_schema.len(),
            schema.len()
        ));
    }
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64().map_err(|e| format!("snapshot rng state: {e}"))?;
    }
    let count = r.u32().map_err(|e| format!("snapshot count: {e}"))? as usize;
    if count > payloads[0].len() / 9 {
        return Err("snapshot entry count exceeds payload size".into());
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let kind = r
            .u8()
            .map_err(|e| format!("snapshot entry {i} kind: {e}"))?;
        let id = SubscriptionId(r.u64().map_err(|e| format!("snapshot entry {i} id: {e}"))?);
        let parents = match kind {
            KIND_ACTIVE => None,
            KIND_COVERED_GROUP => Some(CoverParents::Group),
            KIND_COVERED_SINGLE => {
                let parent = r
                    .u64()
                    .map_err(|e| format!("snapshot entry {i} parent: {e}"))?;
                Some(CoverParents::Single(SubscriptionId(parent)))
            }
            _ => return Err(format!("snapshot entry {i} has unknown kind {kind}")),
        };
        let sub = r
            .subscription(schema)
            .map_err(|e| format!("snapshot entry {i} subscription: {e}"))?;
        entries.push((id, sub, parents));
    }
    if !r.is_empty() {
        return Err("trailing bytes after snapshot entries".into());
    }
    Ok((StoreImage { entries, rng_state }, wal_mark))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_core::SubsumptionChecker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn populated_store(schema: &Schema) -> CoveringStore {
        let mut store = CoveringStore::new(SubsumptionChecker::default());
        let mut rng = StdRng::seed_from_u64(11);
        let sub = |lo: i64, hi: i64| {
            Subscription::builder(schema)
                .range("x0", lo, hi)
                .build()
                .unwrap()
        };
        store.insert(SubscriptionId(1), sub(0, 60), &mut rng);
        store.insert(SubscriptionId(2), sub(50, 99), &mut rng);
        store.insert(SubscriptionId(3), sub(10, 20), &mut rng); // pairwise under 1
        store.insert(SubscriptionId(4), sub(30, 80), &mut rng); // group-covered
        store
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let schema = Schema::uniform(2, 0, 99);
        let store = populated_store(&schema);
        let rng_state = StdRng::seed_from_u64(77).state();
        let mark = WalMark {
            covered_bytes: 123,
            crc: 0xDEAD_BEEF,
        };
        let bytes = encode(&store, &schema, rng_state, mark);
        let (image, back_mark) = decode(&bytes, &schema).unwrap();
        assert_eq!(back_mark, mark);
        assert_eq!(image.rng_state, rng_state);
        let original: Vec<_> = store
            .iter_entries()
            .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
            .collect();
        assert_eq!(image.entries, original);
        let rebuilt =
            CoveringStore::from_entries(SubsumptionChecker::default(), image.entries).unwrap();
        assert_eq!(rebuilt.active_len(), store.active_len());
        assert_eq!(rebuilt.covered_len(), store.covered_len());
    }

    #[test]
    fn corruption_is_detected() {
        let schema = Schema::uniform(2, 0, 99);
        let store = populated_store(&schema);
        let bytes = encode(
            &store,
            &schema,
            [1, 2, 3, 4],
            WalMark {
                covered_bytes: 0,
                crc: 0,
            },
        );
        // Bad magic.
        assert!(decode(&bytes[1..], &schema).is_err());
        // Flipped body byte (checksum catches it).
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(decode(&flipped, &schema).is_err());
        // Truncated file.
        assert!(decode(&bytes[..bytes.len() - 3], &schema).is_err());
    }

    #[test]
    fn schema_mismatch_is_detected() {
        let schema = Schema::uniform(2, 0, 99);
        let other = Schema::uniform(3, 0, 99);
        let store = populated_store(&schema);
        let bytes = encode(
            &store,
            &schema,
            [0; 4],
            WalMark {
                covered_bytes: 0,
                crc: 0,
            },
        );
        let err = decode(&bytes, &other).unwrap_err();
        assert!(err.contains("different schema"), "{err}");
    }
}
