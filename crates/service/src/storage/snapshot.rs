//! Snapshot files: a covering store's exact image, written atomically.
//!
//! A snapshot is the paper's covering relation put to work for
//! durability: the file records the store's covered/uncovered *split*, not
//! just its membership. Actives (the widest, uncovered subscriptions — the
//! only ones matching consults first) are stored as id/subscription
//! columns in store order; covered entries follow with their parent
//! links. Restoring therefore rebuilds the store **without a single
//! subsumption check** — recovery cost is decode cost — and the rebuilt
//! store probes and skips exactly like the one that was snapshotted.
//!
//! ## File format
//!
//! ```text
//! ┌──────────────┬──────────────────────────────────────────┬──────────────────┐
//! │ magic        │ body frame (u32 len, u32 crc32, body)    │ wal-mark frame   │
//! │ "PSCSNAP2"   │   schema · rng state (4×u64) · u32 count │   u64 segment    │
//! │              │   entries: kind u8 · id u64 ·            │   u64 offset     │
//! │              │            [parent u64] · subscription   │   u32 prefix crc │
//! └──────────────┴──────────────────────────────────────────┴──────────────────┘
//! ```
//!
//! Both sections ride in CRC-framed records (see [`super::record`]), and
//! the file is written to a temporary sibling then renamed into place,
//! so a crash mid-snapshot leaves the previous snapshot intact; a
//! snapshot that fails its checksum is reported as corruption, never
//! silently served. The trailing [`WalMark`] names the exact position in
//! the segmented write-ahead log this snapshot covers up to: recovery
//! replays from there, and segments entirely behind it are prunable (see
//! [`super::ShardStorage`]'s recovery rules).
//!
//! Version 1 files (`PSCSNAP1`, written before the log was segmented)
//! still decode: their mark counted bytes of the then-single log file,
//! which maps onto segment 1 after the open-time migration renames
//! `wal.bin` to the first segment. Decoders flag such marks as
//! [`legacy`](DecodedSnapshot::legacy_mark) so recovery can apply the
//! old, lenient prefix check (the pre-segmentation format truncated the
//! log on snapshot, so a stale mark was normal, not corrupt).
//!
//! The shard's RNG state is part of the image: write-ahead-log records
//! replayed *after* the snapshot then consume the exact random stream the
//! live shard would have, keeping probabilistic subsumption decisions —
//! and hence the rebuilt store — reproducible across restarts.

use super::record::{frame, read_frames};
use psc_matcher::{CoverParents, CoveringStore};
use psc_model::codec::{ByteReader, ByteWriter};
use psc_model::{Schema, Subscription, SubscriptionId};

/// Leading magic of a snapshot file (version-bearing).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PSCSNAP2";

/// Magic of the pre-segmentation snapshot format (still decoded; its
/// byte-counting mark maps onto segment 1).
pub const LEGACY_SNAPSHOT_MAGIC: &[u8; 8] = b"PSCSNAP1";

const KIND_ACTIVE: u8 = 0;
const KIND_COVERED_GROUP: u8 = 1;
const KIND_COVERED_SINGLE: u8 = 2;

/// A decoded snapshot: the store image plus the shard RNG state captured
/// with it.
#[derive(Debug, Clone)]
pub struct StoreImage {
    /// Entries in store order, as consumed by
    /// [`CoveringStore::from_entries`].
    pub entries: Vec<(SubscriptionId, Subscription, Option<CoverParents>)>,
    /// The shard RNG's internal state at snapshot time.
    pub rng_state: [u64; 4],
}

/// A position in the segmented write-ahead log: everything strictly
/// before byte `offset` of segment `segment` (and every earlier segment
/// in full) is covered by the snapshot carrying this mark.
///
/// `crc` is the CRC-32 of segment `segment`'s first `offset` bytes, so a
/// log whose content diverged from what the snapshot covered (real
/// corruption — segments are deleted whole, never truncated or
/// rewritten) cannot masquerade as intact: recovery re-checksums the
/// prefix and refuses to serve on mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalMark {
    /// Segment id the mark points into.
    pub segment: u64,
    /// Byte offset within that segment (frame-aligned by construction).
    pub offset: u64,
    /// CRC-32 of the segment's first `offset` bytes.
    pub crc: u32,
}

/// The result of [`decode`]: image, mark, and whether the mark came from
/// a legacy (`PSCSNAP1`) file and therefore gets the old lenient
/// prefix-check semantics on recovery.
#[derive(Debug, Clone)]
pub struct DecodedSnapshot {
    /// The store image (entries + RNG state).
    pub image: StoreImage,
    /// The log position the snapshot covers up to.
    pub mark: WalMark,
    /// True for `PSCSNAP1` files, whose marks described a log that was
    /// truncated on snapshot (a non-matching prefix meant "already
    /// truncated", not corruption).
    pub legacy_mark: bool,
}

/// Encodes a snapshot file image of `store` (including `rng_state` and
/// the [`WalMark`] of the log position this snapshot covers up to).
pub fn encode(
    store: &CoveringStore,
    schema: &Schema,
    rng_state: [u64; 4],
    wal_mark: WalMark,
) -> Vec<u8> {
    encode_iter(
        store.iter_entries(),
        store.len(),
        schema,
        rng_state,
        wal_mark,
    )
}

/// Encodes a snapshot from a frozen entry list (the off-thread snapshot
/// writer's input: the shard clones its store's entries at a group
/// boundary and hands them over, so encoding and file I/O happen off the
/// admission path). Produces byte-identical output to [`encode`] on the
/// same store state.
pub fn encode_entries(
    entries: &[(SubscriptionId, Subscription, Option<CoverParents>)],
    schema: &Schema,
    rng_state: [u64; 4],
    wal_mark: WalMark,
) -> Vec<u8> {
    encode_iter(
        entries.iter().map(|(id, sub, p)| (*id, sub, p.as_ref())),
        entries.len(),
        schema,
        rng_state,
        wal_mark,
    )
}

fn encode_iter<'a>(
    entries: impl Iterator<Item = (SubscriptionId, &'a Subscription, Option<&'a CoverParents>)>,
    count: usize,
    schema: &Schema,
    rng_state: [u64; 4],
    wal_mark: WalMark,
) -> Vec<u8> {
    let mut body = ByteWriter::with_capacity(64 + count * 40);
    body.schema(schema);
    for word in rng_state {
        body.u64(word);
    }
    body.u32(count as u32);
    for (id, sub, parents) in entries {
        match parents {
            None => {
                body.u8(KIND_ACTIVE);
                body.u64(id.0);
            }
            Some(CoverParents::Group) => {
                body.u8(KIND_COVERED_GROUP);
                body.u64(id.0);
            }
            Some(CoverParents::Single(parent)) => {
                body.u8(KIND_COVERED_SINGLE);
                body.u64(id.0);
                body.u64(parent.0);
            }
        }
        body.subscription(sub);
    }
    let mut mark = ByteWriter::with_capacity(20);
    mark.u64(wal_mark.segment);
    mark.u64(wal_mark.offset);
    mark.u32(wal_mark.crc);
    let mut file = SNAPSHOT_MAGIC.to_vec();
    file.extend_from_slice(&frame(body.bytes()));
    file.extend_from_slice(&frame(mark.bytes()));
    file
}

/// Decodes a snapshot file, validating magic, checksum, and `schema`.
///
/// Unlike a write-ahead log, a snapshot has no tolerated torn tail: the
/// file is renamed into place only after a complete write, so any
/// incomplete or checksum-failing content is corruption and surfaces as
/// an error (with a human-readable detail string).
pub fn decode(bytes: &[u8], schema: &Schema) -> Result<DecodedSnapshot, String> {
    let (rest, legacy_mark) = if let Some(rest) = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice()) {
        (rest, false)
    } else if let Some(rest) = bytes.strip_prefix(LEGACY_SNAPSHOT_MAGIC.as_slice()) {
        (rest, true)
    } else {
        return Err("snapshot magic missing or unsupported version".into());
    };
    let (payloads, span) = read_frames(rest);
    if payloads.len() != 2 || span != rest.len() {
        return Err("snapshot body incomplete or checksum-corrupt".into());
    }
    let mut m = ByteReader::new(payloads[1]);
    let mark = if legacy_mark {
        // The legacy mark counted bytes of the then-single `wal.bin`,
        // which the open-time migration renames to segment 1.
        WalMark {
            segment: 1,
            offset: m.u64().map_err(|e| format!("snapshot wal mark: {e}"))?,
            crc: m.u32().map_err(|e| format!("snapshot wal mark: {e}"))?,
        }
    } else {
        WalMark {
            segment: m.u64().map_err(|e| format!("snapshot wal mark: {e}"))?,
            offset: m.u64().map_err(|e| format!("snapshot wal mark: {e}"))?,
            crc: m.u32().map_err(|e| format!("snapshot wal mark: {e}"))?,
        }
    };
    if !m.is_empty() {
        return Err("trailing bytes after snapshot wal mark".into());
    }
    let mut r = ByteReader::new(payloads[0]);
    let file_schema = r.schema().map_err(|e| format!("snapshot schema: {e}"))?;
    if !file_schema.same_shape(schema) {
        return Err(format!(
            "snapshot was written for a different schema ({} attributes, service has {})",
            file_schema.len(),
            schema.len()
        ));
    }
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64().map_err(|e| format!("snapshot rng state: {e}"))?;
    }
    let count = r.u32().map_err(|e| format!("snapshot count: {e}"))? as usize;
    if count > payloads[0].len() / 9 {
        return Err("snapshot entry count exceeds payload size".into());
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let kind = r
            .u8()
            .map_err(|e| format!("snapshot entry {i} kind: {e}"))?;
        let id = SubscriptionId(r.u64().map_err(|e| format!("snapshot entry {i} id: {e}"))?);
        let parents = match kind {
            KIND_ACTIVE => None,
            KIND_COVERED_GROUP => Some(CoverParents::Group),
            KIND_COVERED_SINGLE => {
                let parent = r
                    .u64()
                    .map_err(|e| format!("snapshot entry {i} parent: {e}"))?;
                Some(CoverParents::Single(SubscriptionId(parent)))
            }
            _ => return Err(format!("snapshot entry {i} has unknown kind {kind}")),
        };
        let sub = r
            .subscription(schema)
            .map_err(|e| format!("snapshot entry {i} subscription: {e}"))?;
        entries.push((id, sub, parents));
    }
    if !r.is_empty() {
        return Err("trailing bytes after snapshot entries".into());
    }
    Ok(DecodedSnapshot {
        image: StoreImage { entries, rng_state },
        mark,
        legacy_mark,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_core::SubsumptionChecker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn populated_store(schema: &Schema) -> CoveringStore {
        let mut store = CoveringStore::new(SubsumptionChecker::default());
        let mut rng = StdRng::seed_from_u64(11);
        let sub = |lo: i64, hi: i64| {
            Subscription::builder(schema)
                .range("x0", lo, hi)
                .build()
                .unwrap()
        };
        store.insert(SubscriptionId(1), sub(0, 60), &mut rng);
        store.insert(SubscriptionId(2), sub(50, 99), &mut rng);
        store.insert(SubscriptionId(3), sub(10, 20), &mut rng); // pairwise under 1
        store.insert(SubscriptionId(4), sub(30, 80), &mut rng); // group-covered
        store
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let schema = Schema::uniform(2, 0, 99);
        let store = populated_store(&schema);
        let rng_state = StdRng::seed_from_u64(77).state();
        let mark = WalMark {
            segment: 7,
            offset: 123,
            crc: 0xDEAD_BEEF,
        };
        let bytes = encode(&store, &schema, rng_state, mark);
        let decoded = decode(&bytes, &schema).unwrap();
        assert_eq!(decoded.mark, mark);
        assert!(!decoded.legacy_mark);
        assert_eq!(decoded.image.rng_state, rng_state);
        let original: Vec<_> = store
            .iter_entries()
            .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
            .collect();
        assert_eq!(decoded.image.entries, original);
        let rebuilt =
            CoveringStore::from_entries(SubsumptionChecker::default(), decoded.image.entries)
                .unwrap();
        assert_eq!(rebuilt.active_len(), store.active_len());
        assert_eq!(rebuilt.covered_len(), store.covered_len());
    }

    #[test]
    fn encode_entries_matches_encode() {
        let schema = Schema::uniform(2, 0, 99);
        let store = populated_store(&schema);
        let mark = WalMark {
            segment: 2,
            offset: 64,
            crc: 1,
        };
        let frozen: Vec<_> = store
            .iter_entries()
            .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
            .collect();
        assert_eq!(
            encode(&store, &schema, [9, 8, 7, 6], mark),
            encode_entries(&frozen, &schema, [9, 8, 7, 6], mark),
            "frozen-entry encoding is byte-identical to direct store encoding"
        );
    }

    #[test]
    fn legacy_v1_snapshot_decodes_with_segment_one_mark() {
        let schema = Schema::uniform(2, 0, 99);
        let store = populated_store(&schema);
        let rng_state = StdRng::seed_from_u64(3).state();
        // Build a V1 file by hand: V1 magic, same body, 12-byte mark.
        let v2 = encode(&store, &schema, rng_state, WalMark::default_test());
        let body_and_marks = &v2[SNAPSHOT_MAGIC.len()..];
        let (payloads, _) = read_frames(body_and_marks);
        let mut legacy_mark = ByteWriter::with_capacity(12);
        legacy_mark.u64(456); // covered_bytes
        legacy_mark.u32(0xFEED_F00D);
        let mut v1 = LEGACY_SNAPSHOT_MAGIC.to_vec();
        v1.extend_from_slice(&frame(payloads[0]));
        v1.extend_from_slice(&frame(legacy_mark.bytes()));

        let decoded = decode(&v1, &schema).unwrap();
        assert!(decoded.legacy_mark);
        assert_eq!(
            decoded.mark,
            WalMark {
                segment: 1,
                offset: 456,
                crc: 0xFEED_F00D,
            }
        );
        assert_eq!(decoded.image.rng_state, rng_state);
        assert_eq!(decoded.image.entries.len(), store.len());
    }

    impl WalMark {
        fn default_test() -> WalMark {
            WalMark {
                segment: 1,
                offset: 0,
                crc: 0,
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let schema = Schema::uniform(2, 0, 99);
        let store = populated_store(&schema);
        let bytes = encode(&store, &schema, [1, 2, 3, 4], WalMark::default_test());
        // Bad magic.
        assert!(decode(&bytes[1..], &schema).is_err());
        // Flipped body byte (checksum catches it).
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(decode(&flipped, &schema).is_err());
        // Truncated file.
        assert!(decode(&bytes[..bytes.len() - 3], &schema).is_err());
    }

    #[test]
    fn schema_mismatch_is_detected() {
        let schema = Schema::uniform(2, 0, 99);
        let other = Schema::uniform(3, 0, 99);
        let store = populated_store(&schema);
        let bytes = encode(&store, &schema, [0; 4], WalMark::default_test());
        let err = decode(&bytes, &other).unwrap_err();
        assert!(err.contains("different schema"), "{err}");
    }
}
