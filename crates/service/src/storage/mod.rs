//! Durable shard stores: a segmented write-ahead log plus snapshots.
//!
//! Without this module a restart silently drops every subscription — fatal
//! at the ROADMAP's "millions of users" scale, where clients cannot be
//! expected to re-subscribe. With a `data_dir` configured (see
//! [`crate::ServiceConfig`]), each shard worker owns one directory:
//!
//! ```text
//! <data_dir>/shard-<i>/
//! ├── manifest.bin     oldest live segment id (atomic rename updates)
//! ├── wal.000001.log   numbered, bounded-size log segments …
//! ├── wal.000002.log   … appended in order, deleted whole, never rewritten
//! ├── snapshot.bin     the covering store's exact image (atomic rename)
//! ├── snapshot.tmp     in-flight snapshot (ignored on boot)
//! └── manifest.tmp     in-flight manifest update (ignored on boot)
//! ```
//!
//! ## Write path: group commit
//!
//! Operations hit the log *before* the in-memory store (write-ahead
//! discipline): an admission batch is one CRC-framed [`LogRecord`], an
//! unsubscription another. [`ShardStorage::append`] only writes;
//! durability comes from [`ShardStorage::commit`], which the shard worker
//! calls once per *group* — every command that arrived while the previous
//! fsync ran shares the next one. Under [`FsyncPolicy::Always`] a commit
//! fsyncs every segment touched since the last commit (acknowledgements
//! are released only after it returns, so "an acked op survives power
//! loss" holds at any write rate); under [`FsyncPolicy::Never`] commit is
//! a bookkeeping no-op and the OS flushes when it pleases.
//!
//! ## Segments
//!
//! The log rotates into numbered segments (`wal.000001.log`, …) once the
//! current one reaches `segment_bytes`. Segments are append-only and
//! immutable after rotation: they are deleted whole — never truncated or
//! rewritten — once a snapshot covers them, which makes them the natural
//! unit for the ROADMAP's federation log-shipping. `manifest.bin` names
//! the oldest segment still live; it is updated (atomically, tmp +
//! rename) *before* stale segments are deleted, so a crash between the
//! two leaves ignorable leftovers, never a hole.
//!
//! ## Snapshots
//!
//! Snapshot *writing* is not this module's job anymore — the shard worker
//! freezes a store image at a group boundary and a background thread
//! encodes and writes it through [`SnapshotSink`] (temp file, fsync,
//! atomic rename), then prunes covered segments. The snapshot's
//! [`WalMark`] names the exact log position it covers
//! (`segment`/`offset`/prefix CRC), so recovery knows where replay
//! starts without any log truncation — the pre-segmentation format's
//! truncate-on-snapshot dance (and its crash window) is gone.
//!
//! ## Recovery path
//!
//! On boot the shard loads `snapshot.bin` (if present), rebuilds the
//! store through [`CoveringStore::from_entries`] — no subsumption checks,
//! the covered/uncovered split is stored, not recomputed — and replays
//! the log suffix from the snapshot's mark through the normal admission
//! path. The rules, in order:
//!
//! - Segments older than the manifest watermark are leftovers of an
//!   interrupted prune: deleted, not read.
//! - The remaining segment ids must be contiguous from the watermark. A
//!   *gap* — or a frame that fails its checksum before the end of any
//!   non-final segment — is a hard [`StorageError::Corrupt`] error:
//!   middle-of-log damage cannot be explained by a crash and silently
//!   truncating there would drop acknowledged operations.
//! - The snapshot's covered prefix of its mark segment must re-checksum
//!   to the mark's CRC (damage there is real corruption too).
//! - A torn *final* record of the *final* segment (the append the
//!   previous process died inside) fails its length or CRC check and is
//!   truncated, not treated as corruption; everything before it is
//!   intact by construction. The dropped byte count is surfaced as
//!   [`Recovery::torn_tail_bytes`] and exported via the `wal_truncated`
//!   shard metric.
//!
//! Replay is exact: admission batches are logged in router order and
//! re-admitted through the same widest-first path, and the snapshot
//! carries the shard RNG state, so the rebuilt store reproduces the live
//! store's columns, parent links, and probabilistic decisions
//! bit-for-bit.
//!
//! A pre-segmentation directory (single `wal.bin`, `PSCSNAP1` snapshot)
//! is migrated on open: the log becomes segment 1 and the manifest is
//! created; the old snapshot's byte-counting mark maps onto segment 1
//! with the old lenient semantics (see [`snapshot`]).
//!
//! Every filesystem touch goes through the [`fs::StorageFs`] trait:
//! [`fs::RealFs`] in production, and the crash-injecting [`fs::CrashFs`]
//! in tests, which kills the storage at every I/O boundary and checks
//! that recovery never loses an acknowledged operation
//! (`tests/failure_injection.rs`).
//!
//! [`CoveringStore::from_entries`]: psc_matcher::CoveringStore::from_entries

pub mod fs;
pub mod record;
pub mod snapshot;

pub use fs::{CrashFs, LogFile, RealFs, StorageFs};
pub use record::LogRecord;
pub use snapshot::{StoreImage, WalMark};

use psc_matcher::RestoreError;
use psc_model::Schema;
use record::MAX_FRAME_PAYLOAD_BYTES;
use record::{crc32, crc32_finalize, crc32_update, frame, read_frames, CRC_INIT};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When appended log records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` once per commit group: an acknowledged operation survives
    /// power loss. The safe default — and with group commit the cost is
    /// amortized over every operation that arrived while the previous
    /// fsync was in flight.
    #[default]
    Always,
    /// Never `fsync` the log; the OS flushes when it pleases. An
    /// acknowledged operation survives a process crash (the bytes are in
    /// the page cache) but may be lost on power failure. Snapshots and
    /// the manifest are still fsynced — only the log hot path is relaxed.
    Never,
}

/// Configuration of one shard's storage, derived from
/// [`crate::ServiceConfig`] by the service layer.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// The shard's private directory (created if absent).
    pub dir: PathBuf,
    /// Log fsync policy.
    pub fsync: FsyncPolicy,
    /// Snapshot after this many log records (`0` = never snapshot; the
    /// log then grows without bound and recovery replays all of it).
    pub snapshot_every: u64,
    /// Rotate to a new log segment once the current one reaches this
    /// many bytes (`0` = never rotate). A segment may exceed the cap by
    /// at most one record: rotation happens before the append that finds
    /// the segment full.
    pub segment_bytes: u64,
}

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A durable file is damaged in a way a torn write cannot explain.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// A decoded snapshot image failed store validation.
    Restore(RestoreError),
    /// A record or snapshot exceeds the frame-payload cap and was not
    /// written (writing it would make it unreadable on recovery).
    RecordTooLarge {
        /// Encoded payload size.
        bytes: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O failed: {e}"),
            StorageError::Corrupt { file, detail } => {
                write!(f, "{} is corrupt: {detail}", file.display())
            }
            StorageError::Restore(e) => write!(f, "snapshot image invalid: {e}"),
            StorageError::RecordTooLarge { bytes } => write!(
                f,
                "record of {bytes} bytes exceeds the {MAX_FRAME_PAYLOAD_BYTES}-byte frame cap"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// The `io::ErrorKind` this failure maps to: the underlying kind for
    /// I/O failures (so callers can tell `PermissionDenied` or disk-full
    /// from data damage), `InvalidData` for corruption/validation.
    pub fn io_kind(&self) -> io::ErrorKind {
        match self {
            StorageError::Io(e) => e.kind(),
            StorageError::Corrupt { .. } | StorageError::Restore(_) => io::ErrorKind::InvalidData,
            StorageError::RecordTooLarge { .. } => io::ErrorKind::InvalidInput,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// What [`ShardStorage::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The latest snapshot, if one exists.
    pub image: Option<StoreImage>,
    /// Valid log records the snapshot does not cover, in append order.
    pub records: Vec<LogRecord>,
    /// Bytes truncated off the final segment's torn tail (0 on a clean
    /// shutdown).
    pub torn_tail_bytes: u64,
}

const LEGACY_WAL_FILE: &str = "wal.bin";
pub(crate) const MANIFEST_FILE: &str = "manifest.bin";
const MANIFEST_TMP_FILE: &str = "manifest.tmp";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";
const MANIFEST_MAGIC: &[u8; 8] = b"PSCMANI1";

/// The file name of log segment `id` (`wal.000001.log`, …).
pub fn segment_file_name(id: u64) -> String {
    format!("wal.{id:06}.log")
}

pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    if digits.len() < 6 || digits.bytes().any(|b| !b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn corrupt(file: PathBuf, detail: String) -> StorageError {
    StorageError::Corrupt { file, detail }
}

/// Writes the manifest atomically: temp file, fsync, rename, dir sync.
/// The manifest is tiny (one id) but load-bearing — it is the watermark
/// recovery trusts to distinguish "pruned behind a snapshot" from "a
/// segment is missing".
fn write_manifest(fs: &dyn StorageFs, dir: &Path, oldest: u64) -> Result<(), StorageError> {
    let mut bytes = MANIFEST_MAGIC.to_vec();
    bytes.extend_from_slice(&frame(&oldest.to_le_bytes()));
    let tmp = dir.join(MANIFEST_TMP_FILE);
    let mut file = fs.create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync()?;
    drop(file);
    fs.rename(&tmp, &dir.join(MANIFEST_FILE))?;
    fs.sync_dir(dir)?;
    Ok(())
}

fn decode_manifest(bytes: &[u8]) -> Result<u64, String> {
    let rest = bytes
        .strip_prefix(MANIFEST_MAGIC.as_slice())
        .ok_or("manifest magic missing or unsupported version")?;
    let (payloads, span) = read_frames(rest);
    if payloads.len() != 1 || span != rest.len() {
        return Err("manifest incomplete or checksum-corrupt".into());
    }
    let body: [u8; 8] = payloads[0]
        .try_into()
        .map_err(|_| "manifest body malformed".to_string())?;
    Ok(u64::from_le_bytes(body))
}

/// One shard's durable storage: the open tail of a segmented write-ahead
/// log. Owned by the shard worker thread; all methods are `&mut`.
///
/// The worker owns segment creation and appends; the snapshot writer
/// thread (via [`SnapshotSink`]) owns `snapshot.bin`, the manifest, and
/// deletion of covered segments. The two never touch the same file, so
/// neither needs a lock.
#[derive(Debug)]
pub struct ShardStorage {
    fs: Arc<dyn StorageFs>,
    dir: PathBuf,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    segment_bytes: u64,
    /// Open handle of the current (highest-numbered) segment.
    wal: Box<dyn LogFile>,
    current_segment: u64,
    /// Frame-aligned byte length of the current segment.
    wal_len: u64,
    /// Streaming CRC register over the current segment's content,
    /// maintained across appends so snapshots can record a [`WalMark`]
    /// without re-reading the file.
    wal_crc_state: u32,
    /// Segments written to (and, on rotation, retired) since the last
    /// commit; a commit fsyncs all of them oldest-first.
    retired_dirty: Vec<Box<dyn LogFile>>,
    rotated_since_commit: bool,
    appends_since_commit: u64,
    records_since_snapshot: u64,
    wal_records_appended: u64,
    truncated_on_open: u64,
    group_commits: u64,
    segments_rotated: u64,
    pruned_on_open: u64,
}

impl ShardStorage {
    /// Opens (creating if absent) a shard directory on the real
    /// filesystem and recovers its contents. See
    /// [`open_with_fs`](ShardStorage::open_with_fs).
    pub fn open(
        config: StorageConfig,
        schema: &Schema,
    ) -> Result<(ShardStorage, Recovery), StorageError> {
        ShardStorage::open_with_fs(config, schema, Arc::new(RealFs))
    }

    /// Opens a shard directory through an explicit [`StorageFs`] (the
    /// crash-injection seam) and recovers its contents: the snapshot
    /// image plus the log suffix the snapshot does not cover, applying
    /// the recovery rules in the [module docs](self).
    pub fn open_with_fs(
        config: StorageConfig,
        schema: &Schema,
        fs: Arc<dyn StorageFs>,
    ) -> Result<(ShardStorage, Recovery), StorageError> {
        let dir = config.dir.clone();
        fs.create_dir_all(&dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);

        // Migrate a pre-segmentation directory: the single log becomes
        // segment 1 (rename is atomic; a crash re-runs the migration).
        let names = fs.list_dir(&dir)?;
        if !names.iter().any(|n| n == MANIFEST_FILE) && names.iter().any(|n| n == LEGACY_WAL_FILE) {
            fs.rename(&dir.join(LEGACY_WAL_FILE), &dir.join(segment_file_name(1)))?;
            write_manifest(fs.as_ref(), &dir, 1)?;
        }

        let oldest = match fs.read(&manifest_path) {
            Ok(bytes) => {
                decode_manifest(&bytes).map_err(|detail| corrupt(manifest_path.clone(), detail))?
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Fresh directory — unless segments exist, in which case
                // the watermark is gone and "which segments should
                // exist" is unanswerable: hard error, not a guess.
                let names = fs.list_dir(&dir)?;
                if names.iter().any(|n| parse_segment_name(n).is_some()) {
                    return Err(corrupt(
                        manifest_path,
                        "log segments present without a manifest".into(),
                    ));
                }
                write_manifest(fs.as_ref(), &dir, 1)?;
                1
            }
            Err(e) => return Err(e.into()),
        };

        // Segment inventory: ids behind the watermark are leftovers of a
        // prune interrupted between manifest update and deletion —
        // covered by the snapshot that advanced the watermark, so they
        // are deleted unread. What remains must be contiguous.
        let mut segments: Vec<u64> = fs
            .list_dir(&dir)?
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .collect();
        segments.sort_unstable();
        let mut pruned_on_open = 0u64;
        segments.retain(|&id| {
            if id < oldest {
                let _ = fs.remove_file(&dir.join(segment_file_name(id)));
                pruned_on_open += 1;
                false
            } else {
                true
            }
        });
        if let (Some(&first), Some(&last)) = (segments.first(), segments.last()) {
            if first != oldest || last - first + 1 != segments.len() as u64 {
                return Err(corrupt(
                    manifest_path,
                    format!(
                        "segment sequence has a gap: manifest expects {oldest}.., found {segments:?}"
                    ),
                ));
            }
        }
        let last = segments.last().copied();

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let decoded = match fs.read(&snapshot_path) {
            Ok(bytes) => Some(
                snapshot::decode(&bytes, schema)
                    .map_err(|detail| corrupt(snapshot_path.clone(), detail))?,
            ),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        // Where replay starts: the first byte the snapshot does not cover.
        let (start_seg, start_off) = match &decoded {
            None => (oldest, 0u64),
            Some(d) if d.legacy_mark => {
                // Pre-segmentation semantics: the mark matched the log
                // only when the process died between snapshot rename and
                // log truncation; a non-matching mark means the log was
                // truncated (and possibly refilled) and replays in full.
                let matched = segments.contains(&1) && {
                    let bytes = fs.read(&dir.join(segment_file_name(1)))?;
                    d.mark.offset as usize <= bytes.len()
                        && crc32(&bytes[..d.mark.offset as usize]) == d.mark.crc
                };
                if matched {
                    (1, d.mark.offset)
                } else {
                    (oldest, 0)
                }
            }
            Some(d) => {
                let Some(last) = last else {
                    return Err(corrupt(
                        snapshot_path,
                        "snapshot present but its covered log segments are missing".into(),
                    ));
                };
                if d.mark.segment < oldest || d.mark.segment > last {
                    return Err(corrupt(
                        snapshot_path,
                        format!(
                            "snapshot covers up to segment {} but segments {oldest}..={last} are on disk",
                            d.mark.segment
                        ),
                    ));
                }
                (d.mark.segment, d.mark.offset)
            }
        };

        // Read and replay-decode every uncovered byte.
        let mut records = Vec::new();
        let mut torn_tail_bytes = 0u64;
        let mut current_content = Vec::new();
        for &id in &segments {
            if id < start_seg {
                continue; // fully covered by the snapshot
            }
            let path = dir.join(segment_file_name(id));
            let bytes = fs.read(&path)?;
            let from = if id == start_seg {
                start_off as usize
            } else {
                0
            };
            if id == start_seg && from > 0 {
                if from > bytes.len() {
                    return Err(corrupt(
                        path,
                        format!(
                            "segment holds {} bytes but the snapshot covers {from} — \
                             covered log content is gone (power loss under FsyncPolicy::Never?)",
                            bytes.len()
                        ),
                    ));
                }
                if crc32(&bytes[..from])
                    != decoded.as_ref().expect("mark implies snapshot").mark.crc
                {
                    return Err(corrupt(
                        path,
                        "snapshot-covered prefix fails the snapshot's checksum".into(),
                    ));
                }
            }
            let tail = &bytes[from..];
            let (payloads, valid_span) = read_frames(tail);
            for p in &payloads {
                records.push(LogRecord::decode(p, schema).map_err(|e| {
                    corrupt(
                        path.clone(),
                        format!("record decodes as garbage despite a valid checksum: {e}"),
                    )
                })?);
            }
            let is_last = Some(id) == last;
            if !is_last && from + valid_span != bytes.len() {
                // Only the final segment's final record can be torn — a
                // rotated segment was complete when the next one was
                // created, so damage here is mid-log corruption whose
                // silent truncation would drop every later record.
                return Err(corrupt(
                    path,
                    format!(
                        "invalid frame {} bytes into a non-final segment (mid-log damage)",
                        from + valid_span
                    ),
                ));
            }
            if is_last {
                torn_tail_bytes = (tail.len() - valid_span) as u64;
                current_content = bytes;
                current_content.truncate(from + valid_span);
            }
        }

        // Complete an interrupted prune: segments fully behind the
        // snapshot's mark linger if the writer crashed before advancing
        // the manifest. Advance it now and delete them (same order).
        if start_seg > oldest {
            write_manifest(fs.as_ref(), &dir, start_seg)?;
            for id in oldest..start_seg {
                if segments.contains(&id) {
                    fs.remove_file(&dir.join(segment_file_name(id)))?;
                    pruned_on_open += 1;
                }
            }
        }

        // Open the current segment for appending (creating it fresh on a
        // new directory) and drop any torn tail so the next append
        // starts on a frame boundary.
        let current_segment = last.unwrap_or(oldest);
        let mut wal = fs.open_append(&dir.join(segment_file_name(current_segment)))?;
        if torn_tail_bytes > 0 {
            wal.set_len(current_content.len() as u64)?;
        }

        let storage = ShardStorage {
            fs,
            dir,
            fsync: config.fsync,
            snapshot_every: config.snapshot_every,
            segment_bytes: config.segment_bytes,
            wal,
            current_segment,
            wal_len: current_content.len() as u64,
            wal_crc_state: crc32_update(CRC_INIT, &current_content),
            retired_dirty: Vec::new(),
            rotated_since_commit: false,
            appends_since_commit: 0,
            records_since_snapshot: records.len() as u64,
            wal_records_appended: 0,
            truncated_on_open: torn_tail_bytes,
            group_commits: 0,
            segments_rotated: 0,
            pruned_on_open,
        };
        Ok((
            storage,
            Recovery {
                image: decoded.map(|d| d.image),
                records,
                torn_tail_bytes,
            },
        ))
    }

    /// Appends one record to the log (write-ahead: call this *before*
    /// applying the operation to the in-memory store), rotating to a
    /// fresh segment when the current one is full. **Does not fsync** —
    /// durability comes from the next [`commit`](ShardStorage::commit),
    /// and acknowledgements must be withheld until it returns.
    ///
    /// Refuses a record whose encoding exceeds
    /// [`MAX_FRAME_PAYLOAD_BYTES`]: writing it would "succeed" but read
    /// back as a torn tail, silently discarding it *and every record
    /// after it* on the next boot. Failing the append keeps the
    /// degradation visible (the shard counts a storage error) and the
    /// log readable.
    pub fn append(&mut self, record: &LogRecord) -> Result<(), StorageError> {
        let payload = record.encode();
        if payload.len() > MAX_FRAME_PAYLOAD_BYTES {
            return Err(StorageError::RecordTooLarge {
                bytes: payload.len(),
            });
        }
        if self.segment_bytes > 0 && self.wal_len >= self.segment_bytes {
            self.rotate()?;
        }
        let framed = frame(&payload);
        if let Err(e) = self.wal.write_all(&framed) {
            // A failed write may have left a *partial* frame at the tail;
            // later successful appends written after it would be lost
            // behind the garbage on the next boot. Roll the file back to
            // the last frame boundary so the log stays readable
            // (best-effort; if this also fails, recovery's torn-tail
            // truncation still bounds the damage to this record).
            let _ = self.wal.set_len(self.wal_len);
            return Err(e.into());
        }
        self.wal_len += framed.len() as u64;
        self.wal_crc_state = crc32_update(self.wal_crc_state, &framed);
        self.records_since_snapshot += 1;
        self.wal_records_appended += 1;
        self.appends_since_commit += 1;
        Ok(())
    }

    /// Starts the next segment. The retired segment's handle is kept
    /// until the next commit so its unsynced appends are covered by the
    /// same fsync group as the records after the rotation.
    fn rotate(&mut self) -> Result<(), StorageError> {
        let next = self.current_segment + 1;
        let file = self.fs.create(&self.dir.join(segment_file_name(next)))?;
        let retired = std::mem::replace(&mut self.wal, file);
        self.retired_dirty.push(retired);
        self.rotated_since_commit = true;
        self.current_segment = next;
        self.wal_len = 0;
        self.wal_crc_state = CRC_INIT;
        self.segments_rotated += 1;
        Ok(())
    }

    /// Commits everything appended since the last commit: one fsync per
    /// touched segment (oldest first, so durability is always a log
    /// *prefix*), plus a directory sync if a rotation created a segment.
    /// Under [`FsyncPolicy::Never`] this only resets the group
    /// bookkeeping. A no-op (and not counted) when nothing was appended.
    ///
    /// The caller must release operation acknowledgements only after
    /// this returns `Ok` — that is the group-commit contract.
    pub fn commit(&mut self) -> Result<(), StorageError> {
        if self.appends_since_commit == 0 && !self.rotated_since_commit {
            return Ok(());
        }
        if self.fsync == FsyncPolicy::Always {
            // On failure the dirty set is retained: the next commit
            // retries the fsyncs, so a transiently unwell disk degrades
            // durability only for as long as it stays unwell.
            for file in &mut self.retired_dirty {
                file.sync()?;
            }
            self.wal.sync()?;
            if self.rotated_since_commit {
                // Persist the rotation's directory entry: a synced
                // segment whose *name* is not durable would vanish
                // wholesale on power loss.
                self.fs.sync_dir(&self.dir)?;
            }
        }
        self.retired_dirty.clear();
        self.rotated_since_commit = false;
        self.appends_since_commit = 0;
        self.group_commits += 1;
        Ok(())
    }

    /// The current end-of-log position, as a [`WalMark`] a snapshot of
    /// the current store state should carry. Only meaningful at a group
    /// boundary (after [`commit`](ShardStorage::commit)), when the
    /// position is durable and matches the applied store state.
    pub fn wal_position(&self) -> WalMark {
        WalMark {
            segment: self.current_segment,
            offset: self.wal_len,
            crc: crc32_finalize(self.wal_crc_state),
        }
    }

    /// Whether the snapshot cadence says it is time to snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every
    }

    /// Resets the snapshot cadence counter. Called when a snapshot job is
    /// handed to the background writer — on failure the caller retries
    /// after another `snapshot_every` records rather than re-freezing the
    /// store on every subsequent command while the disk is unwell.
    pub fn snapshot_dispatched(&mut self) {
        self.records_since_snapshot = 0;
    }

    /// A handle for the background snapshot writer thread: owns snapshot
    /// files, the manifest, and covered-segment deletion — disjoint from
    /// the files this (worker-owned) struct appends to.
    pub fn sink(&self) -> SnapshotSink {
        SnapshotSink {
            fs: Arc::clone(&self.fs),
            dir: self.dir.clone(),
        }
    }

    /// Records appended since the last snapshot dispatch (or open).
    pub fn records_since_snapshot(&self) -> u64 {
        self.records_since_snapshot
    }

    /// Records appended by this instance.
    pub fn wal_records_appended(&self) -> u64 {
        self.wal_records_appended
    }

    /// Commit groups completed (each is at most one fsync under
    /// [`FsyncPolicy::Always`]); `wal_records_appended / group_commits`
    /// is the realized group-commit amortization.
    pub fn group_commits(&self) -> u64 {
        self.group_commits
    }

    /// Segment rotations performed by this instance.
    pub fn segments_rotated(&self) -> u64 {
        self.segments_rotated
    }

    /// Covered segments deleted during open (leftovers of an interrupted
    /// prune).
    pub fn pruned_on_open(&self) -> u64 {
        self.pruned_on_open
    }

    /// The id of the segment currently being appended to.
    pub fn current_segment(&self) -> u64 {
        self.current_segment
    }

    /// Bytes truncated off the log's tail when this instance opened
    /// (0 after a clean shutdown; at most one record after a crash
    /// mid-append — anything larger indicates mid-log damage).
    pub fn truncated_on_open(&self) -> u64 {
        self.truncated_on_open
    }

    /// The shard's storage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The snapshot writer's half of a shard's storage: writes `snapshot.bin`
/// atomically and prunes covered segments. Created by
/// [`ShardStorage::sink`] and moved to the background writer thread; its
/// file set (snapshot, manifest, segments behind the mark) is disjoint
/// from the worker's (the current segment and newer), so the two threads
/// share the directory without locks.
#[derive(Debug, Clone)]
pub struct SnapshotSink {
    fs: Arc<dyn StorageFs>,
    dir: PathBuf,
}

impl SnapshotSink {
    /// Writes `snapshot_bytes` (produced by [`snapshot::encode_entries`])
    /// atomically — temp file, fsync, rename, directory sync. Snapshots
    /// exist to be read after a crash, so they are always synced
    /// regardless of the log's [`FsyncPolicy`]. Crash-ordering: the
    /// rename is the commit point; dying before it leaves the previous
    /// snapshot + a longer replay, never a torn snapshot.
    pub fn write_snapshot(&self, snapshot_bytes: &[u8]) -> Result<(), StorageError> {
        if snapshot_bytes.len() > MAX_FRAME_PAYLOAD_BYTES {
            // An over-cap snapshot would decode as corrupt on the next
            // boot; refusing keeps the previous (readable) snapshot in
            // place and surfaces the condition as a storage error.
            return Err(StorageError::RecordTooLarge {
                bytes: snapshot_bytes.len(),
            });
        }
        let tmp = self.dir.join(SNAPSHOT_TMP_FILE);
        let dst = self.dir.join(SNAPSHOT_FILE);
        let mut file = self.fs.create(&tmp)?;
        file.write_all(snapshot_bytes)?;
        file.sync()?;
        drop(file);
        self.fs.rename(&tmp, &dst)?;
        self.fs.sync_dir(&self.dir)?;
        Ok(())
    }

    /// Deletes every segment with id < `below` (all fully covered by the
    /// snapshot whose mark points into segment `below`). The manifest
    /// advances *first*: a crash after the manifest update leaves
    /// deletable leftovers the next open removes, while the reverse
    /// order could leave a manifest claiming segments that are gone.
    /// Returns how many segments were deleted.
    pub fn prune_segments(&self, below: u64) -> Result<u64, StorageError> {
        let stale: Vec<u64> = self
            .fs
            .list_dir(&self.dir)?
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .filter(|&id| id < below)
            .collect();
        if stale.is_empty() {
            return Ok(0);
        }
        write_manifest(self.fs.as_ref(), &self.dir, below)?;
        for &id in &stale {
            self.fs.remove_file(&self.dir.join(segment_file_name(id)))?;
        }
        Ok(stale.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::{Subscription, SubscriptionId};

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "psc-storage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path, snapshot_every: u64) -> StorageConfig {
        StorageConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            snapshot_every,
            segment_bytes: 0,
        }
    }

    fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
        Subscription::builder(schema)
            .range("x0", lo, hi)
            .build()
            .unwrap()
    }

    #[test]
    fn log_survives_reopen() {
        let schema = schema();
        let dir = temp_dir("reopen");
        let records = vec![
            LogRecord::Admit(vec![(SubscriptionId(1), sub(&schema, 0, 50))]),
            LogRecord::Unsubscribe(SubscriptionId(1)),
        ];
        {
            let (mut storage, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
            assert!(recovery.image.is_none());
            assert!(recovery.records.is_empty());
            for r in &records {
                storage.append(r).unwrap();
            }
            storage.commit().unwrap();
            assert_eq!(storage.group_commits(), 1, "one group, one commit");
        }
        let (_, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records, records);
        assert_eq!(recovery.torn_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let schema = schema();
        let dir = temp_dir("torn");
        {
            let (mut storage, _) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
            storage
                .append(&LogRecord::Admit(vec![(
                    SubscriptionId(1),
                    sub(&schema, 0, 50),
                )]))
                .unwrap();
            storage
                .append(&LogRecord::Unsubscribe(SubscriptionId(9)))
                .unwrap();
            storage.commit().unwrap();
        }
        // Tear the final record: chop 3 bytes off the file.
        let wal_path = dir.join(segment_file_name(1));
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (mut storage, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records.len(), 1, "torn record dropped");
        assert!(recovery.torn_tail_bytes > 0);
        // The log is usable again: append and reopen cleanly.
        storage
            .append(&LogRecord::Unsubscribe(SubscriptionId(2)))
            .unwrap();
        storage.commit().unwrap();
        drop(storage);
        let (_, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records.len(), 2);
        assert_eq!(recovery.torn_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_bounds_segments_and_replay_spans_them() {
        let schema = schema();
        let dir = temp_dir("rotate");
        let records: Vec<LogRecord> = (0..20)
            .map(|i| LogRecord::Admit(vec![(SubscriptionId(i), sub(&schema, 0, 50))]))
            .collect();
        {
            let mut cfg = config(&dir, 0);
            cfg.segment_bytes = 64; // tiny: force many rotations
            let (mut storage, _) = ShardStorage::open(cfg, &schema).unwrap();
            for r in &records {
                storage.append(r).unwrap();
            }
            storage.commit().unwrap();
            assert!(storage.segments_rotated() >= 3, "tiny cap rotates");
            assert_eq!(storage.current_segment(), storage.segments_rotated() + 1);
        }
        // Replay across segments equals the single-log record sequence.
        let (_, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_middle_segment_is_a_hard_error() {
        let schema = schema();
        let dir = temp_dir("gap");
        {
            let mut cfg = config(&dir, 0);
            cfg.segment_bytes = 64;
            let (mut storage, _) = ShardStorage::open(cfg, &schema).unwrap();
            for i in 0..20 {
                storage
                    .append(&LogRecord::Admit(vec![(
                        SubscriptionId(i),
                        sub(&schema, 0, 50),
                    )]))
                    .unwrap();
            }
            storage.commit().unwrap();
            assert!(storage.current_segment() >= 3);
        }
        std::fs::remove_file(dir.join(segment_file_name(2))).unwrap();
        match ShardStorage::open(config(&dir, 0), &schema) {
            Err(StorageError::Corrupt { detail, .. }) => {
                assert!(detail.contains("gap"), "{detail}");
            }
            other => panic!("expected gap corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_is_a_hard_error() {
        let schema = schema();
        let dir = temp_dir("midrot");
        {
            let mut cfg = config(&dir, 0);
            cfg.segment_bytes = 64;
            let (mut storage, _) = ShardStorage::open(cfg, &schema).unwrap();
            for i in 0..20 {
                storage
                    .append(&LogRecord::Admit(vec![(
                        SubscriptionId(i),
                        sub(&schema, 0, 50),
                    )]))
                    .unwrap();
            }
            storage.commit().unwrap();
        }
        // Flip a payload byte in segment 2 (a non-final segment).
        let path = dir.join(segment_file_name(2));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match ShardStorage::open(config(&dir, 0), &schema) {
            Err(StorageError::Corrupt { detail, .. }) => {
                assert!(detail.contains("non-final segment"), "{detail}");
            }
            other => panic!("expected mid-log corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_sink_prunes_covered_segments() {
        use psc_core::SubsumptionChecker;
        use psc_matcher::CoveringStore;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schema = schema();
        let dir = temp_dir("prune");
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = CoveringStore::new(SubsumptionChecker::default());

        let mut cfg = config(&dir, 2);
        cfg.segment_bytes = 64;
        let (mut storage, _) = ShardStorage::open(cfg.clone(), &schema).unwrap();
        for i in 0..10u64 {
            let s = sub(&schema, 0, 40 + i as i64);
            storage
                .append(&LogRecord::Admit(vec![(SubscriptionId(i), s.clone())]))
                .unwrap();
            store.insert(SubscriptionId(i), s, &mut rng);
        }
        storage.commit().unwrap();
        assert!(storage.snapshot_due());
        let mark = storage.wal_position();
        assert!(mark.segment > 2, "rotation happened");

        // What the background writer does: encode the frozen image, write
        // it atomically, prune covered segments.
        let entries: Vec<_> = store
            .iter_entries()
            .map(|(id, s, p)| (id, s.clone(), p.cloned()))
            .collect();
        let bytes = snapshot::encode_entries(&entries, &schema, rng.state(), mark);
        let sink = storage.sink();
        sink.write_snapshot(&bytes).unwrap();
        let pruned = sink.prune_segments(mark.segment).unwrap();
        assert_eq!(pruned, mark.segment - 1, "everything behind the mark");
        storage.snapshot_dispatched();
        assert_eq!(storage.records_since_snapshot(), 0);

        // Append two more records after the snapshot, then reopen: the
        // image restores and only the uncovered suffix replays.
        let after: Vec<LogRecord> = (10..12u64)
            .map(|i| LogRecord::Admit(vec![(SubscriptionId(i), sub(&schema, 0, 9))]))
            .collect();
        for r in &after {
            storage.append(r).unwrap();
        }
        storage.commit().unwrap();
        drop(storage);

        let (reopened, recovery) = ShardStorage::open(cfg, &schema).unwrap();
        let image = recovery.image.expect("snapshot loaded");
        assert_eq!(image.rng_state, rng.state());
        assert_eq!(image.entries.len(), 10);
        assert_eq!(recovery.records, after);
        assert_eq!(recovery.torn_tail_bytes, 0);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_prune_completes_on_open() {
        use psc_core::SubsumptionChecker;
        use psc_matcher::CoveringStore;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schema = schema();
        let dir = temp_dir("prune-crash");
        let mut cfg = config(&dir, 0);
        cfg.segment_bytes = 64;
        let (mut storage, _) = ShardStorage::open(cfg.clone(), &schema).unwrap();
        for i in 0..10u64 {
            storage
                .append(&LogRecord::Admit(vec![(
                    SubscriptionId(i),
                    sub(&schema, 0, 50),
                )]))
                .unwrap();
        }
        storage.commit().unwrap();
        let mark = storage.wal_position();
        assert!(mark.segment > 2);

        // Snapshot lands, but the process "dies" before pruning: covered
        // segments linger behind the mark.
        let store = {
            let mut rng = StdRng::seed_from_u64(1);
            let mut s = CoveringStore::new(SubsumptionChecker::default());
            for i in 0..10u64 {
                s.insert(SubscriptionId(i), sub(&schema, 0, 50), &mut rng);
            }
            s
        };
        let bytes = snapshot::encode(&store, &schema, [1, 2, 3, 4], mark);
        storage.sink().write_snapshot(&bytes).unwrap();
        drop(storage);

        let (reopened, recovery) = ShardStorage::open(cfg.clone(), &schema).unwrap();
        assert!(recovery.image.is_some());
        assert!(recovery.records.is_empty(), "everything covered");
        assert_eq!(
            reopened.pruned_on_open(),
            mark.segment - 1,
            "open completed the interrupted prune"
        );
        for id in 1..mark.segment {
            assert!(!dir.join(segment_file_name(id)).exists());
        }
        drop(reopened);
        // And the state is stable: a further reopen finds no leftovers.
        let (reopened, _) = ShardStorage::open(cfg, &schema).unwrap();
        assert_eq!(reopened.pruned_on_open(), 0);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_layout_migrates_on_open() {
        let schema = schema();
        let dir = temp_dir("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-segmentation directory: a bare `wal.bin`, no manifest.
        let records = vec![
            LogRecord::Admit(vec![(SubscriptionId(1), sub(&schema, 0, 50))]),
            LogRecord::Unsubscribe(SubscriptionId(1)),
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&frame(&r.encode()));
        }
        std::fs::write(dir.join(LEGACY_WAL_FILE), &bytes).unwrap();

        let (storage, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records, records);
        assert_eq!(storage.current_segment(), 1);
        assert!(!dir.join(LEGACY_WAL_FILE).exists(), "renamed to segment 1");
        assert!(dir.join(segment_file_name(1)).exists());
        assert!(dir.join(MANIFEST_FILE).exists());
        drop(storage);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let schema = schema();
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"PSCSNAP2 not a snapshot").unwrap();
        match ShardStorage::open(config(&dir, 0), &schema) {
            Err(StorageError::Corrupt { file, .. }) => {
                assert!(file.ends_with(SNAPSHOT_FILE));
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_without_manifest_are_an_error() {
        let schema = schema();
        let dir = temp_dir("no-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(segment_file_name(3)), b"").unwrap();
        match ShardStorage::open(config(&dir, 0), &schema) {
            Err(StorageError::Corrupt { detail, .. }) => {
                assert!(detail.contains("manifest"), "{detail}");
            }
            other => panic!("expected manifest error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(1), "wal.000001.log");
        assert_eq!(parse_segment_name("wal.000001.log"), Some(1));
        assert_eq!(parse_segment_name("wal.1234567.log"), Some(1_234_567));
        assert_eq!(parse_segment_name("wal.bin"), None);
        assert_eq!(parse_segment_name("wal.00001.log"), None, "too few digits");
        assert_eq!(parse_segment_name("wal.00000x.log"), None);
        assert_eq!(parse_segment_name("snapshot.bin"), None);
    }
}
