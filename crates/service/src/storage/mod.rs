//! Durable shard stores: a per-shard write-ahead log plus snapshots.
//!
//! Without this module a restart silently drops every subscription — fatal
//! at the ROADMAP's "millions of users" scale, where clients cannot be
//! expected to re-subscribe. With a `data_dir` configured (see
//! [`crate::ServiceConfig`]), each shard worker owns one directory:
//!
//! ```text
//! <data_dir>/shard-<i>/
//! ├── wal.bin        append-only log of admissions/unsubscriptions
//! ├── snapshot.bin   the covering store's exact image (atomic rename)
//! ├── snapshot.tmp   in-flight snapshot (ignored on boot)
//! └── wal.tmp        in-flight log compaction (ignored on boot)
//! ```
//!
//! ## Write path
//!
//! Operations hit the log *before* the in-memory store (write-ahead
//! discipline): an admission batch is one CRC-framed [`LogRecord`], an
//! unsubscription another. [`FsyncPolicy`] decides whether each append is
//! fsynced (`Always` — survives power loss) or left to the OS page cache
//! (`Never` — survives process crashes, costs nothing on the hot path).
//! Every `snapshot_every` records the shard writes a fresh
//! [`snapshot`] — temp file, fsync, atomic rename — and truncates the
//! log, bounding both recovery time and disk use.
//!
//! ## Recovery path
//!
//! On boot the shard loads `snapshot.bin` (if present), rebuilds the
//! store through [`CoveringStore::from_entries`] — no subsumption checks,
//! the covered/uncovered split is stored, not recomputed — and replays
//! `wal.bin` through the normal admission path. A *torn tail* (a record
//! the previous process died while writing) fails its length or CRC check
//! and is truncated, not treated as corruption; everything before it is
//! intact by construction. A corrupt *snapshot* is an error: snapshots
//! are renamed into place only after a complete write, so damage there is
//! real corruption and must not be silently served.
//!
//! **Known limitation:** a bad frame in the *middle* of the log (a bit
//! flip, a partial page write on exotic filesystems) is indistinguishable
//! from a torn tail — reading stops there and later records are dropped
//! with the tail. The dropped byte count is never silent, though: it is
//! surfaced as [`Recovery::torn_tail_bytes`] and exported on the wire via
//! the `wal_truncated` shard metric, so a truncation that is larger than
//! one record (the most a genuine torn tail can be) is visible to
//! operators. Per-record sequence numbers would disambiguate fully and
//! are a ROADMAP follow-on.
//!
//! Replay is exact: admission batches are logged in router order and
//! re-admitted through the same widest-first path, and the snapshot
//! carries the shard RNG state, so the rebuilt store reproduces the live
//! store's columns, parent links, and probabilistic decisions
//! bit-for-bit.
//!
//! [`CoveringStore::from_entries`]: psc_matcher::CoveringStore::from_entries

pub mod record;
pub mod snapshot;

pub use record::LogRecord;
pub use snapshot::StoreImage;

use psc_matcher::RestoreError;
use psc_model::Schema;
use record::MAX_FRAME_PAYLOAD_BYTES;
use record::{crc32, crc32_finalize, crc32_update, frame, read_frames, CRC_INIT};
use snapshot::WalMark;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// When appended log records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged operation survives
    /// power loss. The safe default.
    #[default]
    Always,
    /// Never `fsync` the log; the OS flushes when it pleases. An
    /// acknowledged operation survives a process crash (the bytes are in
    /// the page cache) but may be lost on power failure. Snapshots are
    /// still fsynced — only the per-record hot path is relaxed.
    Never,
}

/// Configuration of one shard's storage, derived from
/// [`crate::ServiceConfig`] by the service layer.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// The shard's private directory (created if absent).
    pub dir: PathBuf,
    /// Log fsync policy.
    pub fsync: FsyncPolicy,
    /// Snapshot after this many log records (`0` = never snapshot; the
    /// log then grows without bound and recovery replays all of it).
    pub snapshot_every: u64,
}

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A durable file is damaged in a way a torn write cannot explain.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// A decoded snapshot image failed store validation.
    Restore(RestoreError),
    /// A record or snapshot exceeds the frame-payload cap and was not
    /// written (writing it would make it unreadable on recovery).
    RecordTooLarge {
        /// Encoded payload size.
        bytes: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O failed: {e}"),
            StorageError::Corrupt { file, detail } => {
                write!(f, "{} is corrupt: {detail}", file.display())
            }
            StorageError::Restore(e) => write!(f, "snapshot image invalid: {e}"),
            StorageError::RecordTooLarge { bytes } => write!(
                f,
                "record of {bytes} bytes exceeds the {MAX_FRAME_PAYLOAD_BYTES}-byte frame cap"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// The `io::ErrorKind` this failure maps to: the underlying kind for
    /// I/O failures (so callers can tell `PermissionDenied` or disk-full
    /// from data damage), `InvalidData` for corruption/validation.
    pub fn io_kind(&self) -> io::ErrorKind {
        match self {
            StorageError::Io(e) => e.kind(),
            StorageError::Corrupt { .. } | StorageError::Restore(_) => io::ErrorKind::InvalidData,
            StorageError::RecordTooLarge { .. } => io::ErrorKind::InvalidInput,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// What [`ShardStorage::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The latest snapshot, if one exists.
    pub image: Option<StoreImage>,
    /// Valid log records written after that snapshot, in append order.
    pub records: Vec<LogRecord>,
    /// Bytes truncated off the log's torn tail (0 on a clean shutdown).
    pub torn_tail_bytes: u64,
}

/// One shard's durable storage: an open write-ahead log plus snapshot
/// management. Owned by the shard worker thread; all methods are `&mut`.
#[derive(Debug)]
pub struct ShardStorage {
    dir: PathBuf,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    wal: File,
    /// Frame-aligned byte length of the log (what a clean reader sees).
    wal_len: u64,
    /// Streaming CRC register over the log's current content, maintained
    /// across appends so snapshots can record a [`snapshot::WalMark`]
    /// without re-reading the file.
    wal_crc_state: u32,
    records_since_snapshot: u64,
    snapshots_written: u64,
    wal_records_appended: u64,
    truncated_on_open: u64,
}

const WAL_FILE: &str = "wal.bin";
const WAL_TMP_FILE: &str = "wal.tmp";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";

impl ShardStorage {
    /// Opens (creating if absent) a shard directory and recovers its
    /// contents: the snapshot image, the valid log suffix, and a
    /// truncated torn tail if the previous process died mid-append.
    ///
    /// If the snapshot's [`WalMark`] still matches the log's leading
    /// bytes, the previous process crashed between snapshot rename and
    /// log truncation: the covered prefix is already inside the
    /// snapshot, so it is skipped for replay and the interrupted
    /// truncation is completed (the log is compacted to its suffix).
    /// Re-applying covered records instead would consume RNG draws the
    /// live shard never consumed and could re-shuffle the
    /// active/covered split.
    pub fn open(
        config: StorageConfig,
        schema: &Schema,
    ) -> Result<(ShardStorage, Recovery), StorageError> {
        std::fs::create_dir_all(&config.dir)?;

        let snapshot_path = config.dir.join(SNAPSHOT_FILE);
        let decoded =
            match std::fs::read(&snapshot_path) {
                Ok(bytes) => Some(snapshot::decode(&bytes, schema).map_err(|detail| {
                    StorageError::Corrupt {
                        file: snapshot_path.clone(),
                        detail,
                    }
                })?),
                Err(e) if e.kind() == io::ErrorKind::NotFound => None,
                Err(e) => return Err(e.into()),
            };

        let wal_path = config.dir.join(WAL_FILE);
        let mut wal = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&wal_path)?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;

        let replay_start = match &decoded {
            Some((_, mark))
                if mark.covered_bytes as usize <= bytes.len()
                    && crc32(&bytes[..mark.covered_bytes as usize]) == mark.crc =>
            {
                mark.covered_bytes as usize
            }
            _ => 0, // log was truncated after the snapshot (the normal case)
        };
        let tail = &bytes[replay_start..];
        let (payloads, valid_span) = read_frames(tail);
        let records = payloads
            .iter()
            .map(|p| {
                LogRecord::decode(p, schema).map_err(|e| StorageError::Corrupt {
                    file: wal_path.clone(),
                    detail: format!("record decodes as garbage despite a valid checksum: {e}"),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let torn_tail_bytes = (tail.len() - valid_span) as u64;
        let content = &tail[..valid_span];

        if replay_start > 0 {
            // Complete the interrupted truncation: compact the log down
            // to the uncovered suffix (atomically, via rename — a crash
            // here just redoes the skip on the next boot).
            let tmp = config.dir.join(WAL_TMP_FILE);
            let mut file = File::create(&tmp)?;
            file.write_all(content)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, &wal_path)?;
            wal = OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&wal_path)?;
            wal.seek(io::SeekFrom::End(0))?;
        } else if torn_tail_bytes > 0 {
            // Drop the torn tail so the next append starts on a frame
            // boundary. (With `append` mode the cursor re-seeks to the
            // new end automatically on the next write.)
            wal.set_len(valid_span as u64)?;
            wal.seek(io::SeekFrom::End(0))?;
        }

        let storage = ShardStorage {
            dir: config.dir,
            fsync: config.fsync,
            snapshot_every: config.snapshot_every,
            wal,
            wal_len: valid_span as u64,
            wal_crc_state: crc32_update(CRC_INIT, content),
            records_since_snapshot: records.len() as u64,
            snapshots_written: 0,
            wal_records_appended: 0,
            truncated_on_open: torn_tail_bytes,
        };
        Ok((
            storage,
            Recovery {
                image: decoded.map(|(image, _)| image),
                records,
                torn_tail_bytes,
            },
        ))
    }

    /// Appends one record to the log (write-ahead: call this *before*
    /// applying the operation to the in-memory store), flushing per the
    /// configured [`FsyncPolicy`].
    ///
    /// Refuses a record whose encoding exceeds
    /// [`MAX_FRAME_PAYLOAD_BYTES`]: writing it would "succeed" but read
    /// back as a torn tail, silently discarding it *and every record
    /// after it* on the next boot. Failing the append keeps the
    /// degradation visible (the shard counts a storage error) and the
    /// log readable.
    pub fn append(&mut self, record: &LogRecord) -> Result<(), StorageError> {
        let payload = record.encode();
        if payload.len() > MAX_FRAME_PAYLOAD_BYTES {
            return Err(StorageError::RecordTooLarge {
                bytes: payload.len(),
            });
        }
        let framed = frame(&payload);
        if let Err(e) = self.wal.write_all(&framed) {
            // A failed write may have left a *partial* frame at the tail;
            // later successful appends written after it would be lost
            // behind the garbage on the next boot. Roll the file back to
            // the last frame boundary so the log stays readable
            // (best-effort; if this also fails, recovery's torn-tail
            // truncation still bounds the damage to this record).
            let _ = self.wal.set_len(self.wal_len);
            let _ = self.wal.seek(io::SeekFrom::End(0));
            return Err(e.into());
        }
        // Bookkeeping happens as soon as the frame is fully written —
        // even if the fsync below fails, the bytes are in the file, and
        // length/CRC accounting must match the file's actual content.
        self.wal_len += framed.len() as u64;
        self.wal_crc_state = crc32_update(self.wal_crc_state, &framed);
        self.records_since_snapshot += 1;
        self.wal_records_appended += 1;
        if self.fsync == FsyncPolicy::Always {
            self.wal.sync_data()?;
        }
        Ok(())
    }

    /// The [`WalMark`] identifying the log content a snapshot encoded
    /// right now would cover. Pass it to [`snapshot::encode`].
    pub fn wal_mark(&self) -> WalMark {
        WalMark {
            covered_bytes: self.wal_len,
            crc: crc32_finalize(self.wal_crc_state),
        }
    }

    /// Whether the snapshot cadence says it is time to snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every
    }

    /// Writes `snapshot_bytes` (produced by [`snapshot::encode`])
    /// atomically — temp file, fsync, rename — then truncates the log.
    ///
    /// Crash-ordering: the rename is the commit point. Dying before it
    /// leaves the old snapshot + full log (replay covers everything);
    /// dying between rename and truncation leaves the new snapshot + a
    /// log whose covered prefix [`open`](ShardStorage::open) recognizes
    /// via the snapshot's [`WalMark`] and skips, completing the
    /// truncation it was interrupted on.
    ///
    /// The cadence counter resets even on failure: the caller retries
    /// after another `snapshot_every` records rather than re-encoding
    /// the full store on *every* subsequent command while the disk is
    /// unwell.
    pub fn write_snapshot(&mut self, snapshot_bytes: &[u8]) -> Result<(), StorageError> {
        self.records_since_snapshot = 0;
        if snapshot_bytes.len() > MAX_FRAME_PAYLOAD_BYTES {
            // An over-cap snapshot would decode as corrupt on the next
            // boot; refusing keeps the previous (readable) snapshot in
            // place and surfaces the condition as a storage error.
            return Err(StorageError::RecordTooLarge {
                bytes: snapshot_bytes.len(),
            });
        }
        let tmp = self.dir.join(SNAPSHOT_TMP_FILE);
        let dst = self.dir.join(SNAPSHOT_FILE);
        let mut file = File::create(&tmp)?;
        file.write_all(snapshot_bytes)?;
        // A snapshot exists to be read after a crash; it is always synced
        // regardless of the log policy.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, &dst)?;
        if let Ok(dir) = File::open(&self.dir) {
            // Persist the rename itself (directory entry). Best-effort:
            // some filesystems reject directory fsync.
            let _ = dir.sync_all();
        }
        self.wal.set_len(0)?;
        self.wal.seek(io::SeekFrom::Start(0))?;
        self.wal_len = 0;
        self.wal_crc_state = CRC_INIT;
        self.snapshots_written += 1;
        Ok(())
    }

    /// Records appended since the last snapshot (or open).
    pub fn records_since_snapshot(&self) -> u64 {
        self.records_since_snapshot
    }

    /// Snapshots written by this instance.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// Records appended by this instance.
    pub fn wal_records_appended(&self) -> u64 {
        self.wal_records_appended
    }

    /// Bytes truncated off the log's tail when this instance opened
    /// (0 after a clean shutdown; at most one record after a crash
    /// mid-append — anything larger indicates mid-log damage).
    pub fn truncated_on_open(&self) -> u64 {
        self.truncated_on_open
    }

    /// The shard's storage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::{Subscription, SubscriptionId};

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "psc-storage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path, snapshot_every: u64) -> StorageConfig {
        StorageConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            snapshot_every,
        }
    }

    fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
        Subscription::builder(schema)
            .range("x0", lo, hi)
            .build()
            .unwrap()
    }

    #[test]
    fn log_survives_reopen() {
        let schema = schema();
        let dir = temp_dir("reopen");
        let records = vec![
            LogRecord::Admit(vec![(SubscriptionId(1), sub(&schema, 0, 50))]),
            LogRecord::Unsubscribe(SubscriptionId(1)),
        ];
        {
            let (mut storage, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
            assert!(recovery.image.is_none());
            assert!(recovery.records.is_empty());
            for r in &records {
                storage.append(r).unwrap();
            }
        }
        let (_, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records, records);
        assert_eq!(recovery.torn_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let schema = schema();
        let dir = temp_dir("torn");
        {
            let (mut storage, _) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
            storage
                .append(&LogRecord::Admit(vec![(
                    SubscriptionId(1),
                    sub(&schema, 0, 50),
                )]))
                .unwrap();
            storage
                .append(&LogRecord::Unsubscribe(SubscriptionId(9)))
                .unwrap();
        }
        // Tear the final record: chop 3 bytes off the file.
        let wal_path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (mut storage, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records.len(), 1, "torn record dropped");
        assert!(recovery.torn_tail_bytes > 0);
        // The log is usable again: append and reopen cleanly.
        storage
            .append(&LogRecord::Unsubscribe(SubscriptionId(2)))
            .unwrap();
        drop(storage);
        let (_, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records.len(), 2);
        assert_eq!(recovery.torn_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_log_and_reloads() {
        use psc_core::SubsumptionChecker;
        use psc_matcher::CoveringStore;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schema = schema();
        let dir = temp_dir("snap");
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = CoveringStore::new(SubsumptionChecker::default());
        store.insert(SubscriptionId(1), sub(&schema, 0, 80), &mut rng);
        store.insert(SubscriptionId(2), sub(&schema, 5, 10), &mut rng);

        {
            let (mut storage, _) = ShardStorage::open(config(&dir, 2), &schema).unwrap();
            storage
                .append(&LogRecord::Admit(vec![
                    (SubscriptionId(1), sub(&schema, 0, 80)),
                    (SubscriptionId(2), sub(&schema, 5, 10)),
                ]))
                .unwrap();
            assert!(!storage.snapshot_due());
            storage
                .append(&LogRecord::Unsubscribe(SubscriptionId(99)))
                .unwrap();
            assert!(storage.snapshot_due());
            let bytes = snapshot::encode(&store, &schema, rng.state(), storage.wal_mark());
            storage.write_snapshot(&bytes).unwrap();
            assert_eq!(storage.records_since_snapshot(), 0);
            assert_eq!(storage.snapshots_written(), 1);
        }
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);

        let (_, recovery) = ShardStorage::open(config(&dir, 2), &schema).unwrap();
        let image = recovery.image.expect("snapshot loaded");
        assert_eq!(image.rng_state, rng.state());
        assert_eq!(image.entries.len(), 2);
        assert!(recovery.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_snapshot_rename_and_truncation_skips_covered_prefix() {
        use psc_core::SubsumptionChecker;
        use psc_matcher::CoveringStore;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schema = schema();
        let dir = temp_dir("rename-window");
        let covered = vec![
            LogRecord::Admit(vec![(SubscriptionId(1), sub(&schema, 0, 80))]),
            LogRecord::Unsubscribe(SubscriptionId(1)),
        ];
        let after = LogRecord::Admit(vec![(SubscriptionId(2), sub(&schema, 5, 10))]);
        {
            let (mut storage, _) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
            for r in &covered {
                storage.append(r).unwrap();
            }
            // Simulate the crash window: the snapshot (covering the two
            // records above) lands in place, but the process dies before
            // `write_snapshot` would have truncated the log.
            let store = CoveringStore::new(SubsumptionChecker::default());
            let bytes = snapshot::encode(
                &store,
                &schema,
                StdRng::seed_from_u64(9).state(),
                storage.wal_mark(),
            );
            std::fs::write(dir.join(SNAPSHOT_FILE), &bytes).unwrap();
            storage.append(&after).unwrap();
        }
        let (storage, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert!(recovery.image.is_some(), "snapshot loaded");
        assert_eq!(
            recovery.records,
            vec![after.clone()],
            "only the uncovered suffix is replayed"
        );
        assert_eq!(recovery.torn_tail_bytes, 0);
        // The interrupted truncation was completed: the log now holds
        // only the suffix, and a further reopen replays the same thing.
        let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(wal_len, frame(&after.encode()).len() as u64);
        drop(storage);
        let (_, recovery) = ShardStorage::open(config(&dir, 0), &schema).unwrap();
        assert_eq!(recovery.records, vec![after]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let schema = schema();
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"PSCSNAP1 not a snapshot").unwrap();
        match ShardStorage::open(config(&dir, 0), &schema) {
            Err(StorageError::Corrupt { file, .. }) => {
                assert!(file.ends_with(SNAPSHOT_FILE));
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
