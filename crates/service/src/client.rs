//! A blocking client for the line-delimited JSON protocol.

use crate::metrics::ServiceMetrics;
use crate::wire::{Request, Response};
use psc_model::wire::{PublicationDto, SubscriptionDto, WireError};
use psc_model::{Publication, Schema, Subscription, SubscriptionId};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's response line did not decode.
    Wire(WireError),
    /// The server answered with an error response.
    Server(String),
    /// The server answered with a response of the wrong kind.
    UnexpectedResponse(Response),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedResponse(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`crate::ServiceServer`].
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServiceClient {
            reader,
            writer: stream,
        })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response_line = String::new();
        let n = self.reader.read_line(&mut response_line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = Response::decode(response_line.trim_end())?;
        if let Response::Error(message) = response {
            return Err(ClientError::Server(message));
        }
        Ok(response)
    }

    /// Handshake: returns the service schema and shard count.
    pub fn hello(&mut self) -> Result<(Schema, u64), ClientError> {
        match self.round_trip(&Request::Hello)? {
            Response::Hello { schema, shards } => Ok((schema.into_schema()?, shards)),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Enqueues a subscription for admission.
    pub fn subscribe(&mut self, id: SubscriptionId, sub: &Subscription) -> Result<(), ClientError> {
        let request = Request::Subscribe(SubscriptionDto::from_subscription(id, sub));
        match self.round_trip(&request)? {
            Response::Queued => Ok(()),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Removes a subscription; returns whether the server had it stored.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<bool, ClientError> {
        match self.round_trip(&Request::Unsubscribe(id.0))? {
            Response::Removed(removed) => Ok(removed),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Publishes and returns the matched subscription ids (ascending).
    pub fn publish(&mut self, p: &Publication) -> Result<Vec<SubscriptionId>, ClientError> {
        let request = Request::Publish(PublicationDto::from_publication(p));
        match self.round_trip(&request)? {
            Response::Matched(ids) => Ok(ids.into_iter().map(SubscriptionId).collect()),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Forces admission of all buffered subscriptions.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Scrapes service metrics.
    pub fn stats(&mut self) -> Result<ServiceMetrics, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(metrics) => Ok(metrics),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }
}
