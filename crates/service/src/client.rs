//! A blocking client for both wire protocols.
//!
//! [`ServiceClient::connect`] speaks the line-delimited JSON protocol;
//! [`ServiceClient::connect_binary`] sends the
//! [`psc_model::codec::BINARY_PREAMBLE`] immediately
//! after the socket opens and waits for the server's Ready frame, after
//! which every request/response rides the length-prefixed binary
//! framing. The typed methods (`hello`, `publish`, …) behave identically
//! over either transport.
//!
//! Every socket operation is bounded: `connect` uses
//! `TcpStream::connect_timeout` and reads/writes carry OS-level timeouts,
//! so a hung or wedged server surfaces as a timeout error instead of
//! blocking the caller forever. The timeout comes from
//! [`ServiceConfig::io_timeout`] (default 30s) or per-client via
//! [`ServiceClient::connect_with`]. Responses are read through the same
//! incremental framers the server uses, so a response split across
//! arbitrarily many reads decodes identically.

use crate::metrics::{ReactorMetrics, ServiceMetrics};
use crate::service::ServiceConfig;
use crate::wire::{is_ready_payload, Request, Response};
use psc_model::codec::{BinFrame, BinaryFramer, BINARY_PREAMBLE};
use psc_model::wire::{
    Frame, LatencyStats, LineFramer, PublicationDto, SubscriptionDto, WireError,
};
use psc_model::{Publication, Schema, Subscription, SubscriptionId};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Longest response frame the client accepts (64 MiB — match sets can be
/// large; both framers stop buffering mid-stream beyond this).
const MAX_RESPONSE_LINE_BYTES: usize = 1 << 26;

/// Which wire protocol a [`ServiceClient`] speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientProtocol {
    /// Line-delimited JSON (the default, debuggable with netcat).
    Json,
    /// Length-prefixed binary frames, negotiated at connect time.
    Binary,
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including timeouts, kind `TimedOut`).
    Io(std::io::Error),
    /// The server's response line did not decode.
    Wire(WireError),
    /// The server answered with an error response.
    Server(String),
    /// The server answered with a response of the wrong kind. Boxed:
    /// `Response::Stats` carries a full metrics aggregate, and the error
    /// type should not inflate every `Result` on the request path.
    UnexpectedResponse(Box<Response>),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedResponse(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Protocol-specific connection state: the incremental response framer.
enum Transport {
    Json { framer: LineFramer },
    Binary { framer: BinaryFramer },
}

/// Buffered sends above this size are pushed to the socket eagerly, so a
/// very deep pipeline cannot grow the send buffer without bound.
const SEND_FLUSH_BYTES: usize = 64 * 1024;

/// A blocking connection to a [`crate::ServiceServer`].
pub struct ServiceClient {
    stream: TcpStream,
    transport: Transport,
    /// Encoded-but-unwritten requests. Sends append here (no per-request
    /// write syscall); the buffer is pushed to the socket before every
    /// receive, so a pipelined window of requests goes out as one write
    /// and the request/response ordering contract is unaffected.
    sendbuf: Vec<u8>,
}

/// Opens and configures the socket (candidate loop under a connect
/// timeout, NODELAY, read/write timeouts).
fn open_stream(
    addr: impl ToSocketAddrs,
    io_timeout: Option<Duration>,
) -> std::io::Result<TcpStream> {
    let stream = match io_timeout {
        None => TcpStream::connect(addr)?,
        Some(timeout) => {
            let mut last_err = None;
            let mut connected = None;
            for candidate in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&candidate, timeout) {
                    Ok(stream) => {
                        connected = Some(stream);
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            match connected {
                Some(stream) => stream,
                None => {
                    return Err(last_err.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to no candidates",
                        )
                    }))
                }
            }
        }
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(io_timeout)?;
    stream.set_write_timeout(io_timeout)?;
    Ok(stream)
}

/// Reads one chunk off the socket, mapping timeouts and EOF to typed
/// client errors.
fn read_chunk(stream: &mut TcpStream, buf: &mut [u8]) -> Result<usize, ClientError> {
    let n = stream.read(buf).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for the server's response",
            ))
        } else {
            ClientError::Io(e)
        }
    })?;
    if n == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        )));
    }
    Ok(n)
}

/// Reads whole frames until one completes, returning its decoded
/// response.
fn read_binary_response(
    stream: &mut TcpStream,
    framer: &mut BinaryFramer,
) -> Result<Response, ClientError> {
    loop {
        if framer.has_frames() {
            match framer.next_frame().expect("frame ready") {
                BinFrame::Frame(payload) => return Ok(Response::decode_binary(payload)?),
                BinFrame::TooLong { len } => {
                    return Err(ClientError::Wire(WireError::Shape(format!(
                        "response frame of {len} bytes exceeds the client cap"
                    ))))
                }
            }
        }
        let mut buf = [0u8; 16 * 1024];
        let n = read_chunk(stream, &mut buf)?;
        framer.feed(&buf[..n]);
    }
}

impl ServiceClient {
    /// Connects to a running server with the default I/O timeout
    /// ([`ServiceConfig::io_timeout`], 30s), speaking JSON.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ServiceConfig::default().io_timeout)
    }

    /// Connects speaking JSON, with an explicit connect/read/write
    /// timeout (`None` blocks indefinitely, the pre-timeout behavior).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        io_timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let stream = open_stream(addr, io_timeout)?;
        Ok(ServiceClient {
            stream,
            transport: Transport::Json {
                framer: LineFramer::new(MAX_RESPONSE_LINE_BYTES),
            },
            sendbuf: Vec::new(),
        })
    }

    /// Connects and negotiates the binary protocol with the default I/O
    /// timeout: sends the preamble, waits for the server's Ready frame.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_protocol(
            addr,
            ServiceConfig::default().io_timeout,
            ClientProtocol::Binary,
        )
    }

    /// Connects speaking `protocol`, with an explicit connect/read/write
    /// timeout. For [`ClientProtocol::Binary`] this performs the
    /// negotiation handshake before returning, so a returned client is
    /// ready for requests.
    pub fn connect_with_protocol(
        addr: impl ToSocketAddrs,
        io_timeout: Option<Duration>,
        protocol: ClientProtocol,
    ) -> Result<Self, ClientError> {
        let mut stream = open_stream(addr, io_timeout)?;
        let transport = match protocol {
            ClientProtocol::Json => Transport::Json {
                framer: LineFramer::new(MAX_RESPONSE_LINE_BYTES),
            },
            ClientProtocol::Binary => {
                stream.write_all(&BINARY_PREAMBLE)?;
                let mut framer = BinaryFramer::new(MAX_RESPONSE_LINE_BYTES);
                loop {
                    if framer.has_frames() {
                        match framer.next_frame().expect("frame ready") {
                            BinFrame::Frame(payload) if is_ready_payload(payload) => break,
                            _ => {
                                return Err(ClientError::Wire(WireError::Shape(
                                    "server did not acknowledge the binary protocol".into(),
                                )))
                            }
                        }
                    }
                    let mut buf = [0u8; 1024];
                    let n = read_chunk(&mut stream, &mut buf)?;
                    framer.feed(&buf[..n]);
                }
                Transport::Binary { framer }
            }
        };
        Ok(ServiceClient {
            stream,
            transport,
            sendbuf: Vec::with_capacity(256),
        })
    }

    /// The protocol this client negotiated.
    pub fn protocol(&self) -> ClientProtocol {
        match self.transport {
            Transport::Json { .. } => ClientProtocol::Json,
            Transport::Binary { .. } => ClientProtocol::Binary,
        }
    }

    /// Encodes one request onto the send buffer without waiting for its
    /// response — the pipelining half of
    /// [`recv_response`](Self::recv_response). The buffer reaches the
    /// socket on the next receive (or immediately past
    /// [`SEND_FLUSH_BYTES`]), so a window of pipelined requests costs
    /// one write syscall instead of one per request.
    fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        match &mut self.transport {
            Transport::Json { .. } => {
                let mut line = request.encode();
                line.push('\n');
                self.sendbuf.extend_from_slice(line.as_bytes());
            }
            Transport::Binary { .. } => {
                request.encode_binary(&mut self.sendbuf);
            }
        }
        if self.sendbuf.len() >= SEND_FLUSH_BYTES {
            self.flush_sends()?;
        }
        Ok(())
    }

    /// Pushes every buffered request to the socket.
    fn flush_sends(&mut self) -> Result<(), ClientError> {
        if !self.sendbuf.is_empty() {
            self.stream.write_all(&self.sendbuf)?;
            self.sendbuf.clear();
        }
        Ok(())
    }

    /// Reads the next response off the connection. Responses arrive in
    /// request order (the server serves each connection's requests
    /// FIFO), so with several requests in flight this returns the reply
    /// to the oldest unanswered one.
    fn recv_response(&mut self) -> Result<Response, ClientError> {
        self.flush_sends()?;
        let response = match &mut self.transport {
            Transport::Json { framer } => {
                let line = loop {
                    match framer.next_frame() {
                        Some(Frame::Line(line)) => break line,
                        Some(Frame::TooLong { len }) => {
                            return Err(ClientError::Wire(WireError::Shape(format!(
                                "response line of {len} bytes exceeds the client cap"
                            ))))
                        }
                        None => {}
                    }
                    let mut buf = [0u8; 16 * 1024];
                    let n = read_chunk(&mut self.stream, &mut buf)?;
                    framer.feed(&buf[..n]);
                };
                Response::decode(&line)?
            }
            Transport::Binary { framer, .. } => read_binary_response(&mut self.stream, framer)?,
        };
        if let Response::Error(message) = response {
            return Err(ClientError::Server(message));
        }
        Ok(response)
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send_request(request)?;
        self.recv_response()
    }

    /// Handshake: returns the service schema and shard count.
    pub fn hello(&mut self) -> Result<(Schema, u64), ClientError> {
        match self.round_trip(&Request::Hello)? {
            Response::Hello { schema, shards } => Ok((schema.into_schema()?, shards)),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Enqueues a subscription for admission.
    pub fn subscribe(&mut self, id: SubscriptionId, sub: &Subscription) -> Result<(), ClientError> {
        let request = Request::Subscribe(SubscriptionDto::from_subscription(id, sub));
        match self.round_trip(&request)? {
            Response::Queued => Ok(()),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Removes a subscription; returns whether the server had it stored.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<bool, ClientError> {
        match self.round_trip(&Request::Unsubscribe(id.0))? {
            Response::Removed(removed) => Ok(removed),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Publishes and returns the matched subscription ids (ascending).
    pub fn publish(&mut self, p: &Publication) -> Result<Vec<SubscriptionId>, ClientError> {
        let request = Request::Publish(PublicationDto::from_publication(p));
        match self.round_trip(&request)? {
            Response::Matched(ids) => Ok(ids.into_iter().map(SubscriptionId).collect()),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Sends a publish without waiting for its notification — the
    /// pipelined variant of [`publish`](Self::publish), for load
    /// generators and high-throughput producers that keep a window of
    /// publishes in flight. Pair every `send_publish` with one later
    /// [`recv_matched`](Self::recv_matched); responses come back in
    /// send order.
    pub fn send_publish(&mut self, p: &Publication) -> Result<(), ClientError> {
        self.send_request(&Request::Publish(PublicationDto::from_publication(p)))
    }

    /// Receives the matched-id notification for the oldest
    /// [`send_publish`](Self::send_publish) still awaiting its reply.
    pub fn recv_matched(&mut self) -> Result<Vec<SubscriptionId>, ClientError> {
        match self.recv_response()? {
            Response::Matched(ids) => Ok(ids.into_iter().map(SubscriptionId).collect()),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Forces admission of all buffered subscriptions.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Scrapes service metrics.
    pub fn stats(&mut self) -> Result<ServiceMetrics, ClientError> {
        Ok(self.stats_full()?.0)
    }

    /// Scrapes service metrics plus the server's front-end counters and
    /// per-stage latency quantiles (either may be absent: `reactor` when
    /// the service runs without a reactor, `latency` when talking to a
    /// pre-telemetry server).
    #[allow(clippy::type_complexity)]
    pub fn stats_full(
        &mut self,
    ) -> Result<(ServiceMetrics, Option<ReactorMetrics>, Option<LatencyStats>), ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats {
                metrics,
                reactor,
                latency,
                federation: _,
            } => Ok((metrics, reactor, latency.map(|l| *l))),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Scrapes federation counters from a mesh node. Returns `None` when
    /// the server is a plain, non-federated service (or an older build
    /// that predates the mesh) — the stats response simply lacks the
    /// `federation` object in that case.
    pub fn stats_federation(
        &mut self,
    ) -> Result<Option<psc_model::wire::FederationStats>, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { federation, .. } => Ok(federation),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServiceConfig, ServiceServer};
    use psc_model::{Publication, Range, Schema, Subscription, SubscriptionId};

    #[test]
    fn binary_client_round_trips_every_request() {
        let schema = Schema::uniform(2, 0, 99);
        let server =
            ServiceServer::bind("127.0.0.1:0", schema.clone(), ServiceConfig::with_shards(2))
                .expect("bind");
        let mut client = ServiceClient::connect_binary(server.local_addr()).expect("connect");
        assert_eq!(client.protocol(), ClientProtocol::Binary);

        let (hello_schema, shards) = client.hello().expect("hello");
        assert_eq!(shards, 2);
        assert_eq!(hello_schema.len(), schema.len());

        let sub = Subscription::from_ranges(
            &schema,
            vec![
                Range::new(0, 50).expect("range"),
                Range::new(0, 99).expect("range"),
            ],
        )
        .expect("sub");
        client
            .subscribe(SubscriptionId(7), &sub)
            .expect("subscribe");
        client.flush().expect("flush");

        let p = Publication::from_values(&schema, vec![25, 60]).expect("publication");
        let matched = client.publish(&p).expect("publish");
        assert_eq!(matched, vec![SubscriptionId(7)]);

        assert!(client.unsubscribe(SubscriptionId(7)).expect("unsubscribe"));
        let (metrics, reactor, latency) = client.stats_full().expect("stats");
        assert!(metrics.publications_total >= 1);
        let reactor = reactor.expect("reactor counters present");
        assert!(reactor.requests_handled >= 5);
        let latency = latency.expect("latency present");
        assert!(latency.decode_binary.count >= 1);
        server.stop();
    }

    #[test]
    fn json_and_binary_clients_share_one_server() {
        let schema = Schema::uniform(1, 0, 9);
        let server =
            ServiceServer::bind("127.0.0.1:0", schema.clone(), ServiceConfig::with_shards(1))
                .expect("bind");
        let mut json = ServiceClient::connect(server.local_addr()).expect("json connect");
        assert_eq!(json.protocol(), ClientProtocol::Json);
        let mut binary = ServiceClient::connect_binary(server.local_addr()).expect("bin connect");

        let sub = Subscription::from_ranges(&schema, vec![Range::new(0, 9).expect("range")])
            .expect("sub");
        json.subscribe(SubscriptionId(1), &sub).expect("subscribe");
        json.flush().expect("flush");

        let p = Publication::from_values(&schema, vec![3]).expect("publication");
        assert_eq!(
            json.publish(&p).expect("json publish"),
            vec![SubscriptionId(1)]
        );
        assert_eq!(
            binary.publish(&p).expect("binary publish"),
            vec![SubscriptionId(1)]
        );
        server.stop();
    }
}
