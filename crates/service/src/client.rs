//! A blocking client for the line-delimited JSON protocol.
//!
//! Every socket operation is bounded: `connect` uses
//! `TcpStream::connect_timeout` and reads/writes carry OS-level timeouts,
//! so a hung or wedged server surfaces as a timeout error instead of
//! blocking the caller forever. The timeout comes from
//! [`ServiceConfig::io_timeout`] (default 30s) or per-client via
//! [`ServiceClient::connect_with`]. Responses are read through the same
//! incremental [`LineFramer`] the server uses, so a response line split
//! across arbitrarily many reads decodes identically.

use crate::metrics::{ReactorMetrics, ServiceMetrics};
use crate::service::ServiceConfig;
use crate::wire::{Request, Response};
use psc_model::wire::{
    Frame, LatencyStats, LineFramer, PublicationDto, SubscriptionDto, WireError,
};
use psc_model::{Publication, Schema, Subscription, SubscriptionId};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Longest response line the client accepts (64 MiB — match sets can be
/// large; the framer stops buffering mid-stream beyond this).
const MAX_RESPONSE_LINE_BYTES: usize = 1 << 26;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including timeouts, kind `TimedOut`).
    Io(std::io::Error),
    /// The server's response line did not decode.
    Wire(WireError),
    /// The server answered with an error response.
    Server(String),
    /// The server answered with a response of the wrong kind.
    UnexpectedResponse(Response),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedResponse(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`crate::ServiceServer`].
pub struct ServiceClient {
    stream: TcpStream,
    framer: LineFramer,
}

impl ServiceClient {
    /// Connects to a running server with the default I/O timeout
    /// ([`ServiceConfig::io_timeout`], 30s).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ServiceConfig::default().io_timeout)
    }

    /// Connects with an explicit connect/read/write timeout (`None`
    /// blocks indefinitely, the pre-timeout behavior).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        io_timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let stream = match io_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let mut last_err = None;
                let mut connected = None;
                for candidate in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&candidate, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last_err.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no candidates",
                            )
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        Ok(ServiceClient {
            stream,
            framer: LineFramer::new(MAX_RESPONSE_LINE_BYTES),
        })
    }

    fn read_response_line(&mut self) -> Result<String, ClientError> {
        loop {
            match self.framer.next_frame() {
                Some(Frame::Line(line)) => return Ok(line),
                Some(Frame::TooLong { len }) => {
                    return Err(ClientError::Wire(WireError::Shape(format!(
                        "response line of {len} bytes exceeds the client cap"
                    ))))
                }
                None => {}
            }
            let mut buf = [0u8; 16 * 1024];
            let n = self.stream.read(&mut buf).map_err(|e| {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "timed out waiting for the server's response",
                    ))
                } else {
                    ClientError::Io(e)
                }
            })?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.framer.feed(&buf[..n]);
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = request.encode();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        let response_line = self.read_response_line()?;
        let response = Response::decode(&response_line)?;
        if let Response::Error(message) = response {
            return Err(ClientError::Server(message));
        }
        Ok(response)
    }

    /// Handshake: returns the service schema and shard count.
    pub fn hello(&mut self) -> Result<(Schema, u64), ClientError> {
        match self.round_trip(&Request::Hello)? {
            Response::Hello { schema, shards } => Ok((schema.into_schema()?, shards)),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Enqueues a subscription for admission.
    pub fn subscribe(&mut self, id: SubscriptionId, sub: &Subscription) -> Result<(), ClientError> {
        let request = Request::Subscribe(SubscriptionDto::from_subscription(id, sub));
        match self.round_trip(&request)? {
            Response::Queued => Ok(()),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Removes a subscription; returns whether the server had it stored.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<bool, ClientError> {
        match self.round_trip(&Request::Unsubscribe(id.0))? {
            Response::Removed(removed) => Ok(removed),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Publishes and returns the matched subscription ids (ascending).
    pub fn publish(&mut self, p: &Publication) -> Result<Vec<SubscriptionId>, ClientError> {
        let request = Request::Publish(PublicationDto::from_publication(p));
        match self.round_trip(&request)? {
            Response::Matched(ids) => Ok(ids.into_iter().map(SubscriptionId).collect()),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Forces admission of all buffered subscriptions.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Scrapes service metrics.
    pub fn stats(&mut self) -> Result<ServiceMetrics, ClientError> {
        Ok(self.stats_full()?.0)
    }

    /// Scrapes service metrics plus the server's front-end counters and
    /// per-stage latency quantiles (either may be absent: `reactor` when
    /// the service runs without a reactor, `latency` when talking to a
    /// pre-telemetry server).
    #[allow(clippy::type_complexity)]
    pub fn stats_full(
        &mut self,
    ) -> Result<(ServiceMetrics, Option<ReactorMetrics>, Option<LatencyStats>), ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats {
                metrics,
                reactor,
                latency,
            } => Ok((metrics, reactor, latency.map(|l| *l))),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }
}
