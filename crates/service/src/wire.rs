//! The wire protocol: line-delimited JSON, with a negotiated binary
//! alternative for the hot path.
//!
//! A connection speaks JSON unless its very first bytes are
//! [`psc_model::codec::BINARY_PREAMBLE`], which commits it to the binary
//! framing for its whole lifetime (see [`Request::encode_binary`] and
//! `docs/PROTOCOL.md` for the frame layout). Both protocols share one
//! request/response vocabulary — the types in this module — and one
//! frame-size cap, enforced mid-stream by the respective framer.
//!
//! ## JSON protocol
//!
//! One request per line, one response line per request, UTF-8, `\n`
//! terminated. Requests carry an `"op"` discriminator:
//!
//! | op | request fields | response fields |
//! |---|---|---|
//! | `hello` | — | `schema` (see [`SchemaDto`]), `shards` |
//! | `subscribe` | `id`, `ranges` | `queued: true` |
//! | `unsubscribe` | `id` | `removed: bool` |
//! | `publish` | `values` | `matched: [id, ...]` (sorted) |
//! | `flush` | — | `flushed: true` |
//! | `stats` | — | `metrics` (see [`crate::ServiceMetrics`]), optional `reactor` (see [`crate::ReactorMetrics`]), optional `latency` (see [`psc_model::wire::LatencyStats`]) |
//!
//! Every response object carries `"ok": true|false`; failed requests embed
//! an `"error"` string instead of result fields. A malformed line never
//! tears down the connection — the server answers with an error response
//! and keeps reading.
//!
//! Framing is incremental on both ends: the server's reactor and the
//! client feed raw socket bytes through
//! [`psc_model::wire::LineFramer`], so a request or response line may
//! arrive split across any number of reads. Request lines are capped at
//! [`MAX_REQUEST_LINE_BYTES`] (enforced mid-stream; an oversized line
//! draws an error response), and nesting depth is capped by the JSON
//! parser when each completed line is decoded.

use crate::metrics::{ReactorMetrics, ServiceMetrics};
use psc_model::codec::{self, ByteReader, CodecError, BINARY_PREAMBLE};
use psc_model::wire::{Json, LatencyStats, PublicationDto, SchemaDto, SubscriptionDto, WireError};
use psc_model::{ModelError, Publication, Schema, ValueVec};

/// Default cap on one request frame — a JSON line or a binary payload.
/// The incremental framers enforce it mid-stream, so an unterminated
/// hostile line (or an absurd binary length header) never buffers more
/// than this many bytes. Configurable per server via
/// [`crate::ServiceConfig::max_frame_bytes`].
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// Binary opcodes: requests in the low range, responses with the high
/// bit set. One byte at the start of every binary frame payload.
mod opcode {
    pub const HELLO: u8 = 0x01;
    pub const SUBSCRIBE: u8 = 0x02;
    pub const UNSUBSCRIBE: u8 = 0x03;
    pub const PUBLISH: u8 = 0x04;
    pub const FLUSH: u8 = 0x05;
    pub const STATS: u8 = 0x06;
    pub const READY: u8 = 0x80;
    pub const R_HELLO: u8 = 0x81;
    pub const R_QUEUED: u8 = 0x82;
    pub const R_REMOVED: u8 = 0x83;
    pub const R_MATCHED: u8 = 0x84;
    pub const R_FLUSHED: u8 = 0x85;
    pub const R_STATS: u8 = 0x86;
    pub const R_ERROR: u8 = 0xFF;
}

/// Maps a binary decode failure into the wire error vocabulary shared
/// with the JSON path (model errors keep their type; structural problems
/// become shape errors).
fn codec_err(e: CodecError) -> WireError {
    match e {
        CodecError::Model(m) => WireError::Model(m),
        other => WireError::Shape(format!("binary payload: {other}")),
    }
}

/// Appends the server's negotiation acknowledgement — the first frame on
/// every binary connection: opcode `0x80` + the protocol version byte.
pub(crate) fn encode_ready_frame(out: &mut Vec<u8>) {
    codec::write_frame(out, |p| {
        codec::put_u8(p, opcode::READY);
        codec::put_u8(p, BINARY_PREAMBLE[4]);
    });
}

/// Whether a frame payload is the server's negotiation acknowledgement
/// for the protocol version this build speaks.
pub(crate) fn is_ready_payload(payload: &[u8]) -> bool {
    payload == [opcode::READY, BINARY_PREAMBLE[4]]
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Schema/topology handshake.
    Hello,
    /// Enqueue a subscription for admission.
    Subscribe(SubscriptionDto),
    /// Remove a subscription by id.
    Unsubscribe(u64),
    /// Match one publication.
    Publish(PublicationDto),
    /// Force admission of all buffered subscriptions.
    Flush,
    /// Scrape service metrics.
    Stats,
}

impl Request {
    /// Decodes one request line.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let value = Json::parse(line)?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::Shape("request needs a string \"op\"".into()))?;
        match op {
            "hello" => Ok(Request::Hello),
            "subscribe" => Ok(Request::Subscribe(SubscriptionDto::from_json(&value)?)),
            "unsubscribe" => {
                let id = value
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| WireError::Shape("unsubscribe needs a numeric \"id\"".into()))?;
                Ok(Request::Unsubscribe(id))
            }
            "publish" => Ok(Request::Publish(PublicationDto::from_json(&value)?)),
            "flush" => Ok(Request::Flush),
            "stats" => Ok(Request::Stats),
            other => Err(WireError::Shape(format!("unknown op \"{other}\""))),
        }
    }

    /// Encodes as one request line (no trailing newline).
    pub fn encode(&self) -> String {
        let json = match self {
            Request::Hello => Json::obj([("op", Json::Str("hello".into()))]),
            Request::Subscribe(dto) => {
                let mut obj = vec![("op".to_string(), Json::Str("subscribe".into()))];
                if let Json::Obj(pairs) = dto.to_json() {
                    obj.extend(pairs);
                }
                Json::Obj(obj)
            }
            Request::Unsubscribe(id) => Json::obj([
                ("op", Json::Str("unsubscribe".into())),
                ("id", Json::UInt(*id)),
            ]),
            Request::Publish(dto) => {
                let mut obj = vec![("op".to_string(), Json::Str("publish".into()))];
                if let Json::Obj(pairs) = dto.to_json() {
                    obj.extend(pairs);
                }
                Json::Obj(obj)
            }
            Request::Flush => Json::obj([("op", Json::Str("flush".into()))]),
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]),
        };
        json.to_string()
    }

    /// Appends this request as one binary frame (length header included)
    /// to `out` — no intermediate allocation; the caller's buffer is the
    /// wire buffer.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::write_frame(out, |p| match self {
            Request::Hello => codec::put_u8(p, opcode::HELLO),
            Request::Subscribe(dto) => {
                codec::put_u8(p, opcode::SUBSCRIBE);
                codec::put_u64(p, dto.id);
                codec::put_u32(p, dto.ranges.len() as u32);
                for &(lo, hi) in &dto.ranges {
                    codec::put_i64(p, lo);
                    codec::put_i64(p, hi);
                }
            }
            Request::Unsubscribe(id) => {
                codec::put_u8(p, opcode::UNSUBSCRIBE);
                codec::put_u64(p, *id);
            }
            Request::Publish(dto) => {
                codec::put_u8(p, opcode::PUBLISH);
                codec::put_u32(p, dto.values.len() as u32);
                for &v in &dto.values {
                    codec::put_i64(p, v);
                }
            }
            Request::Flush => codec::put_u8(p, opcode::FLUSH),
            Request::Stats => codec::put_u8(p, opcode::STATS),
        });
    }

    /// Decodes one binary frame payload (length header already stripped
    /// by the framer). Strict: trailing bytes are a shape error, so
    /// corruption cannot hide behind a shorter-than-declared value.
    pub fn decode_binary(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = ByteReader::new(payload);
        let op = r.u8().map_err(codec_err)?;
        let request = match op {
            opcode::HELLO => Request::Hello,
            opcode::SUBSCRIBE => {
                let id = r.u64().map_err(codec_err)?;
                let arity = r.u32().map_err(codec_err)? as usize;
                // A range costs 16 encoded bytes; reject counts the
                // payload cannot hold before allocating.
                if arity > r.remaining() / 16 {
                    return Err(WireError::Shape(
                        "subscribe arity exceeds payload size".into(),
                    ));
                }
                let mut ranges = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let lo = r.i64().map_err(codec_err)?;
                    let hi = r.i64().map_err(codec_err)?;
                    ranges.push((lo, hi));
                }
                Request::Subscribe(SubscriptionDto { id, ranges })
            }
            opcode::UNSUBSCRIBE => Request::Unsubscribe(r.u64().map_err(codec_err)?),
            opcode::PUBLISH => {
                let arity = r.u32().map_err(codec_err)? as usize;
                if arity > r.remaining() / 8 {
                    return Err(WireError::Shape(
                        "publish arity exceeds payload size".into(),
                    ));
                }
                let mut values = Vec::with_capacity(arity);
                for _ in 0..arity {
                    values.push(r.i64().map_err(codec_err)?);
                }
                Request::Publish(PublicationDto { values })
            }
            opcode::FLUSH => Request::Flush,
            opcode::STATS => Request::Stats,
            other => {
                return Err(WireError::Shape(format!(
                    "unknown binary request opcode 0x{other:02X}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(WireError::Shape(format!(
                "binary request has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(request)
    }
}

/// A binary request decoded for serving: publishes skip the DTO stage
/// and validate straight into a [`Publication`] with inline value
/// storage, so the hot path performs zero heap allocations between the
/// socket buffer and the router.
pub(crate) enum BinRequest {
    /// Any request other than publish, decoded normally.
    Plain(Request),
    /// A publish, already validated against the service schema.
    Publish(Publication),
}

/// Decodes a binary request frame for the server, using `schema` to
/// validate publish values in one pass.
pub(crate) fn decode_binary_request(
    payload: &[u8],
    schema: &Schema,
) -> Result<BinRequest, WireError> {
    let mut r = ByteReader::new(payload);
    if r.u8().map_err(codec_err)? == opcode::PUBLISH {
        let arity = r.u32().map_err(codec_err)? as usize;
        if arity != schema.len() {
            return Err(WireError::Model(ModelError::SchemaMismatch {
                expected: schema.len(),
                found: arity,
            }));
        }
        let mut values = ValueVec::new();
        for _ in 0..arity {
            values.push(r.i64().map_err(codec_err)?);
        }
        if !r.is_empty() {
            return Err(WireError::Shape(format!(
                "binary request has {} trailing bytes",
                r.remaining()
            )));
        }
        let publication = Publication::from_value_vec(schema, values).map_err(WireError::Model)?;
        return Ok(BinRequest::Publish(publication));
    }
    Request::decode_binary(payload).map(BinRequest::Plain)
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake result.
    Hello {
        /// The service schema.
        schema: SchemaDto,
        /// Number of shards serving the store.
        shards: u64,
    },
    /// Subscription buffered for admission.
    Queued,
    /// Unsubscription result.
    Removed(bool),
    /// Publication match result (ascending ids).
    Matched(Vec<u64>),
    /// Flush acknowledged.
    Flushed,
    /// Metrics scrape result.
    Stats {
        /// Shard/matching-engine counters.
        metrics: ServiceMetrics,
        /// Front-end counters; absent when the service is driven
        /// in-process without a reactor (and tolerated as absent on
        /// decode, so older peers still interoperate).
        reactor: Option<ReactorMetrics>,
        /// Per-stage latency quantiles; absent from pre-telemetry
        /// servers and tolerated as absent on decode (same version-skew
        /// policy as `reactor`). Boxed: five stage summaries would
        /// otherwise dominate every `Response`'s (and `ClientError`'s)
        /// inline size.
        latency: Option<Box<LatencyStats>>,
        /// Federated-mesh counters; present only on federated nodes and
        /// tolerated as absent on decode (same version-skew policy as
        /// `reactor`), so plain servers and older peers interoperate.
        federation: Option<psc_model::wire::FederationStats>,
    },
    /// The request failed.
    Error(String),
}

impl Response {
    /// Encodes as one response line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }

    /// Appends this response as one JSON line (trailing newline
    /// included) to `out`, skipping the intermediate `String` that
    /// [`Response::encode`] materializes.
    pub fn encode_json_into(&self, out: &mut Vec<u8>) {
        use std::io::Write;
        write!(out, "{}", self.to_json()).expect("writing to a Vec cannot fail");
        out.push(b'\n');
    }

    fn to_json(&self) -> Json {
        let ok = |fields: Vec<(&'static str, Json)>| {
            let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
            pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            Json::Obj(pairs)
        };
        let json = match self {
            Response::Hello { schema, shards } => ok(vec![
                ("schema", schema.to_json()),
                ("shards", Json::UInt(*shards)),
            ]),
            Response::Queued => ok(vec![("queued", Json::Bool(true))]),
            Response::Removed(removed) => ok(vec![("removed", Json::Bool(*removed))]),
            Response::Matched(ids) => ok(vec![("matched", Json::id_array(ids.iter().copied()))]),
            Response::Flushed => ok(vec![("flushed", Json::Bool(true))]),
            Response::Stats {
                metrics,
                reactor,
                latency,
                federation,
            } => {
                let mut fields = vec![("metrics", metrics.to_json())];
                if let Some(reactor) = reactor {
                    fields.push(("reactor", reactor.to_json()));
                }
                if let Some(latency) = latency {
                    fields.push(("latency", latency.to_json()));
                }
                if let Some(federation) = federation {
                    fields.push(("federation", Json::Obj(federation.to_json_fields())));
                }
                ok(fields)
            }
            Response::Error(message) => Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::Str(message.clone())),
            ]),
        };
        json
    }

    /// Appends this response as one binary frame (length header
    /// included) to `out`.
    ///
    /// Stats responses ride as their JSON encoding inside a binary frame
    /// (opcode `0x86` + string): stats is a cold diagnostic request, and
    /// reusing the JSON shape keeps one source of truth for a structure
    /// that grows a field almost every PR.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::write_frame(out, |p| match self {
            Response::Hello { schema, shards } => {
                codec::put_u8(p, opcode::R_HELLO);
                codec::put_u32(p, schema.attributes.len() as u32);
                for (name, lo, hi) in &schema.attributes {
                    codec::put_str(p, name);
                    codec::put_i64(p, *lo);
                    codec::put_i64(p, *hi);
                }
                codec::put_u64(p, *shards);
            }
            Response::Queued => codec::put_u8(p, opcode::R_QUEUED),
            Response::Removed(removed) => {
                codec::put_u8(p, opcode::R_REMOVED);
                codec::put_u8(p, u8::from(*removed));
            }
            Response::Matched(ids) => {
                codec::put_u8(p, opcode::R_MATCHED);
                codec::put_u32(p, ids.len() as u32);
                for &id in ids {
                    codec::put_u64(p, id);
                }
            }
            Response::Flushed => codec::put_u8(p, opcode::R_FLUSHED),
            Response::Stats { .. } => {
                codec::put_u8(p, opcode::R_STATS);
                codec::put_str(p, &self.encode());
            }
            Response::Error(message) => {
                codec::put_u8(p, opcode::R_ERROR);
                codec::put_str(p, message);
            }
        });
    }

    /// Decodes one binary frame payload. Strict about trailing bytes,
    /// like [`Request::decode_binary`].
    pub fn decode_binary(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = ByteReader::new(payload);
        let op = r.u8().map_err(codec_err)?;
        let response = match op {
            opcode::R_HELLO => {
                let count = r.u32().map_err(codec_err)? as usize;
                // Same allocation guard as the storage codec: an
                // attribute costs at least 20 encoded bytes.
                if count > r.remaining() / 20 {
                    return Err(WireError::Shape(
                        "hello attribute count exceeds payload size".into(),
                    ));
                }
                let mut attributes = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = r.str().map_err(codec_err)?;
                    let lo = r.i64().map_err(codec_err)?;
                    let hi = r.i64().map_err(codec_err)?;
                    attributes.push((name, lo, hi));
                }
                let shards = r.u64().map_err(codec_err)?;
                Response::Hello {
                    schema: SchemaDto { attributes },
                    shards,
                }
            }
            opcode::R_QUEUED => Response::Queued,
            opcode::R_REMOVED => Response::Removed(r.u8().map_err(codec_err)? != 0),
            opcode::R_MATCHED => {
                let count = r.u32().map_err(codec_err)? as usize;
                if count > r.remaining() / 8 {
                    return Err(WireError::Shape(
                        "matched id count exceeds payload size".into(),
                    ));
                }
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(r.u64().map_err(codec_err)?);
                }
                Response::Matched(ids)
            }
            opcode::R_FLUSHED => Response::Flushed,
            opcode::R_STATS => {
                let line = r.str().map_err(codec_err)?;
                match Response::decode(&line)? {
                    stats @ Response::Stats { .. } => stats,
                    _ => {
                        return Err(WireError::Shape(
                            "stats frame does not carry a stats response".into(),
                        ))
                    }
                }
            }
            opcode::R_ERROR => Response::Error(r.str().map_err(codec_err)?),
            other => {
                return Err(WireError::Shape(format!(
                    "unknown binary response opcode 0x{other:02X}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(WireError::Shape(format!(
                "binary response has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(response)
    }

    /// Decodes one response line.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        let value = Json::parse(line)?;
        let ok = value
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError::Shape("response needs a boolean \"ok\"".into()))?;
        if !ok {
            let message = value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            return Ok(Response::Error(message));
        }
        if let Some(schema) = value.get("schema") {
            let shards = value
                .get("shards")
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::Shape("hello response needs \"shards\"".into()))?;
            return Ok(Response::Hello {
                schema: SchemaDto::from_json(schema)?,
                shards,
            });
        }
        if value.get("queued").and_then(Json::as_bool) == Some(true) {
            return Ok(Response::Queued);
        }
        if value.get("flushed").and_then(Json::as_bool) == Some(true) {
            return Ok(Response::Flushed);
        }
        if let Some(removed) = value.get("removed").and_then(Json::as_bool) {
            return Ok(Response::Removed(removed));
        }
        if let Some(matched) = value.get("matched").and_then(Json::as_array) {
            let ids = matched
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| WireError::Shape("matched ids must be integers".into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Response::Matched(ids));
        }
        if let Some(metrics) = value.get("metrics") {
            let reactor = value
                .get("reactor")
                .map(ReactorMetrics::from_json)
                .transpose()?;
            let latency = value
                .get("latency")
                .map(|v| Box::new(LatencyStats::from_json(v)));
            let federation = value
                .get("federation")
                .map(psc_model::wire::FederationStats::from_json);
            return Ok(Response::Stats {
                metrics: ServiceMetrics::from_json(metrics)?,
                reactor,
                latency,
                federation,
            });
        }
        // No recognized discriminator: fail loudly rather than guessing —
        // a version-skewed peer must surface as a protocol error, not as a
        // silently "successful" flush.
        Err(WireError::Shape(
            "ok-response carries no recognized discriminator field".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ShardMetrics;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Hello,
            Request::Subscribe(SubscriptionDto {
                id: 42,
                ranges: vec![(0, 9), (-5, 5)],
            }),
            Request::Unsubscribe(7),
            Request::Publish(PublicationDto {
                values: vec![3, -4],
            }),
            Request::Flush,
            Request::Stats,
        ];
        for request in cases {
            let line = request.encode();
            assert_eq!(Request::decode(&line).unwrap(), request, "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Hello {
                schema: SchemaDto {
                    attributes: vec![("x0".into(), 0, 99)],
                },
                shards: 4,
            },
            Response::Queued,
            Response::Removed(true),
            Response::Removed(false),
            Response::Matched(vec![1, 2, 30]),
            Response::Matched(vec![]),
            Response::Flushed,
            Response::Stats {
                metrics: ServiceMetrics {
                    shards: vec![ShardMetrics {
                        subscriptions_ingested: 3,
                        ..Default::default()
                    }],
                    publications_total: 7,
                    placement: psc_model::wire::PlacementStats {
                        enabled: true,
                        directory_entries: 3,
                        placement_moves: 1,
                    },
                },
                reactor: None,
                latency: None,
                federation: None,
            },
            Response::Stats {
                metrics: ServiceMetrics::default(),
                reactor: Some(crate::metrics::ReactorMetrics {
                    connections_accepted: 9,
                    connections_current: 4,
                    requests_handled: 120,
                    ..Default::default()
                }),
                latency: Some(Box::new(psc_model::wire::LatencyStats {
                    end_to_end: psc_model::wire::StageLatency {
                        count: 10,
                        min_ns: 1_000,
                        max_ns: 90_000,
                        mean_ns: 12_000.0,
                        p50_ns: 8_000,
                        p90_ns: 40_000,
                        p99_ns: 88_000,
                        p999_ns: 90_000,
                    },
                    ..Default::default()
                })),
                federation: Some(psc_model::wire::FederationStats {
                    peers_connected: 2,
                    subs_forwarded: 5,
                    subs_received: 9,
                    subs_suppressed: 4,
                    subs_retracted: 1,
                    remote_publishes: 12,
                    segments_shipped: 3,
                }),
            },
            Response::Error("boom".into()),
        ];
        for response in cases {
            let line = response.encode();
            assert_eq!(Response::decode(&line).unwrap(), response, "line: {line}");
        }
    }

    #[test]
    fn stats_from_pre_telemetry_server_decodes_without_latency() {
        // Literal wire bytes as a pre-telemetry server emits them: no
        // "latency" key, no "publications_total", shard objects without
        // the storage/routing counters. Must still decode.
        let line = r#"{"ok":true,"metrics":{"shards":[{"ingested":2,"suppressed":0,
            "rejected":0,"unsubscribed":0,"batches":1,"publications":5,
            "notifications":3,"active":2,"covered":0,"phase1_probes":8,
            "phase2_probes":2,"phase2_skipped":1,"phase2_wholesale_skips":0,
            "uptime_secs":0.5}]}}"#
            .replace('\n', "");
        match Response::decode(&line).unwrap() {
            Response::Stats {
                metrics,
                reactor,
                latency,
                federation,
            } => {
                assert_eq!(metrics.shards.len(), 1);
                assert_eq!(metrics.publications_total, 0);
                assert!(reactor.is_none());
                assert!(latency.is_none());
                assert!(federation.is_none());
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode(r#"{"op":"warp"}"#).is_err());
        assert!(Request::decode(r#"{"noop":1}"#).is_err());
        assert!(
            Response::decode(r#"{"matched":[1]}"#).is_err(),
            "missing ok"
        );
        assert!(
            Response::decode(r#"{"ok":true,"accepted":true}"#).is_err(),
            "unknown ok-shape must not decode as success"
        );
        assert!(
            Response::decode(r#"{"ok":true,"queued":false}"#).is_err(),
            "queued:false is not a valid response shape"
        );
    }

    /// Strips the length header off a single encoded frame.
    fn payload(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 4 + len, "exactly one frame");
        &frame[4..]
    }

    #[test]
    fn binary_requests_round_trip() {
        let cases = [
            Request::Hello,
            Request::Subscribe(SubscriptionDto {
                id: 42,
                ranges: vec![(0, 9), (-5, 5)],
            }),
            Request::Unsubscribe(7),
            Request::Publish(PublicationDto {
                values: vec![3, -4],
            }),
            Request::Flush,
            Request::Stats,
        ];
        for request in cases {
            let mut frame = Vec::new();
            request.encode_binary(&mut frame);
            let back = Request::decode_binary(payload(&frame)).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn binary_responses_round_trip() {
        let cases = [
            Response::Hello {
                schema: SchemaDto {
                    attributes: vec![("x0".into(), 0, 99), ("x1".into(), -5, 5)],
                },
                shards: 4,
            },
            Response::Queued,
            Response::Removed(true),
            Response::Removed(false),
            Response::Matched(vec![1, 2, 30]),
            Response::Matched(vec![]),
            Response::Flushed,
            Response::Stats {
                metrics: ServiceMetrics {
                    shards: vec![ShardMetrics {
                        subscriptions_ingested: 3,
                        ..Default::default()
                    }],
                    publications_total: 7,
                    placement: psc_model::wire::PlacementStats {
                        enabled: true,
                        directory_entries: 3,
                        placement_moves: 1,
                    },
                },
                reactor: None,
                latency: None,
                federation: None,
            },
            Response::Error("boom".into()),
        ];
        for response in cases {
            let mut frame = Vec::new();
            response.encode_binary(&mut frame);
            let back = Response::decode_binary(payload(&frame)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn encode_json_into_matches_encode() {
        let response = Response::Matched(vec![5, 9]);
        let mut out = Vec::new();
        response.encode_json_into(&mut out);
        let mut expected = response.encode().into_bytes();
        expected.push(b'\n');
        assert_eq!(out, expected);
    }

    #[test]
    fn binary_decode_rejects_garbage() {
        assert!(matches!(
            Request::decode_binary(&[]),
            Err(WireError::Shape(_))
        ));
        assert!(
            Request::decode_binary(&[0x77]).is_err(),
            "unknown opcode must not decode"
        );
        // Publish declaring more values than the payload holds must be
        // rejected before any allocation.
        let mut bomb = vec![0x04];
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode_binary(&bomb).is_err());
        // Trailing bytes are corruption, not padding.
        let mut frame = Vec::new();
        Request::Flush.encode_binary(&mut frame);
        let mut long = payload(&frame).to_vec();
        long.push(0);
        assert!(Request::decode_binary(&long).is_err());
        assert!(Response::decode_binary(&[0x00]).is_err());
    }

    #[test]
    fn fast_path_publish_decodes_into_inline_publication() {
        let schema = psc_model::Schema::uniform(2, -10, 10);
        let mut frame = Vec::new();
        Request::Publish(PublicationDto {
            values: vec![3, -4],
        })
        .encode_binary(&mut frame);
        match decode_binary_request(payload(&frame), &schema).unwrap() {
            BinRequest::Publish(p) => assert_eq!(p.values(), &[3, -4]),
            BinRequest::Plain(_) => panic!("publish must take the fast path"),
        }
        // Wrong arity surfaces as a model error, same as the JSON path.
        let mut bad = Vec::new();
        Request::Publish(PublicationDto { values: vec![1] }).encode_binary(&mut bad);
        assert!(matches!(
            decode_binary_request(payload(&bad), &schema),
            Err(WireError::Model(ModelError::SchemaMismatch { .. }))
        ));
        // Out-of-domain values too.
        let mut oob = Vec::new();
        Request::Publish(PublicationDto {
            values: vec![3, 999],
        })
        .encode_binary(&mut oob);
        assert!(matches!(
            decode_binary_request(payload(&oob), &schema),
            Err(WireError::Model(ModelError::OutOfDomain { .. }))
        ));
    }

    #[test]
    fn ready_frame_recognized() {
        let mut out = Vec::new();
        encode_ready_frame(&mut out);
        assert!(is_ready_payload(payload(&out)));
        assert!(!is_ready_payload(&[0x80, 99]), "wrong version rejected");
        assert!(!is_ready_payload(&[]));
    }
}
