//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, UTF-8, `\n`
//! terminated. Requests carry an `"op"` discriminator:
//!
//! | op | request fields | response fields |
//! |---|---|---|
//! | `hello` | — | `schema` (see [`SchemaDto`]), `shards` |
//! | `subscribe` | `id`, `ranges` | `queued: true` |
//! | `unsubscribe` | `id` | `removed: bool` |
//! | `publish` | `values` | `matched: [id, ...]` (sorted) |
//! | `flush` | — | `flushed: true` |
//! | `stats` | — | `metrics` (see [`crate::ServiceMetrics`]), optional `reactor` (see [`crate::ReactorMetrics`]), optional `latency` (see [`psc_model::wire::LatencyStats`]) |
//!
//! Every response object carries `"ok": true|false`; failed requests embed
//! an `"error"` string instead of result fields. A malformed line never
//! tears down the connection — the server answers with an error response
//! and keeps reading.
//!
//! Framing is incremental on both ends: the server's reactor and the
//! client feed raw socket bytes through
//! [`psc_model::wire::LineFramer`], so a request or response line may
//! arrive split across any number of reads. Request lines are capped at
//! [`MAX_REQUEST_LINE_BYTES`] (enforced mid-stream; an oversized line
//! draws an error response), and nesting depth is capped by the JSON
//! parser when each completed line is decoded.

use crate::metrics::{ReactorMetrics, ServiceMetrics};
use psc_model::wire::{Json, LatencyStats, PublicationDto, SchemaDto, SubscriptionDto, WireError};

/// Longest request line the server accepts; the incremental framer
/// enforces it mid-stream, so an unterminated hostile line never buffers
/// more than this many bytes.
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Schema/topology handshake.
    Hello,
    /// Enqueue a subscription for admission.
    Subscribe(SubscriptionDto),
    /// Remove a subscription by id.
    Unsubscribe(u64),
    /// Match one publication.
    Publish(PublicationDto),
    /// Force admission of all buffered subscriptions.
    Flush,
    /// Scrape service metrics.
    Stats,
}

impl Request {
    /// Decodes one request line.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let value = Json::parse(line)?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::Shape("request needs a string \"op\"".into()))?;
        match op {
            "hello" => Ok(Request::Hello),
            "subscribe" => Ok(Request::Subscribe(SubscriptionDto::from_json(&value)?)),
            "unsubscribe" => {
                let id = value
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| WireError::Shape("unsubscribe needs a numeric \"id\"".into()))?;
                Ok(Request::Unsubscribe(id))
            }
            "publish" => Ok(Request::Publish(PublicationDto::from_json(&value)?)),
            "flush" => Ok(Request::Flush),
            "stats" => Ok(Request::Stats),
            other => Err(WireError::Shape(format!("unknown op \"{other}\""))),
        }
    }

    /// Encodes as one request line (no trailing newline).
    pub fn encode(&self) -> String {
        let json = match self {
            Request::Hello => Json::obj([("op", Json::Str("hello".into()))]),
            Request::Subscribe(dto) => {
                let mut obj = vec![("op".to_string(), Json::Str("subscribe".into()))];
                if let Json::Obj(pairs) = dto.to_json() {
                    obj.extend(pairs);
                }
                Json::Obj(obj)
            }
            Request::Unsubscribe(id) => Json::obj([
                ("op", Json::Str("unsubscribe".into())),
                ("id", Json::UInt(*id)),
            ]),
            Request::Publish(dto) => {
                let mut obj = vec![("op".to_string(), Json::Str("publish".into()))];
                if let Json::Obj(pairs) = dto.to_json() {
                    obj.extend(pairs);
                }
                Json::Obj(obj)
            }
            Request::Flush => Json::obj([("op", Json::Str("flush".into()))]),
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]),
        };
        json.to_string()
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake result.
    Hello {
        /// The service schema.
        schema: SchemaDto,
        /// Number of shards serving the store.
        shards: u64,
    },
    /// Subscription buffered for admission.
    Queued,
    /// Unsubscription result.
    Removed(bool),
    /// Publication match result (ascending ids).
    Matched(Vec<u64>),
    /// Flush acknowledged.
    Flushed,
    /// Metrics scrape result.
    Stats {
        /// Shard/matching-engine counters.
        metrics: ServiceMetrics,
        /// Front-end counters; absent when the service is driven
        /// in-process without a reactor (and tolerated as absent on
        /// decode, so older peers still interoperate).
        reactor: Option<ReactorMetrics>,
        /// Per-stage latency quantiles; absent from pre-telemetry
        /// servers and tolerated as absent on decode (same version-skew
        /// policy as `reactor`). Boxed: five stage summaries would
        /// otherwise dominate every `Response`'s (and `ClientError`'s)
        /// inline size.
        latency: Option<Box<LatencyStats>>,
    },
    /// The request failed.
    Error(String),
}

impl Response {
    /// Encodes as one response line (no trailing newline).
    pub fn encode(&self) -> String {
        let ok = |fields: Vec<(&'static str, Json)>| {
            let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
            pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            Json::Obj(pairs)
        };
        let json = match self {
            Response::Hello { schema, shards } => ok(vec![
                ("schema", schema.to_json()),
                ("shards", Json::UInt(*shards)),
            ]),
            Response::Queued => ok(vec![("queued", Json::Bool(true))]),
            Response::Removed(removed) => ok(vec![("removed", Json::Bool(*removed))]),
            Response::Matched(ids) => ok(vec![("matched", Json::id_array(ids.iter().copied()))]),
            Response::Flushed => ok(vec![("flushed", Json::Bool(true))]),
            Response::Stats {
                metrics,
                reactor,
                latency,
            } => {
                let mut fields = vec![("metrics", metrics.to_json())];
                if let Some(reactor) = reactor {
                    fields.push(("reactor", reactor.to_json()));
                }
                if let Some(latency) = latency {
                    fields.push(("latency", latency.to_json()));
                }
                ok(fields)
            }
            Response::Error(message) => Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::Str(message.clone())),
            ]),
        };
        json.to_string()
    }

    /// Decodes one response line.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        let value = Json::parse(line)?;
        let ok = value
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError::Shape("response needs a boolean \"ok\"".into()))?;
        if !ok {
            let message = value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            return Ok(Response::Error(message));
        }
        if let Some(schema) = value.get("schema") {
            let shards = value
                .get("shards")
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::Shape("hello response needs \"shards\"".into()))?;
            return Ok(Response::Hello {
                schema: SchemaDto::from_json(schema)?,
                shards,
            });
        }
        if value.get("queued").and_then(Json::as_bool) == Some(true) {
            return Ok(Response::Queued);
        }
        if value.get("flushed").and_then(Json::as_bool) == Some(true) {
            return Ok(Response::Flushed);
        }
        if let Some(removed) = value.get("removed").and_then(Json::as_bool) {
            return Ok(Response::Removed(removed));
        }
        if let Some(matched) = value.get("matched").and_then(Json::as_array) {
            let ids = matched
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| WireError::Shape("matched ids must be integers".into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Response::Matched(ids));
        }
        if let Some(metrics) = value.get("metrics") {
            let reactor = value
                .get("reactor")
                .map(ReactorMetrics::from_json)
                .transpose()?;
            let latency = value
                .get("latency")
                .map(|v| Box::new(LatencyStats::from_json(v)));
            return Ok(Response::Stats {
                metrics: ServiceMetrics::from_json(metrics)?,
                reactor,
                latency,
            });
        }
        // No recognized discriminator: fail loudly rather than guessing —
        // a version-skewed peer must surface as a protocol error, not as a
        // silently "successful" flush.
        Err(WireError::Shape(
            "ok-response carries no recognized discriminator field".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ShardMetrics;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Hello,
            Request::Subscribe(SubscriptionDto {
                id: 42,
                ranges: vec![(0, 9), (-5, 5)],
            }),
            Request::Unsubscribe(7),
            Request::Publish(PublicationDto {
                values: vec![3, -4],
            }),
            Request::Flush,
            Request::Stats,
        ];
        for request in cases {
            let line = request.encode();
            assert_eq!(Request::decode(&line).unwrap(), request, "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Hello {
                schema: SchemaDto {
                    attributes: vec![("x0".into(), 0, 99)],
                },
                shards: 4,
            },
            Response::Queued,
            Response::Removed(true),
            Response::Removed(false),
            Response::Matched(vec![1, 2, 30]),
            Response::Matched(vec![]),
            Response::Flushed,
            Response::Stats {
                metrics: ServiceMetrics {
                    shards: vec![ShardMetrics {
                        subscriptions_ingested: 3,
                        ..Default::default()
                    }],
                    publications_total: 7,
                },
                reactor: None,
                latency: None,
            },
            Response::Stats {
                metrics: ServiceMetrics::default(),
                reactor: Some(crate::metrics::ReactorMetrics {
                    connections_accepted: 9,
                    connections_current: 4,
                    requests_handled: 120,
                    ..Default::default()
                }),
                latency: Some(Box::new(psc_model::wire::LatencyStats {
                    end_to_end: psc_model::wire::StageLatency {
                        count: 10,
                        min_ns: 1_000,
                        max_ns: 90_000,
                        mean_ns: 12_000.0,
                        p50_ns: 8_000,
                        p90_ns: 40_000,
                        p99_ns: 88_000,
                        p999_ns: 90_000,
                    },
                    ..Default::default()
                })),
            },
            Response::Error("boom".into()),
        ];
        for response in cases {
            let line = response.encode();
            assert_eq!(Response::decode(&line).unwrap(), response, "line: {line}");
        }
    }

    #[test]
    fn stats_from_pre_telemetry_server_decodes_without_latency() {
        // Literal wire bytes as a pre-telemetry server emits them: no
        // "latency" key, no "publications_total", shard objects without
        // the storage/routing counters. Must still decode.
        let line = r#"{"ok":true,"metrics":{"shards":[{"ingested":2,"suppressed":0,
            "rejected":0,"unsubscribed":0,"batches":1,"publications":5,
            "notifications":3,"active":2,"covered":0,"phase1_probes":8,
            "phase2_probes":2,"phase2_skipped":1,"phase2_wholesale_skips":0,
            "uptime_secs":0.5}]}}"#
            .replace('\n', "");
        match Response::decode(&line).unwrap() {
            Response::Stats {
                metrics,
                reactor,
                latency,
            } => {
                assert_eq!(metrics.shards.len(), 1);
                assert_eq!(metrics.publications_total, 0);
                assert!(reactor.is_none());
                assert!(latency.is_none());
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode(r#"{"op":"warp"}"#).is_err());
        assert!(Request::decode(r#"{"noop":1}"#).is_err());
        assert!(
            Response::decode(r#"{"matched":[1]}"#).is_err(),
            "missing ok"
        );
        assert!(
            Response::decode(r#"{"ok":true,"accepted":true}"#).is_err(),
            "unknown ok-shape must not decode as success"
        );
        assert!(
            Response::decode(r#"{"ok":true,"queued":false}"#).is_err(),
            "queued:false is not a valid response shape"
        );
    }
}
