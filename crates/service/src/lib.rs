//! # psc-service
//!
//! A sharded, multi-threaded subscription/matching service wrapping the
//! paper's subsumption machinery (`psc-core`'s checker inside
//! `psc-matcher`'s covered/uncovered store) behind a concurrent API and a
//! line-delimited JSON wire protocol over TCP — the first serving-layer
//! subsystem on the ROADMAP's path to a production-scale system.
//!
//! ## Architecture
//!
//! ```text
//!                      ┌────────────────────────────────────────────┐
//!  TCP clients ──────▶ │ ServiceServer (accept + connection threads)│
//!  (ServiceClient)     └──────────────────┬─────────────────────────┘
//!                                         ▼
//!                      ┌────────────────────────────────────────────┐
//!                      │ PubSubService (router)                     │
//!                      │  subscribe ──▶ per-shard admission buffers │
//!                      │  publish ────▶ fan-out + merge             │
//!                      └───┬───────────────┬──────────────────┬─────┘
//!                          ▼               ▼                  ▼
//!                     shard 0          shard 1    …      shard N-1
//!                 (CoveringStore + SubsumptionChecker, own thread)
//! ```
//!
//! - **Sharding** — subscription ids are hashed (SplitMix64 finalizer)
//!   across `N` worker threads; each shard owns an independent
//!   `CoveringStore`, so admission-time subsumption checks and
//!   publication matching parallelize without locks.
//! - **Admission pipeline** — `subscribe` buffers per shard and admits in
//!   batches; the store admits widest-first within a batch, maximizing the
//!   paper's covered/uncovered suppression.
//! - **Fan-out matching** — `publish` (and the amortized `publish_batch`)
//!   sends the publication set to every shard and merges the per-shard
//!   match sets into one ascending id list.
//! - **Metrics** — per-shard ingest/suppression/probe counters
//!   ([`ShardMetrics`]) merge into a [`ServiceMetrics`] aggregate, in the
//!   mold of `psc_broker::metrics`.
//! - **Wire protocol** — newline-delimited JSON over `std::net` TCP; see
//!   [`wire`] for the op table and [`ServiceClient`] for the blocking
//!   client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod server;
pub mod service;
pub mod wire;

mod shard;

pub use client::{ClientError, ServiceClient};
pub use metrics::{ServiceMetrics, ShardMetrics};
pub use server::ServiceServer;
pub use service::{PubSubService, ServiceConfig, ServiceError};
