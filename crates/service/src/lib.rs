//! # psc-service
//!
//! A sharded, multi-threaded subscription/matching service wrapping the
//! paper's subsumption machinery (`psc-core`'s checker inside
//! `psc-matcher`'s covered/uncovered store) behind a concurrent API and a
//! line-delimited JSON wire protocol over TCP — the first serving-layer
//! subsystem on the ROADMAP's path to a production-scale system.
//!
//! ## Architecture
//!
//! ```text
//!                      ┌────────────────────────────────────────────┐
//!  TCP clients ──────▶ │ ServiceServer — one reactor thread         │
//!  (ServiceClient)     │  epoll { listener, wake pipe, N conns }    │
//!                      │  per-conn state machines + timer wheel     │
//!                      └──────────────────┬─────────────────────────┘
//!                                         ▼
//!                      ┌────────────────────────────────────────────┐
//!                      │ PubSubService (router)                     │
//!                      │  subscribe ──▶ per-shard admission buffers │
//!                      │  publish ────▶ fan-out + merge             │
//!                      └───┬───────────────┬──────────────────┬─────┘
//!                          ▼               ▼                  ▼
//!                     shard 0          shard 1    …      shard N-1
//!                 (CoveringStore + SubsumptionChecker, own thread)
//!                          ▼               ▼                  ▼
//!                    shard-0/wal     shard-1/wal        shard-N-1/wal
//!                      +snapshot       +snapshot          +snapshot
//!                     (optional durable storage: ServiceConfig.data_dir)
//! ```
//!
//! - **Reactor front-end** — [`ServiceServer`] serves every connection
//!   from one readiness-based event-loop thread ([`reactor`]): raw epoll
//!   bindings (no crates.io access, so no mio/libc), non-blocking accept,
//!   incremental line framing, bounded write backlogs with slow-consumer
//!   disconnect, an idle-timeout wheel, a connection cap, and shutdown
//!   via a wakeup pipe. Thread count is O(shards), not O(connections).
//! - **Sharding** — subscriptions are placed across `N` worker threads
//!   by a greedy content-aware scorer (minimum summary widening, with
//!   an id→shard directory for unsubscribe; [`routing::placement`]), or
//!   by an id hash (SplitMix64 finalizer) with
//!   [`ServiceConfig::placement_enabled`] off; each shard owns an
//!   independent `CoveringStore`, so admission-time subsumption checks
//!   and publication matching parallelize without locks.
//! - **Admission pipeline** — `subscribe` buffers per shard and admits in
//!   batches; the store admits widest-first within a batch, maximizing the
//!   paper's covered/uncovered suppression.
//! - **Fan-out matching** — `publish` (and the amortized `publish_batch`)
//!   sends the publication set to the shards that might match it and
//!   merges the per-shard match sets into one ascending id list.
//! - **Content-aware routing** — each shard maintains a conservative
//!   attribute-space summary of its live population ([`routing`]):
//!   per-attribute multi-interval bounds (nearest-gap merged at a
//!   configurable cap) plus a presence filter over constrained
//!   attributes, published through a lock-free versioned epoch cell.
//!   The publish path consults the summaries and skips shards that
//!   provably cannot match (false positives allowed, false negatives
//!   impossible), cutting fan-out cost at high shard counts —
//!   especially combined with placement, which keeps the shards'
//!   summaries disjoint.
//! - **Metrics** — per-shard ingest/suppression/probe counters
//!   ([`ShardMetrics`]) merge into a [`ServiceMetrics`] aggregate;
//!   [`ReactorMetrics`] covers the serving edge (connections, slow-
//!   consumer/idle disconnects, cap rejects).
//! - **Latency telemetry** — fixed-memory log-bucketed histograms
//!   ([`telemetry`]) time every pipeline stage (decode, route, match,
//!   deliver) plus true publish→deliver latency; quantile summaries ride
//!   in the `stats` wire response and `docs/OBSERVABILITY.md` documents
//!   the design.
//! - **Wire protocol** — newline-delimited JSON over TCP with
//!   incremental, mid-stream-capped framing; see [`wire`] for the op
//!   table and [`ServiceClient`] for the blocking client (all its socket
//!   operations carry timeouts).
//! - **Durability** — with [`ServiceConfig::data_dir`] set, each shard
//!   owns a segmented write-ahead log + snapshots ([`storage`]): one
//!   group-commit fsync covers every command in a worker wake-up,
//!   snapshots are written by a per-shard background thread, and a
//!   restarted server rebuilds every shard store from disk and serves
//!   the same match results, tolerating a torn final log record from a
//!   crash mid-append (`docs/DURABILITY.md` states the full contract).
//!
//! The repository-level `docs/ARCHITECTURE.md` walks the full dataflow
//! and `docs/PROTOCOL.md` specifies the wire protocol for non-Rust
//! clients.

// The reactor's `sys` module needs `extern "C"` bindings to epoll and
// friends (the environment vendors no libc/mio); all unsafe code is
// confined there and the rest of the crate stays deny-checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod federation;
pub mod metrics;
pub mod reactor;
pub mod routing;
pub mod server;
pub mod service;
pub mod storage;
pub mod telemetry;
pub mod wire;

mod shard;

pub use client::{ClientError, ClientProtocol, ServiceClient};
pub use federation::{FederatedNode, FederationConfig};
pub use metrics::{ReactorMetrics, ServiceMetrics, ShardMetrics};
pub use server::ServiceServer;
pub use service::{PubSubService, ServiceConfig, ServiceError};
pub use storage::{FsyncPolicy, StorageError};
pub use telemetry::{LogHistogram, ServiceLatency};
