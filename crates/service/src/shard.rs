//! Shard worker threads.
//!
//! Each shard owns a [`CoveringStore`] (and through it a
//! `SubsumptionChecker`) plus a deterministic RNG, and processes commands
//! from a single MPSC queue. Ownership-per-thread means the store needs no
//! locking at all: admission, matching, and metric scrapes are serialized
//! per shard, and shards run fully in parallel with each other.
//!
//! Command ordering is the correctness backbone: `std::sync::mpsc` delivers
//! messages in a total order per channel, so once the router has enqueued an
//! admission batch, any later `MatchBatch` on the same shard observes it.
//!
//! ## Durability: group commit
//!
//! When the service is configured with a `data_dir`, each worker also owns
//! a [`ShardStorage`]: admissions and unsubscriptions are appended to the
//! shard's write-ahead log *before* they touch the store (see
//! [`crate::storage`]). The worker serves commands in **groups**: it blocks
//! for the first command, then greedily drains everything already queued
//! (up to [`GROUP_COMMIT_MAX_COMMANDS`]), appends all their log records,
//! and calls [`ShardStorage::commit`] once — a single fsync covers the
//! whole group, so fsync cost amortizes over exactly the operations that
//! arrived while the previous fsync was in flight. Replies that
//! acknowledge a *durable mutation* (unsubscribe confirmations,
//! [`ShardCommand::Barrier`]) are deferred to the end of the group and
//! released only after the covering commit returns; read replies
//! (matching, scrapes) are sent immediately — a notification is not a
//! durability acknowledgement, so matching never waits on the disk.
//!
//! Snapshots run **off-thread**: when the cadence fires, the worker
//! freezes a store image (cheap clones of the entries, at a group
//! boundary so the image matches a committed log position) and hands it
//! to a per-shard background writer that encodes it, writes it atomically
//! through [`SnapshotSink`], and prunes covered log segments. Admission
//! never stalls behind snapshot encoding or I/O; at most one snapshot is
//! in flight per shard.
//!
//! On boot, [`ShardWorker::replay`] pushes recovered log records through
//! the **same** admission/removal code as live traffic, so a rebuilt
//! shard is indistinguishable from one that never restarted. Storage
//! failures after boot never take the shard down — the operation proceeds
//! in memory and the failure is counted in
//! [`ShardMetrics::storage_errors`].

use crate::metrics::ShardMetrics;
use crate::routing::{ShardSummary, SummaryCell};
use crate::storage::{snapshot, LogRecord, ShardStorage, SnapshotSink, StorageError, WalMark};
use crate::telemetry::LogHistogram;
use psc_matcher::{CoverParents, CoveringStore};
use psc_model::wire::SummaryStats;
use psc_model::{InlineVec, Publication, Schema, Subscription, SubscriptionId};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Cap on commands executed under one commit group. Bounds both the
/// latency of a deferred acknowledgement (at most this many commands plus
/// one fsync) and the window of work a failed commit can leave
/// acknowledged-but-unsynced. Large enough that a saturating producer
/// still amortizes an fsync over hundreds of operations.
pub(crate) const GROUP_COMMIT_MAX_COMMANDS: usize = 256;

/// Batch indices selected for one shard. Publish batches are almost
/// always small (a network publish is a batch of one), so the indices
/// live inline in the command — no allocation on the fan-out path.
pub(crate) type SelectedIndices = InlineVec<u32, 16>;

/// Commands a shard worker processes, in arrival order.
pub(crate) enum ShardCommand {
    /// Admit a batch of subscriptions (fire-and-forget).
    Admit(Vec<(SubscriptionId, Subscription)>),
    /// Remove a subscription; replies whether it was stored here. The
    /// reply is a durable acknowledgement: it is withheld until the
    /// commit covering the removal's log record completes.
    Unsubscribe(SubscriptionId, Sender<bool>),
    /// Reply (with nothing) once every command enqueued before this one
    /// is durably committed. The service's flush/shutdown paths use it to
    /// turn "the queue is drained" into "the queue is drained *and
    /// fsynced*".
    Barrier(Sender<()>),
    /// Match the publications at the given indices of the shared batch
    /// against the local store; replies one id-vector per *selected*
    /// index, in index order, echoing the selected indices back so every
    /// visited shard can share one reply channel (replies arrive in
    /// completion order and carry their own merge positions). The router
    /// omits indices its routing summaries prove cannot match here.
    MatchBatch(
        Arc<[Publication]>,
        SelectedIndices,
        Sender<(SelectedIndices, Vec<Vec<SubscriptionId>>)>,
    ),
    /// Report current metrics plus the shard's match-stage latency
    /// histogram (owned here, so the reply is the scrape-on-demand read).
    Scrape(Sender<(ShardMetrics, LogHistogram)>),
    /// Dump `(id, subscription, is_active)` for every stored subscription.
    Snapshot(Sender<HashMap<SubscriptionId, (Subscription, bool)>>),
    /// Drain and exit.
    Shutdown,
}

/// A reply withheld until the commit that covers its mutation returns.
enum DeferredAck {
    Unsubscribed(Sender<bool>, bool),
    Barrier(Sender<()>),
}

/// A frozen store image on its way to the background snapshot writer.
struct SnapshotJob {
    entries: Vec<(SubscriptionId, Subscription, Option<CoverParents>)>,
    rng_state: [u64; 4],
    mark: WalMark,
}

/// What one snapshot job did: segments pruned on success.
type SnapshotOutcome = Result<u64, StorageError>;

/// The background snapshot writer: encodes frozen images and writes them
/// through the sink, reporting each outcome back to the worker. Exits
/// when the job channel closes (worker shutdown).
fn snapshot_writer_loop(
    schema: Schema,
    sink: SnapshotSink,
    jobs: Receiver<SnapshotJob>,
    outcomes: Sender<SnapshotOutcome>,
) {
    while let Ok(job) = jobs.recv() {
        let bytes = snapshot::encode_entries(&job.entries, &schema, job.rng_state, job.mark);
        let result = sink
            .write_snapshot(&bytes)
            .and_then(|()| sink.prune_segments(job.mark.segment));
        let _ = outcomes.send(result);
    }
}

/// State owned by one shard worker thread.
pub(crate) struct ShardWorker {
    schema: Schema,
    store: CoveringStore,
    rng: StdRng,
    storage: Option<ShardStorage>,
    /// Job channel to the background snapshot writer (`None` when
    /// storage is disabled). Dropped on shutdown to stop the writer.
    snapshot_tx: Option<Sender<SnapshotJob>>,
    snapshot_rx: Option<Receiver<SnapshotOutcome>>,
    snapshot_join: Option<JoinHandle<()>>,
    /// At most one snapshot is in flight: freezing another image while
    /// the writer is busy would only queue memory, and the newer image
    /// covers everything the skipped one would have.
    snapshot_in_flight: bool,
    snapshots_written: u64,
    segments_pruned: u64,
    /// Routing summary of the live store, mirrored into `cell` after
    /// every mutation so the router's pruning view is never behind the
    /// admissions it has confirmed applied.
    summary: ShardSummary,
    cell: Arc<SummaryCell>,
    /// When routing is disabled, summary maintenance is skipped entirely
    /// (the cell stays unpublished) so the fan-out-all configuration pays
    /// zero routing overhead — important for honest A/B baselines.
    routing_enabled: bool,
    /// Admission batches applied (the freshness handshake counter
    /// published with the summary; see [`crate::routing::SummaryCell`]).
    batches_applied: u64,
    /// Unsubscriptions since the summary was last rebuilt from the store.
    removals_since_rebuild: u64,
    /// Bounded-staleness knob: rebuild once `removals_since_rebuild`
    /// exceeds this.
    retighten_after: u64,
    summary_rebuilds: u64,
    /// Interval cap for the summary (mirrored from the service config so
    /// re-tightening rebuilds stay capped the same way).
    summary_intervals: usize,
    /// When the summary first went loose (the first removal since the
    /// last rebuild); `None` while the summary is tight. Lets the scrape
    /// report staleness as wall-clock age, not just a removal count.
    loose_since: Option<Instant>,
    /// Wall time of each publication match against the local store.
    /// Worker-owned like every other counter here: recording is a plain
    /// array increment, and scrapes read it through the command queue.
    match_latency: LogHistogram,
    started: Instant,
    subscriptions_ingested: u64,
    subscriptions_suppressed: u64,
    subscriptions_rejected: u64,
    subscriptions_recovered: u64,
    unsubscriptions: u64,
    batches_admitted: u64,
    publications_processed: u64,
    notifications: u64,
    storage_errors: u64,
}

impl ShardWorker {
    // Private constructor with a single call site in `PubSubService`;
    // the arguments are the shard's full dependency set, not an API.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        schema: Schema,
        store: CoveringStore,
        rng: StdRng,
        storage: Option<ShardStorage>,
        cell: Arc<SummaryCell>,
        routing_enabled: bool,
        retighten_after: u64,
        summary_intervals: usize,
    ) -> Self {
        // One snapshot writer per durable shard. Spawned eagerly: the
        // thread blocks on an empty channel, so an all-in-memory or
        // snapshot-free shard pays one idle thread, not polling.
        let (snapshot_tx, snapshot_rx, snapshot_join) = match &storage {
            Some(storage) => {
                let (job_tx, job_rx) = mpsc::channel();
                let (out_tx, out_rx) = mpsc::channel();
                let sink = storage.sink();
                let writer_schema = schema.clone();
                let handle = std::thread::Builder::new()
                    .name("psc-snapshot".into())
                    .spawn(move || snapshot_writer_loop(writer_schema, sink, job_rx, out_tx))
                    .expect("spawn snapshot writer thread");
                (Some(job_tx), Some(out_rx), Some(handle))
            }
            None => (None, None, None),
        };
        let summary = ShardSummary::with_intervals(schema.len(), summary_intervals);
        ShardWorker {
            schema,
            store,
            rng,
            storage,
            snapshot_tx,
            snapshot_rx,
            snapshot_join,
            snapshot_in_flight: false,
            snapshots_written: 0,
            segments_pruned: 0,
            summary,
            cell,
            routing_enabled,
            batches_applied: 0,
            removals_since_rebuild: 0,
            retighten_after,
            summary_rebuilds: 0,
            summary_intervals: summary_intervals.max(1),
            loose_since: None,
            match_latency: LogHistogram::new(),
            started: Instant::now(),
            subscriptions_ingested: 0,
            subscriptions_suppressed: 0,
            subscriptions_rejected: 0,
            subscriptions_recovered: 0,
            unsubscriptions: 0,
            batches_admitted: 0,
            publications_processed: 0,
            notifications: 0,
            storage_errors: 0,
        }
    }

    /// Replays recovered write-ahead-log records through the live
    /// admission/removal paths (minus the log appends), then records how
    /// many subscriptions the shard rebooted with.
    ///
    /// Called once, before the worker starts serving commands. The
    /// records are exactly the log suffix the snapshot does *not* cover
    /// — `ShardStorage::open` skips a snapshot-covered prefix via the
    /// snapshot's `WalMark`, so replay starts from the snapshot's store
    /// and RNG state and re-applies only genuinely newer operations.
    pub(crate) fn replay(&mut self, records: Vec<LogRecord>) {
        for record in records {
            match record {
                LogRecord::Admit(batch) => {
                    let fresh = self.dedup_against_store(batch, false);
                    self.admit_to_store(fresh, false);
                }
                LogRecord::Unsubscribe(id) => {
                    let _ = self.store.remove(id, &mut self.rng);
                }
            }
        }
        self.subscriptions_recovered = self.store.len() as u64;
        // Summaries are not persisted: rebuild from the recovered store
        // and publish, so the router starts pruning with a tight view the
        // moment the shard begins serving. For an in-memory boot this
        // publishes the empty summary — an empty shard prunes everything.
        self.rebuild_summary();
        self.publish_summary();
    }

    /// Rebuilds the routing summary tightly from the store and resets the
    /// staleness clock. No-op with routing disabled.
    fn rebuild_summary(&mut self) {
        if !self.routing_enabled {
            return;
        }
        self.summary = ShardSummary::from_bounds_capped(
            &self.schema,
            self.store.iter_bounds(),
            self.summary_intervals,
        );
        self.removals_since_rebuild = 0;
        self.loose_since = None;
        self.summary_rebuilds += 1;
    }

    /// Mirrors the current summary (and the applied-batch handshake
    /// counter) into the shared cell for lock-free router reads. No-op
    /// with routing disabled (the cell then stays forever unpublished,
    /// which routing-side code treats as "visit").
    fn publish_summary(&self) {
        if !self.routing_enabled {
            return;
        }
        self.cell.publish(&self.summary, self.batches_applied);
    }

    /// The worker loop: runs until `Shutdown` or the channel closes.
    ///
    /// Group-commit structure: block for one command, drain whatever else
    /// is already queued, then commit once and release the group's
    /// deferred acknowledgements. With storage disabled the same loop
    /// runs with a no-op commit — group boundaries still exist but cost
    /// nothing.
    pub(crate) fn run(mut self, commands: Receiver<ShardCommand>) {
        'serve: while let Ok(first) = commands.recv() {
            let mut acks = Vec::new();
            let mut shutdown = self.execute(first, &mut acks);
            while !shutdown && acks.len() < GROUP_COMMIT_MAX_COMMANDS {
                match commands.try_recv() {
                    Ok(command) => shutdown = self.execute(command, &mut acks),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
            self.commit_group(acks);
            self.absorb_snapshot_outcomes();
            if shutdown {
                break 'serve;
            }
            self.maybe_snapshot();
        }
        // The final group (including the one containing Shutdown) was
        // committed and acked above — the drop path's barrier reply is
        // durable by the time the service joins this thread.
        self.stop_snapshot_writer();
    }

    /// Applies one command. Mutation acknowledgements are pushed onto
    /// `acks` instead of sent; read replies go out immediately. Returns
    /// whether this command ends the worker.
    fn execute(&mut self, command: ShardCommand, acks: &mut Vec<DeferredAck>) -> bool {
        match command {
            ShardCommand::Admit(batch) => {
                self.admit(batch);
                // Count the batch and publish even when dedup dropped
                // everything: the router's handshake counts *sent*
                // Admit commands, so the applied counter must track
                // commands, not surviving subscriptions.
                self.batches_applied += 1;
                self.publish_summary();
            }
            ShardCommand::Unsubscribe(id, reply) => {
                let removed = self.unsubscribe(id);
                acks.push(DeferredAck::Unsubscribed(reply, removed));
            }
            ShardCommand::Barrier(reply) => {
                acks.push(DeferredAck::Barrier(reply));
            }
            ShardCommand::MatchBatch(publications, selected, reply) => {
                let matches = selected
                    .iter()
                    .map(|&i| {
                        let started = Instant::now();
                        let ids = self.store.match_publication(&publications[i as usize]);
                        self.match_latency.record_duration(started.elapsed());
                        self.publications_processed += 1;
                        self.notifications += ids.len() as u64;
                        ids
                    })
                    .collect();
                let _ = reply.send((selected, matches));
            }
            ShardCommand::Scrape(reply) => {
                let _ = reply.send((self.metrics(), self.match_latency.clone()));
            }
            ShardCommand::Snapshot(reply) => {
                let _ = reply.send(self.store.snapshot());
            }
            ShardCommand::Shutdown => return true,
        }
        false
    }

    /// Ends a command group: one commit covers every record the group
    /// appended, then the group's acknowledgements are released. A failed
    /// commit is counted and the acks are released anyway — consistent
    /// with the storage philosophy that a sick disk degrades durability,
    /// not availability (the dirty segments stay queued and the next
    /// commit retries them; `storage_errors` is the operator's signal).
    fn commit_group(&mut self, acks: Vec<DeferredAck>) {
        if let Some(storage) = &mut self.storage {
            if storage.commit().is_err() {
                self.storage_errors += 1;
            }
        }
        for ack in acks {
            match ack {
                DeferredAck::Unsubscribed(reply, removed) => {
                    let _ = reply.send(removed);
                }
                DeferredAck::Barrier(reply) => {
                    let _ = reply.send(());
                }
            }
        }
    }

    /// Drops batch entries whose id is already stored (or repeated within
    /// the batch): `CoveringStore::insert` treats duplicate ids as a
    /// programming error (panic), but on a network-facing admission path
    /// they are client errors to be counted, not crashes. Replay reuses
    /// the same filter with counting disabled.
    fn dedup_against_store(
        &mut self,
        batch: Vec<(SubscriptionId, Subscription)>,
        count_rejects: bool,
    ) -> Vec<(SubscriptionId, Subscription)> {
        let mut fresh: Vec<(SubscriptionId, Subscription)> = Vec::with_capacity(batch.len());
        for (id, sub) in batch {
            if self.store.contains(id) || fresh.iter().any(|(other, _)| *other == id) {
                if count_rejects {
                    self.subscriptions_rejected += 1;
                }
            } else {
                fresh.push((id, sub));
            }
        }
        fresh
    }

    fn admit_to_store(&mut self, fresh: Vec<(SubscriptionId, Subscription)>, count: bool) {
        if fresh.is_empty() {
            return;
        }
        if count {
            self.batches_admitted += 1;
        }
        for (_, outcome) in self.store.admit_batch(fresh, &mut self.rng) {
            if count {
                self.subscriptions_ingested += 1;
                if !outcome.is_active() {
                    self.subscriptions_suppressed += 1;
                }
            }
        }
    }

    fn admit(&mut self, batch: Vec<(SubscriptionId, Subscription)>) {
        let fresh = self.dedup_against_store(batch, true);
        if fresh.is_empty() {
            return;
        }
        // Write-ahead: the log sees the batch before the store does, so a
        // crash after the append replays it and a crash before it means
        // the batch was simply never admitted. The record wraps the batch
        // by move (no per-subscription clone on the hot path) and hands
        // it back for admission.
        let record = LogRecord::Admit(fresh);
        self.log(&record);
        let LogRecord::Admit(fresh) = record else {
            unreachable!("record built as Admit above")
        };
        // Widen the routing summary *before* the cell is republished (the
        // caller publishes after this returns): covered or active, every
        // admitted subscription can match publications and must be
        // reflected in the shard's conservative bounds.
        if self.routing_enabled {
            for (_, sub) in &fresh {
                self.summary.widen(sub);
            }
        }
        self.admit_to_store(fresh, true);
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        if !self.store.contains(id) {
            return false;
        }
        self.log(&LogRecord::Unsubscribe(id));
        let removed = self.store.remove(id, &mut self.rng);
        debug_assert!(removed, "contains() implied presence");
        self.unsubscriptions += 1;
        // Removal never narrows the summary (conservatism); it only ages
        // it. Past the bounded-staleness knob, re-tighten from the store.
        if self.routing_enabled {
            self.summary.note_removal();
            self.removals_since_rebuild += 1;
            if self.loose_since.is_none() {
                self.loose_since = Some(Instant::now());
            }
            if self.removals_since_rebuild > self.retighten_after {
                self.rebuild_summary();
            }
            self.publish_summary();
        }
        removed
    }

    /// Appends one record to the write-ahead log, if storage is
    /// configured. A failed append degrades durability, not availability:
    /// the operation proceeds in memory and the failure is counted.
    fn log(&mut self, record: &LogRecord) {
        if let Some(storage) = &mut self.storage {
            if storage.append(record).is_err() {
                self.storage_errors += 1;
            }
        }
    }

    /// Freezes a store image and hands it to the background writer when
    /// the snapshot cadence fires. Must run at a group boundary (after
    /// [`commit_group`](Self::commit_group)): the frozen entries then
    /// correspond exactly to the committed log position in the mark —
    /// commands executed later in the same wake-up can no longer leak
    /// into the image.
    fn maybe_snapshot(&mut self) {
        if self.snapshot_in_flight {
            return;
        }
        let Some(storage) = &mut self.storage else {
            return;
        };
        if !storage.snapshot_due() {
            return;
        }
        let Some(tx) = &self.snapshot_tx else {
            return;
        };
        let job = SnapshotJob {
            entries: self
                .store
                .iter_entries()
                .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
                .collect(),
            rng_state: self.rng.state(),
            mark: storage.wal_position(),
        };
        storage.snapshot_dispatched();
        if tx.send(job).is_ok() {
            self.snapshot_in_flight = true;
        } else {
            // Writer thread died (it never panics by construction, but a
            // dead channel must not wedge the shard).
            self.storage_errors += 1;
        }
    }

    /// Collects finished snapshot outcomes without blocking.
    fn absorb_snapshot_outcomes(&mut self) {
        let Some(rx) = &self.snapshot_rx else {
            return;
        };
        let mut failed = 0;
        let mut written = 0;
        let mut pruned = 0;
        while let Ok(outcome) = rx.try_recv() {
            self.snapshot_in_flight = false;
            match outcome {
                Ok(segments) => {
                    written += 1;
                    pruned += segments;
                }
                Err(_) => failed += 1,
            }
        }
        self.snapshots_written += written;
        self.segments_pruned += pruned;
        self.storage_errors += failed;
    }

    /// Closes the job channel and joins the writer, so a completed
    /// shutdown implies any in-flight snapshot finished writing (or
    /// failed) — never a writer killed mid-rename.
    fn stop_snapshot_writer(&mut self) {
        drop(self.snapshot_tx.take());
        if let Some(handle) = self.snapshot_join.take() {
            let _ = handle.join();
        }
        self.absorb_snapshot_outcomes();
    }

    fn metrics(&self) -> ShardMetrics {
        let snap = self.store.stats_snapshot();
        let (wal_records, wal_truncated, group_commits, segments_rotated, pruned_on_open) =
            self.storage.as_ref().map_or((0, 0, 0, 0, 0), |s| {
                (
                    s.wal_records_appended(),
                    s.truncated_on_open(),
                    s.group_commits(),
                    s.segments_rotated(),
                    s.pruned_on_open(),
                )
            });
        ShardMetrics {
            shards_pruned: 0, // router-side; overlaid by the service
            summary: SummaryStats {
                epoch: self.cell.epoch(),
                rebuilds: self.summary_rebuilds,
                staleness: self.removals_since_rebuild,
                intervals: self.summary.intervals(),
                age_secs: self
                    .loose_since
                    .map(|t| t.elapsed().as_secs_f64())
                    .unwrap_or(0.0),
            },
            subscriptions_ingested: self.subscriptions_ingested,
            subscriptions_suppressed: self.subscriptions_suppressed,
            subscriptions_rejected: self.subscriptions_rejected,
            subscriptions_recovered: self.subscriptions_recovered,
            unsubscriptions: self.unsubscriptions,
            batches_admitted: self.batches_admitted,
            publications_processed: self.publications_processed,
            notifications: self.notifications,
            wal_records_appended: wal_records,
            snapshots_written: self.snapshots_written,
            storage_errors: self.storage_errors,
            wal_truncated_bytes: wal_truncated,
            wal_group_commits: group_commits,
            wal_segments_rotated: segments_rotated,
            wal_segments_pruned: self.segments_pruned + pruned_on_open,
            active_subscriptions: snap.active as u64,
            covered_subscriptions: snap.covered as u64,
            phase1_probes: snap.match_stats.active_checked,
            phase2_probes: snap.match_stats.covered_checked,
            phase2_probes_skipped: snap.match_stats.covered_skipped,
            phase2_wholesale_skips: snap.match_stats.phase2_skipped,
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}
