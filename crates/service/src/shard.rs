//! Shard worker threads.
//!
//! Each shard owns a [`CoveringStore`] (and through it a
//! `SubsumptionChecker`) plus a deterministic RNG, and processes commands
//! from a single MPSC queue. Ownership-per-thread means the store needs no
//! locking at all: admission, matching, and metric scrapes are serialized
//! per shard, and shards run fully in parallel with each other.
//!
//! Command ordering is the correctness backbone: `std::sync::mpsc` delivers
//! messages in a total order per channel, so once the router has enqueued an
//! admission batch, any later `MatchBatch` on the same shard observes it.
//!
//! ## Durability
//!
//! When the service is configured with a `data_dir`, each worker also owns
//! a [`ShardStorage`]: admissions and unsubscriptions are appended to the
//! shard's write-ahead log *before* they touch the store, and every
//! `snapshot_every` records the worker snapshots the store and truncates
//! the log (see [`crate::storage`]). On boot, [`ShardWorker::replay`]
//! pushes recovered log records through the **same** admission/removal
//! code as live traffic, so a rebuilt shard is indistinguishable from one
//! that never restarted. Storage failures after boot never take the shard
//! down — the operation proceeds in memory and the failure is counted in
//! [`ShardMetrics::storage_errors`].

use crate::metrics::ShardMetrics;
use crate::routing::{ShardSummary, SummaryCell};
use crate::storage::{LogRecord, ShardStorage};
use crate::telemetry::LogHistogram;
use psc_matcher::CoveringStore;
use psc_model::wire::SummaryStats;
use psc_model::{InlineVec, Publication, Schema, Subscription, SubscriptionId};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Batch indices selected for one shard. Publish batches are almost
/// always small (a network publish is a batch of one), so the indices
/// live inline in the command — no allocation on the fan-out path.
pub(crate) type SelectedIndices = InlineVec<u32, 16>;

/// Commands a shard worker processes, in arrival order.
pub(crate) enum ShardCommand {
    /// Admit a batch of subscriptions (fire-and-forget).
    Admit(Vec<(SubscriptionId, Subscription)>),
    /// Remove a subscription; replies whether it was stored here.
    Unsubscribe(SubscriptionId, Sender<bool>),
    /// Match the publications at the given indices of the shared batch
    /// against the local store; replies one id-vector per *selected*
    /// index, in index order, echoing the selected indices back so every
    /// visited shard can share one reply channel (replies arrive in
    /// completion order and carry their own merge positions). The router
    /// omits indices its routing summaries prove cannot match here.
    MatchBatch(
        Arc<[Publication]>,
        SelectedIndices,
        Sender<(SelectedIndices, Vec<Vec<SubscriptionId>>)>,
    ),
    /// Report current metrics plus the shard's match-stage latency
    /// histogram (owned here, so the reply is the scrape-on-demand read).
    Scrape(Sender<(ShardMetrics, LogHistogram)>),
    /// Dump `(id, subscription, is_active)` for every stored subscription.
    Snapshot(Sender<HashMap<SubscriptionId, (Subscription, bool)>>),
    /// Drain and exit.
    Shutdown,
}

/// State owned by one shard worker thread.
pub(crate) struct ShardWorker {
    schema: Schema,
    store: CoveringStore,
    rng: StdRng,
    storage: Option<ShardStorage>,
    /// Routing summary of the live store, mirrored into `cell` after
    /// every mutation so the router's pruning view is never behind the
    /// admissions it has confirmed applied.
    summary: ShardSummary,
    cell: Arc<SummaryCell>,
    /// When routing is disabled, summary maintenance is skipped entirely
    /// (the cell stays unpublished) so the fan-out-all configuration pays
    /// zero routing overhead — important for honest A/B baselines.
    routing_enabled: bool,
    /// Admission batches applied (the freshness handshake counter
    /// published with the summary; see [`crate::routing::SummaryCell`]).
    batches_applied: u64,
    /// Unsubscriptions since the summary was last rebuilt from the store.
    removals_since_rebuild: u64,
    /// Bounded-staleness knob: rebuild once `removals_since_rebuild`
    /// exceeds this.
    retighten_after: u64,
    summary_rebuilds: u64,
    /// Wall time of each publication match against the local store.
    /// Worker-owned like every other counter here: recording is a plain
    /// array increment, and scrapes read it through the command queue.
    match_latency: LogHistogram,
    started: Instant,
    subscriptions_ingested: u64,
    subscriptions_suppressed: u64,
    subscriptions_rejected: u64,
    subscriptions_recovered: u64,
    unsubscriptions: u64,
    batches_admitted: u64,
    publications_processed: u64,
    notifications: u64,
    storage_errors: u64,
}

impl ShardWorker {
    pub(crate) fn new(
        schema: Schema,
        store: CoveringStore,
        rng: StdRng,
        storage: Option<ShardStorage>,
        cell: Arc<SummaryCell>,
        routing_enabled: bool,
        retighten_after: u64,
    ) -> Self {
        let summary = ShardSummary::empty(schema.len());
        ShardWorker {
            schema,
            store,
            rng,
            storage,
            summary,
            cell,
            routing_enabled,
            batches_applied: 0,
            removals_since_rebuild: 0,
            retighten_after,
            summary_rebuilds: 0,
            match_latency: LogHistogram::new(),
            started: Instant::now(),
            subscriptions_ingested: 0,
            subscriptions_suppressed: 0,
            subscriptions_rejected: 0,
            subscriptions_recovered: 0,
            unsubscriptions: 0,
            batches_admitted: 0,
            publications_processed: 0,
            notifications: 0,
            storage_errors: 0,
        }
    }

    /// Replays recovered write-ahead-log records through the live
    /// admission/removal paths (minus the log appends), then records how
    /// many subscriptions the shard rebooted with.
    ///
    /// Called once, before the worker starts serving commands. The
    /// records are exactly the log suffix the snapshot does *not* cover
    /// — `ShardStorage::open` skips a snapshot-covered prefix via the
    /// snapshot's `WalMark` (a crash between snapshot rename and log
    /// truncation), so replay starts from the snapshot's store and RNG
    /// state and re-applies only genuinely newer operations.
    pub(crate) fn replay(&mut self, records: Vec<LogRecord>) {
        for record in records {
            match record {
                LogRecord::Admit(batch) => {
                    let fresh = self.dedup_against_store(batch, false);
                    self.admit_to_store(fresh, false);
                }
                LogRecord::Unsubscribe(id) => {
                    let _ = self.store.remove(id, &mut self.rng);
                }
            }
        }
        self.subscriptions_recovered = self.store.len() as u64;
        // Summaries are not persisted: rebuild from the recovered store
        // and publish, so the router starts pruning with a tight view the
        // moment the shard begins serving. For an in-memory boot this
        // publishes the empty summary — an empty shard prunes everything.
        self.rebuild_summary();
        self.publish_summary();
    }

    /// Rebuilds the routing summary tightly from the store and resets the
    /// staleness clock. No-op with routing disabled.
    fn rebuild_summary(&mut self) {
        if !self.routing_enabled {
            return;
        }
        self.summary = ShardSummary::from_bounds(&self.schema, self.store.iter_bounds());
        self.removals_since_rebuild = 0;
        self.summary_rebuilds += 1;
    }

    /// Mirrors the current summary (and the applied-batch handshake
    /// counter) into the shared cell for lock-free router reads. No-op
    /// with routing disabled (the cell then stays forever unpublished,
    /// which routing-side code treats as "visit").
    fn publish_summary(&self) {
        if !self.routing_enabled {
            return;
        }
        self.cell.publish(&self.summary, self.batches_applied);
    }

    /// The worker loop: runs until `Shutdown` or the channel closes.
    pub(crate) fn run(mut self, commands: Receiver<ShardCommand>) {
        while let Ok(command) = commands.recv() {
            match command {
                ShardCommand::Admit(batch) => {
                    self.admit(batch);
                    // Count the batch and publish even when dedup dropped
                    // everything: the router's handshake counts *sent*
                    // Admit commands, so the applied counter must track
                    // commands, not surviving subscriptions.
                    self.batches_applied += 1;
                    self.publish_summary();
                    self.maybe_snapshot();
                }
                ShardCommand::Unsubscribe(id, reply) => {
                    let removed = self.unsubscribe(id);
                    let _ = reply.send(removed);
                    self.maybe_snapshot();
                }
                ShardCommand::MatchBatch(publications, selected, reply) => {
                    let matches = selected
                        .iter()
                        .map(|&i| {
                            let started = Instant::now();
                            let ids = self.store.match_publication(&publications[i as usize]);
                            self.match_latency.record_duration(started.elapsed());
                            self.publications_processed += 1;
                            self.notifications += ids.len() as u64;
                            ids
                        })
                        .collect();
                    let _ = reply.send((selected, matches));
                }
                ShardCommand::Scrape(reply) => {
                    let _ = reply.send((self.metrics(), self.match_latency.clone()));
                }
                ShardCommand::Snapshot(reply) => {
                    let _ = reply.send(self.store.snapshot());
                }
                ShardCommand::Shutdown => break,
            }
        }
    }

    /// Drops batch entries whose id is already stored (or repeated within
    /// the batch): `CoveringStore::insert` treats duplicate ids as a
    /// programming error (panic), but on a network-facing admission path
    /// they are client errors to be counted, not crashes. Replay reuses
    /// the same filter with counting disabled.
    fn dedup_against_store(
        &mut self,
        batch: Vec<(SubscriptionId, Subscription)>,
        count_rejects: bool,
    ) -> Vec<(SubscriptionId, Subscription)> {
        let mut fresh: Vec<(SubscriptionId, Subscription)> = Vec::with_capacity(batch.len());
        for (id, sub) in batch {
            if self.store.contains(id) || fresh.iter().any(|(other, _)| *other == id) {
                if count_rejects {
                    self.subscriptions_rejected += 1;
                }
            } else {
                fresh.push((id, sub));
            }
        }
        fresh
    }

    fn admit_to_store(&mut self, fresh: Vec<(SubscriptionId, Subscription)>, count: bool) {
        if fresh.is_empty() {
            return;
        }
        if count {
            self.batches_admitted += 1;
        }
        for (_, outcome) in self.store.admit_batch(fresh, &mut self.rng) {
            if count {
                self.subscriptions_ingested += 1;
                if !outcome.is_active() {
                    self.subscriptions_suppressed += 1;
                }
            }
        }
    }

    fn admit(&mut self, batch: Vec<(SubscriptionId, Subscription)>) {
        let fresh = self.dedup_against_store(batch, true);
        if fresh.is_empty() {
            return;
        }
        // Write-ahead: the log sees the batch before the store does, so a
        // crash after the append replays it and a crash before it means
        // the batch was simply never admitted. The record wraps the batch
        // by move (no per-subscription clone on the hot path) and hands
        // it back for admission.
        let record = LogRecord::Admit(fresh);
        self.log(&record);
        let LogRecord::Admit(fresh) = record else {
            unreachable!("record built as Admit above")
        };
        // Widen the routing summary *before* the cell is republished (the
        // caller publishes after this returns): covered or active, every
        // admitted subscription can match publications and must be
        // reflected in the shard's conservative bounds.
        if self.routing_enabled {
            for (_, sub) in &fresh {
                self.summary.widen(sub);
            }
        }
        self.admit_to_store(fresh, true);
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        if !self.store.contains(id) {
            return false;
        }
        self.log(&LogRecord::Unsubscribe(id));
        let removed = self.store.remove(id, &mut self.rng);
        debug_assert!(removed, "contains() implied presence");
        self.unsubscriptions += 1;
        // Removal never narrows the summary (conservatism); it only ages
        // it. Past the bounded-staleness knob, re-tighten from the store.
        if self.routing_enabled {
            self.summary.note_removal();
            self.removals_since_rebuild += 1;
            if self.removals_since_rebuild > self.retighten_after {
                self.rebuild_summary();
            }
            self.publish_summary();
        }
        removed
    }

    /// Appends one record to the write-ahead log, if storage is
    /// configured. A failed append degrades durability, not availability:
    /// the operation proceeds in memory and the failure is counted.
    fn log(&mut self, record: &LogRecord) {
        if let Some(storage) = &mut self.storage {
            if storage.append(record).is_err() {
                self.storage_errors += 1;
            }
        }
    }

    fn maybe_snapshot(&mut self) {
        let Some(storage) = &mut self.storage else {
            return;
        };
        if !storage.snapshot_due() {
            return;
        }
        let bytes = crate::storage::snapshot::encode(
            &self.store,
            &self.schema,
            self.rng.state(),
            storage.wal_mark(),
        );
        if storage.write_snapshot(&bytes).is_err() {
            self.storage_errors += 1;
        }
    }

    fn metrics(&self) -> ShardMetrics {
        let snap = self.store.stats_snapshot();
        let (snapshots_written, wal_records, wal_truncated) =
            self.storage.as_ref().map_or((0, 0, 0), |s| {
                (
                    s.snapshots_written(),
                    s.wal_records_appended(),
                    s.truncated_on_open(),
                )
            });
        ShardMetrics {
            shards_pruned: 0, // router-side; overlaid by the service
            summary: SummaryStats {
                epoch: self.cell.epoch(),
                rebuilds: self.summary_rebuilds,
                staleness: self.removals_since_rebuild,
            },
            subscriptions_ingested: self.subscriptions_ingested,
            subscriptions_suppressed: self.subscriptions_suppressed,
            subscriptions_rejected: self.subscriptions_rejected,
            subscriptions_recovered: self.subscriptions_recovered,
            unsubscriptions: self.unsubscriptions,
            batches_admitted: self.batches_admitted,
            publications_processed: self.publications_processed,
            notifications: self.notifications,
            wal_records_appended: wal_records,
            snapshots_written,
            storage_errors: self.storage_errors,
            wal_truncated_bytes: wal_truncated,
            active_subscriptions: snap.active as u64,
            covered_subscriptions: snap.covered as u64,
            phase1_probes: snap.match_stats.active_checked,
            phase2_probes: snap.match_stats.covered_checked,
            phase2_probes_skipped: snap.match_stats.covered_skipped,
            phase2_wholesale_skips: snap.match_stats.phase2_skipped,
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}
