//! Shard worker threads.
//!
//! Each shard owns a [`CoveringStore`] (and through it a
//! `SubsumptionChecker`) plus a deterministic RNG, and processes commands
//! from a single MPSC queue. Ownership-per-thread means the store needs no
//! locking at all: admission, matching, and metric scrapes are serialized
//! per shard, and shards run fully in parallel with each other.
//!
//! Command ordering is the correctness backbone: `std::sync::mpsc` delivers
//! messages in a total order per channel, so once the router has enqueued an
//! admission batch, any later `MatchBatch` on the same shard observes it.

use crate::metrics::ShardMetrics;
use psc_matcher::CoveringStore;
use psc_model::{Publication, Subscription, SubscriptionId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Commands a shard worker processes, in arrival order.
pub(crate) enum ShardCommand {
    /// Admit a batch of subscriptions (fire-and-forget).
    Admit(Vec<(SubscriptionId, Subscription)>),
    /// Remove a subscription; replies whether it was stored here.
    Unsubscribe(SubscriptionId, Sender<bool>),
    /// Match every publication in the batch against the local store;
    /// replies one id-vector per publication.
    MatchBatch(Arc<Vec<Publication>>, Sender<Vec<Vec<SubscriptionId>>>),
    /// Report current metrics.
    Scrape(Sender<ShardMetrics>),
    /// Dump `(id, subscription, is_active)` for every stored subscription.
    Snapshot(Sender<HashMap<SubscriptionId, (Subscription, bool)>>),
    /// Drain and exit.
    Shutdown,
}

/// State owned by one shard worker thread.
pub(crate) struct ShardWorker {
    store: CoveringStore,
    rng: StdRng,
    started: Instant,
    subscriptions_ingested: u64,
    subscriptions_suppressed: u64,
    subscriptions_rejected: u64,
    unsubscriptions: u64,
    batches_admitted: u64,
    publications_processed: u64,
    notifications: u64,
}

impl ShardWorker {
    pub(crate) fn new(store: CoveringStore, seed: u64) -> Self {
        ShardWorker {
            store,
            rng: StdRng::seed_from_u64(seed),
            started: Instant::now(),
            subscriptions_ingested: 0,
            subscriptions_suppressed: 0,
            subscriptions_rejected: 0,
            unsubscriptions: 0,
            batches_admitted: 0,
            publications_processed: 0,
            notifications: 0,
        }
    }

    /// The worker loop: runs until `Shutdown` or the channel closes.
    pub(crate) fn run(mut self, commands: Receiver<ShardCommand>) {
        while let Ok(command) = commands.recv() {
            match command {
                ShardCommand::Admit(batch) => self.admit(batch),
                ShardCommand::Unsubscribe(id, reply) => {
                    let removed = self.store.remove(id, &mut self.rng);
                    if removed {
                        self.unsubscriptions += 1;
                    }
                    let _ = reply.send(removed);
                }
                ShardCommand::MatchBatch(publications, reply) => {
                    let matches = publications
                        .iter()
                        .map(|p| {
                            let ids = self.store.match_publication(p);
                            self.publications_processed += 1;
                            self.notifications += ids.len() as u64;
                            ids
                        })
                        .collect();
                    let _ = reply.send(matches);
                }
                ShardCommand::Scrape(reply) => {
                    let _ = reply.send(self.metrics());
                }
                ShardCommand::Snapshot(reply) => {
                    let _ = reply.send(self.store.snapshot());
                }
                ShardCommand::Shutdown => break,
            }
        }
    }

    fn admit(&mut self, batch: Vec<(SubscriptionId, Subscription)>) {
        // Drop duplicates up front: `CoveringStore::insert` treats duplicate
        // ids as a programming error (panic), but on a network-facing
        // admission path they are client errors to be counted, not crashes.
        let mut fresh = Vec::with_capacity(batch.len());
        for (id, sub) in batch {
            if self.store.contains(id) || fresh.iter().any(|(other, _)| *other == id) {
                self.subscriptions_rejected += 1;
            } else {
                fresh.push((id, sub));
            }
        }
        if fresh.is_empty() {
            return;
        }
        self.batches_admitted += 1;
        for (_, outcome) in self.store.admit_batch(fresh, &mut self.rng) {
            self.subscriptions_ingested += 1;
            if !outcome.is_active() {
                self.subscriptions_suppressed += 1;
            }
        }
    }

    fn metrics(&self) -> ShardMetrics {
        let snap = self.store.stats_snapshot();
        ShardMetrics {
            subscriptions_ingested: self.subscriptions_ingested,
            subscriptions_suppressed: self.subscriptions_suppressed,
            subscriptions_rejected: self.subscriptions_rejected,
            unsubscriptions: self.unsubscriptions,
            batches_admitted: self.batches_admitted,
            publications_processed: self.publications_processed,
            notifications: self.notifications,
            active_subscriptions: snap.active as u64,
            covered_subscriptions: snap.covered as u64,
            phase1_probes: snap.match_stats.active_checked,
            phase2_probes: snap.match_stats.covered_checked,
            phase2_probes_skipped: snap.match_stats.covered_skipped,
            phase2_wholesale_skips: snap.match_stats.phase2_skipped,
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}
