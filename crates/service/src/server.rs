//! The TCP server: accept loop + per-connection request handlers.
//!
//! Plain `std::net` blocking I/O with a thread per connection. The accept
//! loop runs on its own thread; `ServiceServer::stop` (or drop) wakes it
//! with a loopback connection and joins it. Connection handlers hold an
//! `Arc<PubSubService>` and exit when their client disconnects.

use crate::service::{PubSubService, ServiceConfig};
use crate::wire::{Request, Response};
use psc_model::wire::SchemaDto;
use psc_model::{Schema, SubscriptionId};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP front-end over a [`PubSubService`].
///
/// # Example
/// ```
/// use psc_model::Schema;
/// use psc_service::{ServiceClient, ServiceConfig, ServiceServer};
///
/// let schema = Schema::uniform(2, 0, 99);
/// let server = ServiceServer::bind("127.0.0.1:0", schema, ServiceConfig::with_shards(2))?;
/// let mut client = ServiceClient::connect(server.local_addr())?;
/// let (schema, shards) = client.hello()?;
/// assert_eq!(shards, 2);
/// assert_eq!(schema.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ServiceServer {
    service: Arc<PubSubService>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
}

impl ServiceServer {
    /// Starts a service and serves it on `addr` (use port 0 for an
    /// OS-assigned port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        schema: Schema,
        config: ServiceConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(PubSubService::start(schema, config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_service = Arc::clone(&service);
        let accept_stop = Arc::clone(&stop);
        let accept_join = std::thread::Builder::new()
            .name("psc-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(stream) => stream,
                        Err(_) => {
                            // Persistent accept errors (EMFILE when file
                            // descriptors run out) return immediately —
                            // back off instead of spinning a core.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            continue;
                        }
                    };
                    let service = Arc::clone(&accept_service);
                    let _ = std::thread::Builder::new()
                        .name("psc-conn".into())
                        .spawn(move || handle_connection(stream, service));
                }
            })
            .expect("spawn accept thread");
        Ok(ServiceServer {
            service,
            addr,
            stop,
            accept_join: Some(accept_join),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process service — handy for tests and embedded use.
    pub fn service(&self) -> &Arc<PubSubService> {
        &self.service
    }

    /// Stops accepting connections and joins the accept thread. Existing
    /// connections drain on their own; the shared service shuts down when
    /// the last handle drops.
    pub fn stop(mut self) {
        self.shutdown_accept_loop();
    }

    fn shutdown_accept_loop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on all platforms,
        // so aim at the matching loopback instead; if the wake-up
        // connection fails, skip the join — leaking the accept thread
        // beats deadlocking the caller in drop.
        let ip = self.addr.ip();
        let target = if ip.is_unspecified() {
            let loopback: std::net::IpAddr = if ip.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let woke = TcpStream::connect_timeout(&target, std::time::Duration::from_secs(2)).is_ok();
        if woke {
            if let Some(join) = self.accept_join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.shutdown_accept_loop();
    }
}

/// Longest request line the server accepts. Protects connection threads
/// from a client streaming an unterminated line into unbounded memory.
const MAX_LINE_BYTES: usize = 1 << 20;

/// One bounded `read_line`: at most `MAX_LINE_BYTES` are buffered; an
/// oversized line is discarded through its newline and reported.
enum LineRead {
    Line(String),
    TooLong,
    Eof,
}

fn read_line_bounded(reader: &mut impl BufRead) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return if buf.is_empty() || overflowed {
                Ok(LineRead::Eof)
            } else {
                Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()))
            };
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if !overflowed {
            if buf.len() + take > MAX_LINE_BYTES {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        let done = newline.is_some();
        reader.consume(take);
        if done {
            if overflowed {
                return Ok(LineRead::TooLong);
            }
            while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

fn handle_connection(stream: TcpStream, service: Arc<PubSubService>) {
    // Response lines are small; without NODELAY, Nagle + delayed ACK can
    // stall pipelined responses on real networks (the client sets it too).
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let response = match read_line_bounded(&mut reader) {
            Ok(LineRead::Eof) | Err(_) => break,
            Ok(LineRead::TooLong) => {
                Response::Error(format!("request line exceeds {MAX_LINE_BYTES} bytes"))
            }
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                respond(&line, &service)
            }
        };
        let mut encoded = response.encode();
        encoded.push('\n');
        if writer.write_all(encoded.as_bytes()).is_err() {
            break;
        }
    }
}

fn respond(line: &str, service: &PubSubService) -> Response {
    let request = match Request::decode(line) {
        Ok(request) => request,
        Err(e) => return Response::Error(e.to_string()),
    };
    match request {
        Request::Hello => Response::Hello {
            schema: SchemaDto::from_schema(service.schema()),
            shards: service.shard_count() as u64,
        },
        Request::Subscribe(dto) => match dto.into_subscription(service.schema()) {
            Ok((id, sub)) => match service.subscribe(id, sub) {
                Ok(()) => Response::Queued,
                Err(e) => Response::Error(e.to_string()),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Unsubscribe(id) => Response::Removed(service.unsubscribe(SubscriptionId(id))),
        Request::Publish(dto) => match dto.into_publication(service.schema()) {
            Ok(p) => match service.publish(&p) {
                Ok(ids) => Response::Matched(ids.into_iter().map(|id| id.0).collect()),
                Err(e) => Response::Error(e.to_string()),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Flush => {
            service.flush();
            Response::Flushed
        }
        Request::Stats => Response::Stats(service.metrics()),
    }
}
