//! The TCP server: a readiness-based reactor front-end.
//!
//! One reactor thread (see [`crate::reactor`]) owns the listening socket,
//! a wakeup pipe, and every client connection through a single epoll set;
//! request handling calls into the shared [`PubSubService`], whose shard
//! worker threads are unchanged. Thread count is O(shards), independent
//! of how many clients are connected — tens of thousands of idle
//! subscriber connections cost buffers, not threads.

use crate::metrics::ReactorMetrics;
use crate::reactor::{self, ReactorConfig, ReactorCounters, ReactorHandle};
use crate::service::{PubSubService, ServiceConfig};
use crate::wire::{Request, Response};
use psc_model::wire::SchemaDto;
use psc_model::{Schema, SubscriptionId};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;

/// A running TCP front-end over a [`PubSubService`].
///
/// # Example
/// ```
/// use psc_model::Schema;
/// use psc_service::{ServiceClient, ServiceConfig, ServiceServer};
///
/// let schema = Schema::uniform(2, 0, 99);
/// let server = ServiceServer::bind("127.0.0.1:0", schema, ServiceConfig::with_shards(2))?;
/// let mut client = ServiceClient::connect(server.local_addr())?;
/// let (schema, shards) = client.hello()?;
/// assert_eq!(shards, 2);
/// assert_eq!(schema.len(), 2);
/// assert!(server.reactor_metrics().connections_current >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ServiceServer {
    service: Arc<PubSubService>,
    addr: SocketAddr,
    reactor: ReactorHandle,
}

impl ServiceServer {
    /// Starts a service and serves it on `addr` (use port 0 for an
    /// OS-assigned port).
    ///
    /// The front-end policy knobs — `max_connections`,
    /// `max_write_buffer_bytes`, `idle_timeout` — come from `config`, as
    /// do the durability knobs: with `data_dir` set, every shard store is
    /// rebuilt from its write-ahead log and snapshot before the listener
    /// starts serving, so a restarted server answers with the
    /// subscriptions it held when it stopped. Storage failures surface
    /// as IO errors here, before any client can connect — environment
    /// problems keep their kind (`PermissionDenied`, disk full, …);
    /// corrupt data reports `InvalidData`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        schema: Schema,
        config: ServiceConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let reactor_config = ReactorConfig {
            max_connections: config.max_connections,
            max_write_buffer_bytes: config.max_write_buffer_bytes,
            idle_timeout: config.idle_timeout,
            max_frame_bytes: config.max_frame_bytes,
            read_buffer_bytes: config.read_buffer_bytes,
            write_buffer_bytes: config.write_buffer_bytes,
        };
        let service = PubSubService::open(schema, config).map_err(|e| {
            let kind = match &e {
                crate::ServiceError::Storage { kind, .. } => *kind,
                _ => std::io::ErrorKind::InvalidData,
            };
            std::io::Error::new(kind, e.to_string())
        })?;
        let service = Arc::new(service);
        let reactor = reactor::spawn(listener, Arc::clone(&service), reactor_config)?;
        Ok(ServiceServer {
            service,
            addr,
            reactor,
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process service — handy for tests and embedded use.
    pub fn service(&self) -> &Arc<PubSubService> {
        &self.service
    }

    /// A snapshot of the front-end's connection/policy counters.
    pub fn reactor_metrics(&self) -> ReactorMetrics {
        self.reactor.counters().snapshot()
    }

    /// Shuts the front-end down: signals the reactor through its wakeup
    /// pipe, which stops accepting, best-effort flushes each connection's
    /// pending responses, closes every connection, and exits; then joins
    /// the reactor thread. The shared service shuts down when the last
    /// handle drops.
    pub fn stop(mut self) {
        self.reactor.stop();
    }
}

// Dropping the server performs the same shutdown: `ReactorHandle::stop`
// is idempotent and runs in the handle's own `Drop`.

/// Executes one decoded request — the protocol-independent tail of the
/// reactor's serving layer. In practice publishes never reach here: the
/// reactor intercepts them at decode time, batches consecutive publishes
/// per readiness event, and calls [`PubSubService::publish_batch`] once
/// per run — but the `Publish` arm stays as the single-request reference
/// path for embedded callers.
pub(crate) fn dispatch(
    request: Request,
    service: &PubSubService,
    reactor: Option<&ReactorCounters>,
) -> Response {
    match request {
        Request::Hello => Response::Hello {
            schema: SchemaDto::from_schema(service.schema()),
            shards: service.shard_count() as u64,
        },
        Request::Subscribe(dto) => match dto.into_subscription(service.schema()) {
            Ok((id, sub)) => match service.subscribe(id, sub) {
                Ok(()) => Response::Queued,
                Err(e) => Response::Error(e.to_string()),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Unsubscribe(id) => Response::Removed(service.unsubscribe(SubscriptionId(id))),
        Request::Publish(dto) => match dto.into_publication(service.schema()) {
            Ok(p) => match service.publish(&p) {
                Ok(ids) => Response::Matched(ids.into_iter().map(|id| id.0).collect()),
                Err(e) => Response::Error(e.to_string()),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Flush => {
            // On a durable service, `flush` on the wire is a durability
            // barrier: when `Flushed` goes out, every operation this
            // server applied before it is committed (fsynced under
            // `FsyncPolicy::Always`). In-memory services keep the cheap
            // buffer-drain semantics.
            if service.is_durable() {
                service.barrier();
            } else {
                service.flush();
            }
            Response::Flushed
        }
        Request::Stats => {
            let (metrics, mut latency) = service.observe();
            if let Some(counters) = reactor {
                counters.overlay_latency(&mut latency);
            }
            Response::Stats {
                metrics,
                reactor: reactor.map(ReactorCounters::snapshot),
                latency: Some(Box::new(latency.to_stats())),
                federation: None,
            }
        }
    }
}
