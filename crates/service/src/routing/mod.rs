//! Content-aware publish routing: per-shard attribute-space summaries.
//!
//! The paper's core trick — cheap conservative tests that prove a
//! subscription set *cannot* match — applies one level above the shard
//! too: a publication need not visit a shard whose entire subscription
//! population provably cannot match it. Each shard worker maintains a
//! [`ShardSummary`] of its live population (active **and** covered — both
//! match publications) and publishes it to the router through a
//! [`SummaryCell`], a versioned epoch snapshot the fan-out path reads
//! lock-free. The router consults the summaries in `publish`/
//! `publish_batch` and skips shards that provably cannot match.
//!
//! ## The summary
//!
//! A [`ShardSummary`] holds, per schema attribute:
//!
//! - an **interval bound** `[lo, hi]` — the union of every stored
//!   subscription's range on that attribute. A publication value outside
//!   it cannot satisfy any subscription on the shard.
//! - optionally an exact **value set** — when every stored range on the
//!   attribute is narrow (≤ [`VALUE_SET_CAP`] points) and their union
//!   stays within [`VALUE_SET_CAP`] distinct values, the summary keeps
//!   the union itself. This is what makes routing effective for
//!   topic-like attributes: a shard subscribed to 20 "topics" out of a
//!   domain of thousands rejects most publications outright, where the
//!   interval `[min topic, max topic]` would reject almost none.
//!
//! plus a small Bloom-style presence filter over *constrained* attribute
//! indices (attributes some subscription restricts below its full
//! domain). An attribute absent from the filter is provably
//! unconstrained on this shard, so its per-attribute check is skipped.
//! The filter is insertion-exact (no false negatives); for schemas wider
//! than 64 attributes, indices fold onto 64 bits, which can only cause
//! false *presence* — a wasted check, never a wrong prune.
//!
//! ## The conservatism invariant
//!
//! For every publication `p` and every subscription `s` stored on the
//! shard when the summary was built (or any time since an entry was
//! *removed* — see staleness below):
//!
//! > `s.matches(p)` ⟹ `summary.may_match(p)`
//!
//! False positives (visiting a shard that matches nothing) cost a wasted
//! fan-out; false negatives (pruning a shard that would have matched)
//! would lose notifications and are **impossible by construction**:
//! admissions widen the summary before the shard confirms them applied,
//! removals never narrow it, and every widening unions — it never
//! replaces. The property test in this module enforces the invariant
//! against the naive matcher; `tests/service_routing.rs` enforces the
//! end-to-end corollary (routed results ≡ all-shard fan-out).
//!
//! ## Staleness and re-tightening
//!
//! Unsubscription leaves the summary untouched (still conservative, just
//! looser than necessary). After `ServiceConfig::summary_retighten_after`
//! removals the shard rebuilds the summary from its store
//! ([`ShardSummary::from_bounds`] over
//! [`CoveringStore::iter_bounds`](psc_matcher::CoveringStore::iter_bounds)),
//! restoring tightness. Recovery performs the same rebuild, so summaries
//! survive restarts without being persisted.
//!
//! # Example
//!
//! ```
//! use psc_model::{Publication, Schema, Subscription};
//! use psc_service::routing::ShardSummary;
//!
//! let schema = Schema::uniform(2, 0, 999);
//! let mut summary = ShardSummary::empty(schema.len());
//!
//! // The shard holds two topic-style subscriptions: x0 = 42 or x0 = 700.
//! let s1 = Subscription::builder(&schema).point("x0", 42).build()?;
//! let s2 = Subscription::builder(&schema).point("x0", 700).build()?;
//! summary.widen(&s1);
//! summary.widen(&s2);
//!
//! let on_topic = Publication::builder(&schema).set("x0", 700).set("x1", 3).build()?;
//! let off_topic = Publication::builder(&schema).set("x0", 500).set("x1", 3).build()?;
//! assert!(summary.may_match(&on_topic), "conservatism: a match is never pruned");
//! assert!(!summary.may_match(&off_topic), "no subscription's x0 admits 500");
//! # Ok::<(), psc_model::ModelError>(())
//! ```

pub mod cell;

pub use cell::{SummaryCell, SummaryView};

use psc_model::{Publication, Range, Schema, Subscription};

/// Capacity of a per-attribute exact value set. An attribute whose union
/// of subscription ranges needs more distinct values than this degrades
/// to its interval bound.
pub const VALUE_SET_CAP: usize = 32;

/// Bloom bit for attribute index `j`: exact for the first 64 attributes,
/// folded (false-presence possible, false-absence impossible) beyond.
#[inline]
fn attr_bit(j: usize) -> u64 {
    1u64 << (j & 63)
}

/// Conservative bounds for one attribute of a shard's population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSummary {
    /// Smallest lower bound of any stored range on this attribute.
    pub lo: i64,
    /// Largest upper bound of any stored range on this attribute.
    pub hi: i64,
    /// Exact union of stored ranges when small (sorted, ≤
    /// [`VALUE_SET_CAP`] values); `None` once any range is too wide or
    /// the union overflows the cap.
    pub values: Option<Vec<i64>>,
}

impl AttrSummary {
    /// The empty bound: admits nothing (sentinel interval, empty set).
    fn empty() -> Self {
        AttrSummary {
            lo: i64::MAX,
            hi: i64::MIN,
            values: Some(Vec::new()),
        }
    }

    /// Unions `r` into the bound.
    fn widen(&mut self, r: &Range) {
        self.lo = self.lo.min(r.lo());
        self.hi = self.hi.max(r.hi());
        if let Some(values) = &mut self.values {
            if r.count() > VALUE_SET_CAP as u128 {
                self.values = None;
                return;
            }
            for v in r.lo()..=r.hi() {
                if let Err(at) = values.binary_search(&v) {
                    values.insert(at, v);
                }
            }
            if values.len() > VALUE_SET_CAP {
                self.values = None;
            }
        }
    }

    /// Unions another attribute bound into this one.
    fn merge(&mut self, other: &AttrSummary) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        match (&mut self.values, &other.values) {
            (Some(values), Some(theirs)) => {
                for &v in theirs {
                    if let Err(at) = values.binary_search(&v) {
                        values.insert(at, v);
                    }
                }
                if values.len() > VALUE_SET_CAP {
                    self.values = None;
                }
            }
            _ => self.values = None,
        }
    }

    /// Whether a publication value `v` could satisfy some stored range.
    fn admits(&self, v: i64) -> bool {
        match &self.values {
            Some(values) => values.binary_search(&v).is_ok(),
            None => self.lo <= v && v <= self.hi,
        }
    }
}

/// A conservative summary of one shard's live subscription population.
///
/// See the [module docs](crate::routing) for the structure and the
/// conservatism invariant. Build incrementally with
/// [`widen`](ShardSummary::widen) (admission path) or in one pass with
/// [`from_bounds`](ShardSummary::from_bounds) (recovery / re-tightening),
/// query with [`may_match`](ShardSummary::may_match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    subscriptions: u64,
    constrained: u64,
    attrs: Vec<AttrSummary>,
}

impl ShardSummary {
    /// The summary of an empty shard over `arity` attributes: prunes
    /// every publication.
    pub fn empty(arity: usize) -> Self {
        ShardSummary {
            subscriptions: 0,
            constrained: 0,
            attrs: (0..arity).map(|_| AttrSummary::empty()).collect(),
        }
    }

    /// Number of subscriptions folded into the summary.
    pub fn subscriptions(&self) -> u64 {
        self.subscriptions
    }

    /// Number of attributes the summary spans.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The per-attribute bound at index `j`.
    ///
    /// # Panics
    /// Panics if `j >= self.arity()`.
    pub fn attr(&self, j: usize) -> &AttrSummary {
        &self.attrs[j]
    }

    /// Whether the presence filter says attribute `j` may be constrained
    /// by some stored subscription. `false` is a proof of absence.
    pub fn possibly_constrained(&self, j: usize) -> bool {
        self.constrained & attr_bit(j) != 0
    }

    /// Folds one subscription into the summary (admission path).
    ///
    /// # Panics
    /// Panics if the subscription's arity differs from the summary's.
    pub fn widen(&mut self, sub: &Subscription) {
        self.widen_bounds(sub.schema(), sub.ranges());
    }

    /// Folds one subscription's raw bounds into the summary. `schema`
    /// supplies the attribute domains that decide "constrained".
    ///
    /// # Panics
    /// Panics if `ranges.len()` differs from the summary's arity.
    pub fn widen_bounds(&mut self, schema: &Schema, ranges: &[Range]) {
        assert_eq!(ranges.len(), self.attrs.len(), "summary arity mismatch");
        for ((j, attr), r) in schema.iter().zip(ranges) {
            if r != attr.domain() {
                self.constrained |= attr_bit(j.0);
            }
            self.attrs[j.0].widen(r);
        }
        self.subscriptions += 1;
    }

    /// Builds the tight summary of a whole population in one pass — the
    /// recovery and re-tightening path. Feed it
    /// [`CoveringStore::iter_bounds`](psc_matcher::CoveringStore::iter_bounds).
    pub fn from_bounds<'a>(schema: &Schema, bounds: impl IntoIterator<Item = &'a [Range]>) -> Self {
        let mut summary = ShardSummary::empty(schema.len());
        for ranges in bounds {
            summary.widen_bounds(schema, ranges);
        }
        summary
    }

    /// Unions another summary into this one (used by the router to merge
    /// in-flight admission batches that the shard has not yet confirmed).
    pub fn merge(&mut self, other: &ShardSummary) {
        assert_eq!(
            other.attrs.len(),
            self.attrs.len(),
            "summary arity mismatch"
        );
        self.subscriptions += other.subscriptions;
        self.constrained |= other.constrained;
        for (attr, theirs) in self.attrs.iter_mut().zip(&other.attrs) {
            attr.merge(theirs);
        }
    }

    /// Records that one subscription was removed. Bounds are *not*
    /// narrowed (that would risk a false negative); the population count
    /// drops so a provably-empty shard prunes everything.
    pub fn note_removal(&mut self) {
        self.subscriptions = self.subscriptions.saturating_sub(1);
    }

    /// The conservative test: `false` proves no subscription folded into
    /// the summary can match `p`; `true` means the shard must be visited.
    ///
    /// # Panics
    /// Panics (debug) if the publication's arity differs.
    pub fn may_match(&self, p: &Publication) -> bool {
        if self.subscriptions == 0 {
            return false;
        }
        debug_assert_eq!(p.values().len(), self.attrs.len());
        for (j, (&v, attr)) in p.values().iter().zip(&self.attrs).enumerate() {
            // Absent from the presence filter ⇒ every stored range on j is
            // the full attribute domain, and publication values are
            // domain-validated at construction — the check cannot fail.
            if !self.possibly_constrained(j) {
                continue;
            }
            if !attr.admits(v) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use psc_matcher::NaiveMatcher;
    use psc_model::SubscriptionId;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 999)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::from_ranges(
            schema,
            vec![
                Range::new(x0.0, x0.1).unwrap(),
                Range::new(x1.0, x1.1).unwrap(),
            ],
        )
        .unwrap()
    }

    fn publication(schema: &Schema, x0: i64, x1: i64) -> Publication {
        Publication::from_values(schema, vec![x0, x1]).unwrap()
    }

    #[test]
    fn empty_summary_prunes_everything() {
        let schema = schema();
        let summary = ShardSummary::empty(schema.len());
        assert!(!summary.may_match(&publication(&schema, 0, 0)));
        assert_eq!(summary.subscriptions(), 0);
    }

    #[test]
    fn interval_bound_prunes_outside_union() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (100, 200), (0, 999)));
        summary.widen(&sub(&schema, (150, 400), (0, 999)));
        assert!(summary.may_match(&publication(&schema, 300, 7)));
        assert!(!summary.may_match(&publication(&schema, 99, 7)));
        assert!(!summary.may_match(&publication(&schema, 401, 7)));
    }

    #[test]
    fn value_set_prunes_gaps_the_interval_cannot() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (42, 42), (0, 999)));
        summary.widen(&sub(&schema, (700, 700), (0, 999)));
        // Inside [42, 700] but in neither point set: value set prunes it.
        assert!(!summary.may_match(&publication(&schema, 500, 7)));
        assert!(summary.may_match(&publication(&schema, 42, 7)));
        assert!(summary.may_match(&publication(&schema, 700, 7)));
    }

    #[test]
    fn wide_range_degrades_value_set_to_interval() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (42, 42), (0, 999)));
        summary.widen(&sub(&schema, (100, 400), (0, 999))); // > VALUE_SET_CAP points
        assert!(summary.attr(0).values.is_none());
        // Interval [42, 400] now rules.
        assert!(summary.may_match(&publication(&schema, 200, 7)));
        assert!(!summary.may_match(&publication(&schema, 401, 7)));
    }

    #[test]
    fn unconstrained_attribute_never_prunes() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        // x1 left at its full domain: not constrained, never checked.
        summary.widen(&sub(&schema, (10, 20), (0, 999)));
        assert!(!summary.possibly_constrained(1));
        assert!(summary.may_match(&publication(&schema, 15, 0)));
        assert!(summary.may_match(&publication(&schema, 15, 999)));
    }

    #[test]
    fn removal_keeps_bounds_but_empties_eventually() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (10, 20), (0, 999)));
        summary.note_removal();
        assert_eq!(summary.subscriptions(), 0);
        assert!(!summary.may_match(&publication(&schema, 15, 7)));
    }

    #[test]
    fn merge_unions_bounds_and_counts() {
        let schema = schema();
        let mut a = ShardSummary::empty(schema.len());
        a.widen(&sub(&schema, (10, 20), (0, 999)));
        let mut b = ShardSummary::empty(schema.len());
        b.widen(&sub(&schema, (500, 510), (0, 999)));
        a.merge(&b);
        assert_eq!(a.subscriptions(), 2);
        assert!(a.may_match(&publication(&schema, 15, 7)));
        assert!(a.may_match(&publication(&schema, 505, 7)));
        // The merged value set (22 points ≤ cap) still prunes the gap.
        assert!(!a.may_match(&publication(&schema, 300, 7)));

        // Merging in a set-degraded summary degrades the union too:
        // interval semantics take over, conservatively.
        let mut c = ShardSummary::empty(schema.len());
        c.widen(&sub(&schema, (600, 700), (0, 999))); // > VALUE_SET_CAP points
        a.merge(&c);
        assert!(a.attr(0).values.is_none());
        assert!(a.may_match(&publication(&schema, 300, 7)));
        assert!(!a.may_match(&publication(&schema, 701, 7)));
    }

    #[test]
    fn from_bounds_equals_incremental_widening() {
        let schema = schema();
        let subs = [
            sub(&schema, (10, 20), (5, 5)),
            sub(&schema, (500, 600), (0, 999)),
            sub(&schema, (42, 42), (7, 9)),
        ];
        let mut incremental = ShardSummary::empty(schema.len());
        for s in &subs {
            incremental.widen(s);
        }
        let bulk = ShardSummary::from_bounds(&schema, subs.iter().map(|s| s.ranges()));
        assert_eq!(bulk, incremental);
    }

    proptest! {
        /// The conservatism invariant, against the naive matcher: a
        /// publication some stored subscription matches is never pruned.
        #[test]
        fn prop_summary_never_prunes_a_match(
            specs in proptest::collection::vec(
                (0i64..=999, 0i64..=80, 0i64..=999, 0i64..=400, proptest::bool::ANY),
                1..24,
            ),
            probes in proptest::collection::vec((0i64..=999, 0i64..=999), 32),
        ) {
            let schema = schema();
            let mut naive = NaiveMatcher::new();
            let mut summary = ShardSummary::empty(schema.len());
            for (i, (lo0, w0, lo1, w1, point)) in specs.iter().enumerate() {
                let s = if *point {
                    // Topic-style: a point on x0, full domain on x1.
                    sub(&schema, (*lo0, *lo0), (0, 999))
                } else {
                    sub(
                        &schema,
                        (*lo0, (*lo0 + *w0).min(999)),
                        (*lo1, (*lo1 + *w1).min(999)),
                    )
                };
                naive.insert(SubscriptionId(i as u64), s.clone());
                summary.widen(&s);
            }
            for &(x0, x1) in &probes {
                let p = publication(&schema, x0, x1);
                if !naive.matches(&p).is_empty() {
                    prop_assert!(
                        summary.may_match(&p),
                        "summary pruned a matching publication ({x0}, {x1})"
                    );
                }
            }
        }
    }
}
