//! Content-aware publish routing: per-shard attribute-space summaries.
//!
//! The paper's core trick — cheap conservative tests that prove a
//! subscription set *cannot* match — applies one level above the shard
//! too: a publication need not visit a shard whose entire subscription
//! population provably cannot match it. Each shard worker maintains a
//! [`ShardSummary`] of its live population (active **and** covered — both
//! match publications) and publishes it to the router through a
//! [`SummaryCell`], a versioned epoch snapshot the fan-out path reads
//! lock-free. The router consults the summaries in `publish`/
//! `publish_batch` and skips shards that provably cannot match.
//!
//! ## The summary
//!
//! A [`ShardSummary`] holds, per schema attribute, a **multi-interval
//! bound**: up to `max_intervals` sorted, disjoint, non-adjacent closed
//! intervals whose union covers every stored subscription's range on that
//! attribute. A publication value inside none of the intervals cannot
//! satisfy any subscription on the shard. The two historical extremes
//! fall out as special cases:
//!
//! - topic-style point subscriptions keep an exact value set (each point
//!   is its own `[v, v]` interval) until the population needs more than
//!   `max_intervals` distinct values — what makes routing effective for
//!   "topic" attributes, where a shard subscribed to 20 topics out of
//!   thousands rejects most publications outright;
//! - a single wide range is simply one interval, the old `[lo, hi]`
//!   bound.
//!
//! When a widening would exceed the cap, the summary **merges the two
//! intervals separated by the smallest gap** (the merge that admits the
//! fewest new phantom values), preserving the conservative union at
//! minimal precision loss. The layout stays flat and cache-friendly —
//! one sorted `Vec<(lo, hi)>` per attribute, binary-searched on the
//! publish path.
//!
//! The summary also carries a small Bloom-style presence filter over
//! *constrained* attribute indices (attributes some subscription
//! restricts below its full domain). An attribute absent from the filter
//! is provably unconstrained on this shard, so its per-attribute check is
//! skipped. The filter is insertion-exact (no false negatives); for
//! schemas wider than 64 attributes, indices fold onto 64 bits, which can
//! only cause false *presence* — a wasted check, never a wrong prune.
//!
//! ## The conservatism invariant
//!
//! For every publication `p` and every subscription `s` stored on the
//! shard when the summary was built (or any time since an entry was
//! *removed* — see staleness below):
//!
//! > `s.matches(p)` ⟹ `summary.may_match(p)`
//!
//! False positives (visiting a shard that matches nothing) cost a wasted
//! fan-out; false negatives (pruning a shard that would have matched)
//! would lose notifications and are **impossible by construction**:
//! admissions widen the summary before the shard confirms them applied,
//! removals never narrow it, every widening unions — it never replaces —
//! and the over-cap merge only ever *adds* phantom coverage. The property
//! test in this module enforces the invariant against the naive matcher;
//! `tests/service_routing.rs` enforces the end-to-end corollary (routed
//! results ≡ all-shard fan-out).
//!
//! ## Staleness and re-tightening
//!
//! Unsubscription leaves the summary untouched (still conservative, just
//! looser than necessary). After `ServiceConfig::summary_retighten_after`
//! removals the shard rebuilds the summary from its store
//! ([`ShardSummary::from_bounds`] over
//! [`CoveringStore::iter_bounds`](psc_matcher::CoveringStore::iter_bounds)),
//! restoring tightness. Recovery performs the same rebuild, so summaries
//! survive restarts without being persisted.
//!
//! ## Placement
//!
//! The multi-interval shape exists to give *subscription placement*
//! something to cluster against: [`PlacementDirectory`] scores each shard
//! by how much admitting a subscription would widen its summary
//! ([`ShardSummary::widening_cost`]) and routes to the minimum-widening
//! shard. See the [`placement`] module docs.
//!
//! # Example
//!
//! ```
//! use psc_model::{Publication, Schema, Subscription};
//! use psc_service::routing::ShardSummary;
//!
//! let schema = Schema::uniform(2, 0, 999);
//! let mut summary = ShardSummary::empty(schema.len());
//!
//! // The shard holds two topic-style subscriptions: x0 = 42 or x0 = 700.
//! let s1 = Subscription::builder(&schema).point("x0", 42).build()?;
//! let s2 = Subscription::builder(&schema).point("x0", 700).build()?;
//! summary.widen(&s1);
//! summary.widen(&s2);
//!
//! let on_topic = Publication::builder(&schema).set("x0", 700).set("x1", 3).build()?;
//! let off_topic = Publication::builder(&schema).set("x0", 500).set("x1", 3).build()?;
//! assert!(summary.may_match(&on_topic), "conservatism: a match is never pruned");
//! assert!(!summary.may_match(&off_topic), "no subscription's x0 admits 500");
//! # Ok::<(), psc_model::ModelError>(())
//! ```

pub mod cell;
pub mod placement;

pub use cell::{SummaryCell, SummaryView};
pub use placement::PlacementDirectory;

use psc_model::{Publication, Range, Schema, Subscription};

/// Default cap on disjoint intervals kept per attribute. Chosen to match
/// the old exact-value-set capacity so topic-style populations of up to
/// 32 distinct points stay exactly represented.
pub const DEFAULT_SUMMARY_INTERVALS: usize = 32;

/// Bloom bit for attribute index `j`: exact for the first 64 attributes,
/// folded (false-presence possible, false-absence impossible) beyond.
#[inline]
fn attr_bit(j: usize) -> u64 {
    1u64 << (j & 63)
}

/// Conservative multi-interval bound for one attribute of a shard's
/// population: sorted, disjoint, non-adjacent closed intervals whose
/// union covers every stored range on the attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSummary {
    /// The intervals, as `(lo, hi)` pairs with `lo <= hi`, sorted by
    /// `lo`, pairwise disjoint and non-adjacent (`next.lo > hi + 1`).
    /// Empty means the bound admits nothing.
    pub intervals: Vec<(i64, i64)>,
}

impl AttrSummary {
    /// The empty bound: admits nothing.
    fn empty() -> Self {
        AttrSummary {
            intervals: Vec::new(),
        }
    }

    /// Unions the closed interval `[lo, hi]` into the bound, keeping at
    /// most `cap` intervals by merging nearest-gap neighbors.
    fn widen_interval(&mut self, lo: i64, hi: i64, cap: usize) {
        debug_assert!(lo <= hi);
        // The window of existing intervals that overlap or are adjacent
        // to [lo, hi]: everything from the first with `end + 1 >= lo` to
        // the last with `start <= hi + 1`.
        let start = self
            .intervals
            .partition_point(|&(_, h)| h.saturating_add(1) < lo);
        let end = self
            .intervals
            .partition_point(|&(l, _)| l <= hi.saturating_add(1));
        if start == end {
            self.intervals.insert(start, (lo, hi));
        } else {
            let merged_lo = lo.min(self.intervals[start].0);
            let merged_hi = hi.max(self.intervals[end - 1].1);
            self.intervals[start] = (merged_lo, merged_hi);
            self.intervals.drain(start + 1..end);
        }
        while self.intervals.len() > cap.max(1) {
            self.merge_nearest_gap();
        }
    }

    /// Merges the adjacent pair of intervals with the smallest gap
    /// between them — the merge that admits the fewest phantom values.
    fn merge_nearest_gap(&mut self) {
        debug_assert!(self.intervals.len() >= 2);
        let mut best = 0;
        let mut best_gap = i128::MAX;
        for i in 0..self.intervals.len() - 1 {
            let gap = self.intervals[i + 1].0 as i128 - self.intervals[i].1 as i128;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        self.intervals[best].1 = self.intervals[best + 1].1;
        self.intervals.remove(best + 1);
    }

    /// Unions `r` into the bound.
    fn widen(&mut self, r: &Range, cap: usize) {
        self.widen_interval(r.lo(), r.hi(), cap);
    }

    /// Unions another attribute bound into this one.
    fn merge(&mut self, other: &AttrSummary, cap: usize) {
        for &(lo, hi) in &other.intervals {
            self.widen_interval(lo, hi, cap);
        }
    }

    /// Whether a publication value `v` could satisfy some stored range.
    fn admits(&self, v: i64) -> bool {
        use std::cmp::Ordering;
        self.intervals
            .binary_search_by(|&(lo, hi)| {
                if hi < v {
                    Ordering::Less
                } else if lo > v {
                    Ordering::Greater
                } else {
                    Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Total number of values the bound admits.
    pub fn covered_points(&self) -> u128 {
        self.intervals
            .iter()
            .map(|&(lo, hi)| (hi as i128 - lo as i128 + 1) as u128)
            .sum()
    }

    /// Number of values in `r` the bound does **not** already admit —
    /// how much admitting `r` would widen this attribute (before any
    /// over-cap merge, which can only add more).
    pub fn newly_covered(&self, r: &Range) -> u128 {
        let mut covered = 0u128;
        for &(lo, hi) in &self.intervals {
            if hi < r.lo() {
                continue;
            }
            if lo > r.hi() {
                break;
            }
            let l = lo.max(r.lo());
            let h = hi.min(r.hi());
            covered += (h as i128 - l as i128 + 1) as u128;
        }
        r.count() - covered
    }
}

/// A conservative summary of one shard's live subscription population.
///
/// See the [module docs](crate::routing) for the structure and the
/// conservatism invariant. Build incrementally with
/// [`widen`](ShardSummary::widen) (admission path) or in one pass with
/// [`from_bounds`](ShardSummary::from_bounds) (recovery / re-tightening),
/// query with [`may_match`](ShardSummary::may_match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    subscriptions: u64,
    constrained: u64,
    max_intervals: usize,
    attrs: Vec<AttrSummary>,
}

impl ShardSummary {
    /// The summary of an empty shard over `arity` attributes, with the
    /// default per-attribute interval cap: prunes every publication.
    pub fn empty(arity: usize) -> Self {
        ShardSummary::with_intervals(arity, DEFAULT_SUMMARY_INTERVALS)
    }

    /// The summary of an empty shard over `arity` attributes keeping at
    /// most `max_intervals` (≥ 1 enforced) intervals per attribute.
    pub fn with_intervals(arity: usize, max_intervals: usize) -> Self {
        ShardSummary {
            subscriptions: 0,
            constrained: 0,
            max_intervals: max_intervals.max(1),
            attrs: (0..arity).map(|_| AttrSummary::empty()).collect(),
        }
    }

    /// Number of subscriptions folded into the summary.
    pub fn subscriptions(&self) -> u64 {
        self.subscriptions
    }

    /// Number of attributes the summary spans.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The per-attribute interval cap.
    pub fn max_intervals(&self) -> usize {
        self.max_intervals
    }

    /// Total interval count across all attributes — the summary's
    /// resolution, exported through `stats` as `summary_intervals`.
    pub fn intervals(&self) -> u64 {
        self.attrs.iter().map(|a| a.intervals.len() as u64).sum()
    }

    /// The per-attribute bound at index `j`.
    ///
    /// # Panics
    /// Panics if `j >= self.arity()`.
    pub fn attr(&self, j: usize) -> &AttrSummary {
        &self.attrs[j]
    }

    /// Whether the presence filter says attribute `j` may be constrained
    /// by some stored subscription. `false` is a proof of absence.
    pub fn possibly_constrained(&self, j: usize) -> bool {
        self.constrained & attr_bit(j) != 0
    }

    /// Folds one subscription into the summary (admission path).
    ///
    /// # Panics
    /// Panics if the subscription's arity differs from the summary's.
    pub fn widen(&mut self, sub: &Subscription) {
        self.widen_bounds(sub.schema(), sub.ranges());
    }

    /// Folds one subscription's raw bounds into the summary. `schema`
    /// supplies the attribute domains that decide "constrained".
    ///
    /// # Panics
    /// Panics if `ranges.len()` differs from the summary's arity.
    pub fn widen_bounds(&mut self, schema: &Schema, ranges: &[Range]) {
        assert_eq!(ranges.len(), self.attrs.len(), "summary arity mismatch");
        for ((j, attr), r) in schema.iter().zip(ranges) {
            if r != attr.domain() {
                self.constrained |= attr_bit(j.0);
            }
            self.attrs[j.0].widen(r, self.max_intervals);
        }
        self.subscriptions += 1;
    }

    /// How much folding `ranges` into the summary would widen it: the sum
    /// over attributes of the newly-admitted fraction of the attribute's
    /// domain. `0.0` means the subscription fits inside the summary's
    /// existing coverage; larger means admitting it loosens the shard's
    /// pruning power more. The placement scorer minimizes this.
    ///
    /// # Panics
    /// Panics if `ranges.len()` differs from the summary's arity.
    pub fn widening_cost(&self, schema: &Schema, ranges: &[Range]) -> f64 {
        assert_eq!(ranges.len(), self.attrs.len(), "summary arity mismatch");
        let mut cost = 0.0;
        for ((j, attr), r) in schema.iter().zip(ranges) {
            let domain = attr.domain().count() as f64;
            cost += self.attrs[j.0].newly_covered(r) as f64 / domain;
        }
        cost
    }

    /// Builds the tight summary of a whole population in one pass with
    /// the default interval cap — the recovery and re-tightening path.
    /// Feed it
    /// [`CoveringStore::iter_bounds`](psc_matcher::CoveringStore::iter_bounds).
    pub fn from_bounds<'a>(schema: &Schema, bounds: impl IntoIterator<Item = &'a [Range]>) -> Self {
        ShardSummary::from_bounds_capped(schema, bounds, DEFAULT_SUMMARY_INTERVALS)
    }

    /// [`from_bounds`](ShardSummary::from_bounds) with an explicit
    /// per-attribute interval cap.
    pub fn from_bounds_capped<'a>(
        schema: &Schema,
        bounds: impl IntoIterator<Item = &'a [Range]>,
        max_intervals: usize,
    ) -> Self {
        let mut summary = ShardSummary::with_intervals(schema.len(), max_intervals);
        for ranges in bounds {
            summary.widen_bounds(schema, ranges);
        }
        summary
    }

    /// Unions another summary into this one (used by the router to merge
    /// in-flight admission batches that the shard has not yet confirmed).
    /// This summary's own interval cap governs the merged result.
    pub fn merge(&mut self, other: &ShardSummary) {
        assert_eq!(
            other.attrs.len(),
            self.attrs.len(),
            "summary arity mismatch"
        );
        self.subscriptions += other.subscriptions;
        self.constrained |= other.constrained;
        for (attr, theirs) in self.attrs.iter_mut().zip(&other.attrs) {
            attr.merge(theirs, self.max_intervals);
        }
    }

    /// Records that one subscription was removed. Bounds are *not*
    /// narrowed (that would risk a false negative); the population count
    /// drops so a provably-empty shard prunes everything.
    pub fn note_removal(&mut self) {
        self.subscriptions = self.subscriptions.saturating_sub(1);
    }

    /// The conservative test: `false` proves no subscription folded into
    /// the summary can match `p`; `true` means the shard must be visited.
    ///
    /// # Panics
    /// Panics (debug) if the publication's arity differs.
    pub fn may_match(&self, p: &Publication) -> bool {
        if self.subscriptions == 0 {
            return false;
        }
        debug_assert_eq!(p.values().len(), self.attrs.len());
        for (j, (&v, attr)) in p.values().iter().zip(&self.attrs).enumerate() {
            // Absent from the presence filter ⇒ every stored range on j is
            // the full attribute domain, and publication values are
            // domain-validated at construction — the check cannot fail.
            if !self.possibly_constrained(j) {
                continue;
            }
            if !attr.admits(v) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use psc_matcher::NaiveMatcher;
    use psc_model::SubscriptionId;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 999)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::from_ranges(
            schema,
            vec![
                Range::new(x0.0, x0.1).unwrap(),
                Range::new(x1.0, x1.1).unwrap(),
            ],
        )
        .unwrap()
    }

    fn publication(schema: &Schema, x0: i64, x1: i64) -> Publication {
        Publication::from_values(schema, vec![x0, x1]).unwrap()
    }

    #[test]
    fn empty_summary_prunes_everything() {
        let schema = schema();
        let summary = ShardSummary::empty(schema.len());
        assert!(!summary.may_match(&publication(&schema, 0, 0)));
        assert_eq!(summary.subscriptions(), 0);
        assert_eq!(summary.intervals(), 0);
    }

    #[test]
    fn interval_bound_prunes_outside_union() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (100, 200), (0, 999)));
        summary.widen(&sub(&schema, (150, 400), (0, 999)));
        // Overlapping ranges coalesce into one interval.
        assert_eq!(summary.attr(0).intervals, vec![(100, 400)]);
        assert!(summary.may_match(&publication(&schema, 300, 7)));
        assert!(!summary.may_match(&publication(&schema, 99, 7)));
        assert!(!summary.may_match(&publication(&schema, 401, 7)));
    }

    #[test]
    fn point_intervals_prune_gaps_a_single_interval_cannot() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (42, 42), (0, 999)));
        summary.widen(&sub(&schema, (700, 700), (0, 999)));
        // Inside [42, 700] but in neither point interval: pruned.
        assert!(!summary.may_match(&publication(&schema, 500, 7)));
        assert!(summary.may_match(&publication(&schema, 42, 7)));
        assert!(summary.may_match(&publication(&schema, 700, 7)));
    }

    #[test]
    fn disjoint_ranges_keep_separate_intervals_and_prune_between() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (42, 42), (0, 999)));
        summary.widen(&sub(&schema, (100, 400), (0, 999)));
        // The old exact-value-set would have degraded to [42, 400]; the
        // multi-interval bound keeps both pieces and prunes the gap.
        assert_eq!(summary.attr(0).intervals, vec![(42, 42), (100, 400)]);
        assert!(summary.may_match(&publication(&schema, 200, 7)));
        assert!(!summary.may_match(&publication(&schema, 60, 7)));
        assert!(!summary.may_match(&publication(&schema, 401, 7)));
    }

    #[test]
    fn adjacent_intervals_coalesce() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (10, 20), (0, 999)));
        summary.widen(&sub(&schema, (21, 30), (0, 999)));
        assert_eq!(summary.attr(0).intervals, vec![(10, 30)]);
        // A widening that bridges two intervals collapses the window.
        summary.widen(&sub(&schema, (50, 60), (0, 999)));
        summary.widen(&sub(&schema, (25, 55), (0, 999)));
        assert_eq!(summary.attr(0).intervals, vec![(10, 60)]);
    }

    #[test]
    fn over_cap_widening_merges_the_nearest_gap() {
        let schema = schema();
        let mut summary = ShardSummary::with_intervals(schema.len(), 2);
        summary.widen(&sub(&schema, (10, 20), (0, 999)));
        summary.widen(&sub(&schema, (500, 510), (0, 999)));
        // A third interval exceeds the cap of 2; (500..510) and (530..540)
        // are separated by the smallest gap, so they merge.
        summary.widen(&sub(&schema, (530, 540), (0, 999)));
        assert_eq!(summary.attr(0).intervals, vec![(10, 20), (500, 540)]);
        // The merge is conservative: the gap values are now (falsely,
        // harmlessly) admitted, the far gap still prunes.
        assert!(summary.may_match(&publication(&schema, 520, 7)));
        assert!(!summary.may_match(&publication(&schema, 300, 7)));
    }

    #[test]
    fn unconstrained_attribute_never_prunes() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        // x1 left at its full domain: not constrained, never checked.
        summary.widen(&sub(&schema, (10, 20), (0, 999)));
        assert!(!summary.possibly_constrained(1));
        assert!(summary.may_match(&publication(&schema, 15, 0)));
        assert!(summary.may_match(&publication(&schema, 15, 999)));
    }

    #[test]
    fn removal_keeps_bounds_but_empties_eventually() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        summary.widen(&sub(&schema, (10, 20), (0, 999)));
        summary.note_removal();
        assert_eq!(summary.subscriptions(), 0);
        assert!(!summary.may_match(&publication(&schema, 15, 7)));
    }

    #[test]
    fn merge_unions_bounds_and_counts() {
        let schema = schema();
        let mut a = ShardSummary::empty(schema.len());
        a.widen(&sub(&schema, (10, 20), (0, 999)));
        let mut b = ShardSummary::empty(schema.len());
        b.widen(&sub(&schema, (500, 510), (0, 999)));
        a.merge(&b);
        assert_eq!(a.subscriptions(), 2);
        assert!(a.may_match(&publication(&schema, 15, 7)));
        assert!(a.may_match(&publication(&schema, 505, 7)));
        // Disjoint pieces survive the merge and still prune the gap.
        assert!(!a.may_match(&publication(&schema, 300, 7)));
    }

    #[test]
    fn widening_cost_is_zero_inside_and_positive_outside() {
        let schema = schema();
        let mut summary = ShardSummary::empty(schema.len());
        let wide = sub(&schema, (100, 299), (0, 999));
        summary.widen(&wide);
        // Fully inside the existing coverage: free.
        let inside = sub(&schema, (150, 200), (0, 999));
        assert_eq!(summary.widening_cost(&schema, inside.ranges()), 0.0);
        // Disjoint: pays its full footprint (100/1000 on x0).
        let outside = sub(&schema, (600, 699), (0, 999));
        let cost = summary.widening_cost(&schema, outside.ranges());
        assert!((cost - 0.1).abs() < 1e-9, "cost {cost}");
        // An empty summary pays for every attribute, full-domain ones too.
        let empty = ShardSummary::empty(schema.len());
        let cost = empty.widening_cost(&schema, inside.ranges());
        assert!((cost - (51.0 / 1000.0 + 1.0)).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn newly_covered_counts_only_uncovered_points() {
        let mut attr = AttrSummary::empty();
        attr.widen_interval(10, 20, 8);
        attr.widen_interval(40, 50, 8);
        assert_eq!(attr.covered_points(), 22);
        // [15, 45]: 31 points, 6 + 6 = 12 already covered.
        assert_eq!(attr.newly_covered(&Range::new(15, 45).unwrap()), 19);
        assert_eq!(attr.newly_covered(&Range::new(10, 20).unwrap()), 0);
        assert_eq!(attr.newly_covered(&Range::new(100, 199).unwrap()), 100);
    }

    #[test]
    fn from_bounds_equals_incremental_widening() {
        let schema = schema();
        let subs = [
            sub(&schema, (10, 20), (5, 5)),
            sub(&schema, (500, 600), (0, 999)),
            sub(&schema, (42, 42), (7, 9)),
        ];
        let mut incremental = ShardSummary::empty(schema.len());
        for s in &subs {
            incremental.widen(s);
        }
        let bulk = ShardSummary::from_bounds(&schema, subs.iter().map(|s| s.ranges()));
        assert_eq!(bulk, incremental);
    }

    proptest! {
        /// The conservatism invariant, against the naive matcher: a
        /// publication some stored subscription matches is never pruned —
        /// at any interval cap, including a cap of 1 (the old single
        /// interval bound) that forces constant nearest-gap merging.
        #[test]
        fn prop_summary_never_prunes_a_match(
            cap in 1usize..=8,
            specs in proptest::collection::vec(
                (0i64..=999, 0i64..=80, 0i64..=999, 0i64..=400, proptest::bool::ANY),
                1..24,
            ),
            probes in proptest::collection::vec((0i64..=999, 0i64..=999), 32),
        ) {
            let schema = schema();
            let mut naive = NaiveMatcher::new();
            let mut summary = ShardSummary::with_intervals(schema.len(), cap);
            for (i, (lo0, w0, lo1, w1, point)) in specs.iter().enumerate() {
                let s = if *point {
                    // Topic-style: a point on x0, full domain on x1.
                    sub(&schema, (*lo0, *lo0), (0, 999))
                } else {
                    sub(
                        &schema,
                        (*lo0, (*lo0 + *w0).min(999)),
                        (*lo1, (*lo1 + *w1).min(999)),
                    )
                };
                naive.insert(SubscriptionId(i as u64), s.clone());
                summary.widen(&s);
            }
            for &(x0, x1) in &probes {
                let p = publication(&schema, x0, x1);
                if !naive.matches(&p).is_empty() {
                    prop_assert!(
                        summary.may_match(&p),
                        "summary pruned a matching publication ({x0}, {x1})"
                    );
                }
            }
        }

        /// Interval-list structural invariants survive arbitrary widening
        /// under a small cap: sorted, disjoint, non-adjacent, capped.
        #[test]
        fn prop_intervals_stay_sorted_disjoint_capped(
            cap in 1usize..=6,
            ranges in proptest::collection::vec((0i64..=999, 0i64..=120), 1..64),
        ) {
            let mut attr = AttrSummary::empty();
            for (lo, w) in ranges {
                attr.widen_interval(lo, (lo + w).min(999), cap);
                prop_assert!(attr.intervals.len() <= cap);
                for pair in attr.intervals.windows(2) {
                    prop_assert!(pair[0].1.saturating_add(1) < pair[1].0,
                        "not disjoint/sorted: {:?}", attr.intervals);
                }
                for &(lo, hi) in &attr.intervals {
                    prop_assert!(lo <= hi);
                }
            }
        }
    }
}
