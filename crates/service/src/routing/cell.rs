//! The versioned epoch snapshot a shard publishes its summary through.
//!
//! One [`SummaryCell`] per shard is shared between the shard worker (the
//! only writer) and the router (any number of readers on the publish
//! path). The cell is a *seqlock* over a fixed layout of plain atomics:
//!
//! - the writer bumps the epoch to an **odd** value, stores every field,
//!   then bumps it to the next **even** value (release-ordered);
//! - a reader snapshots the epoch, copies the fields, and accepts the
//!   copy only if the epoch is even and unchanged — otherwise it retries.
//!
//! Readers take no lock and never block the writer; the writer never
//! waits for readers. Because every field is an individual atomic, a torn
//! read is merely *detected and retried*, never undefined behavior — the
//! whole scheme is safe code. A reader that exhausts its retry budget
//! (writer mid-publish for pathologically long) returns `None`, which the
//! router treats as "no information: visit the shard" — contention can
//! only cost a wasted visit, never a wrong prune.
//!
//! The payload is the flat multi-interval summary: per attribute, an
//! interval count plus `2 × max_intervals` bound slots (`lo, hi` pairs),
//! all plain `AtomicI64`s sized once at construction — no pointers to
//! chase and nothing allocated on the publish path.
//!
//! The cell also carries `applied_batches`, the number of admission
//! batches the shard has folded into the published summary. The router
//! compares it against the count of batches it has *sent* to decide which
//! in-flight batch summaries must still be merged on top (see
//! `PubSubService`): a publication enqueued behind an admission batch is
//! guaranteed (FIFO) to observe the batch in the store, so the routing
//! decision must account for it even though the cell may not yet.
//!
//! # Example
//! ```
//! use psc_model::{Publication, Schema, Subscription};
//! use psc_service::routing::{ShardSummary, SummaryCell, DEFAULT_SUMMARY_INTERVALS};
//!
//! let schema = Schema::uniform(1, 0, 99);
//! let cell = SummaryCell::new(schema.len(), DEFAULT_SUMMARY_INTERVALS);
//! assert!(cell.read().is_none(), "nothing published yet: caller must visit");
//!
//! let mut summary = ShardSummary::empty(schema.len());
//! summary.widen(&Subscription::builder(&schema).range("x0", 10, 20).build()?);
//! cell.publish(&summary, 1);
//!
//! let view = cell.read().expect("published");
//! assert_eq!(view.applied_batches, 1);
//! assert_eq!(view.summary, summary);
//! let p = Publication::builder(&schema).set("x0", 50).build()?;
//! assert!(!view.summary.may_match(&p));
//! # Ok::<(), psc_model::ModelError>(())
//! ```

use super::{AttrSummary, ShardSummary};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// `subscriptions` sentinel: nothing was ever published.
const NEVER_PUBLISHED: u64 = u64::MAX;

/// Retries before a reader gives up and reports "no information".
const READ_RETRIES: usize = 64;

struct AttrSlot {
    len: AtomicU64,
    /// `2 × max_intervals` slots: `bounds[2i]` = lo, `bounds[2i + 1]` =
    /// hi of interval `i`.
    bounds: Box<[AtomicI64]>,
}

impl AttrSlot {
    fn new(max_intervals: usize) -> Self {
        AttrSlot {
            len: AtomicU64::new(0),
            bounds: (0..2 * max_intervals).map(|_| AtomicI64::new(0)).collect(),
        }
    }
}

/// A decoded, consistent snapshot returned by [`SummaryCell::read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryView {
    /// The shard's summary as of the snapshot.
    pub summary: ShardSummary,
    /// Admission batches folded into `summary` (the freshness handshake).
    pub applied_batches: u64,
    /// The (even) epoch the snapshot was taken at; advances by 2 per
    /// [`publish`](SummaryCell::publish) call.
    pub epoch: u64,
}

/// Single-writer, many-reader seqlock cell publishing one shard's
/// [`ShardSummary`]. See the [module docs](self) for the protocol.
pub struct SummaryCell {
    epoch: AtomicU64,
    subscriptions: AtomicU64,
    constrained: AtomicU64,
    applied_batches: AtomicU64,
    max_intervals: usize,
    attrs: Vec<AttrSlot>,
}

impl SummaryCell {
    /// An unpublished cell for a shard over `arity` attributes with room
    /// for `max_intervals` (≥ 1 enforced) intervals per attribute. Until
    /// the first [`publish`](SummaryCell::publish),
    /// [`read`](SummaryCell::read) returns `None` and callers must assume
    /// the shard can match anything.
    pub fn new(arity: usize, max_intervals: usize) -> Self {
        let max_intervals = max_intervals.max(1);
        SummaryCell {
            epoch: AtomicU64::new(0),
            subscriptions: AtomicU64::new(NEVER_PUBLISHED),
            constrained: AtomicU64::new(0),
            applied_batches: AtomicU64::new(0),
            max_intervals,
            attrs: (0..arity).map(|_| AttrSlot::new(max_intervals)).collect(),
        }
    }

    /// The current epoch (even between publishes; odd only transiently
    /// while the single writer is mid-store).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes a new snapshot. **Single writer only** — the owning
    /// shard worker thread; concurrent writers would corrupt the seqlock
    /// discipline (readers stay safe, but could retry forever).
    ///
    /// # Panics
    /// Panics if the summary's arity differs from the cell's, or if any
    /// attribute carries more intervals than the cell has slots for.
    pub fn publish(&self, summary: &ShardSummary, applied_batches: u64) {
        assert_eq!(summary.attrs.len(), self.attrs.len(), "cell arity mismatch");
        let start = self.epoch.load(Ordering::Relaxed);
        debug_assert_eq!(start % 2, 0, "single writer: epoch even between publishes");
        // Odd epoch: readers that race with the stores below will retry.
        // The release fence orders the odd store *before* the data stores
        // — a plain release store would only order what precedes it, so
        // the relaxed stores below could become visible first and a
        // reader could accept a torn snapshot with a stable-looking
        // epoch.
        self.epoch.store(start.wrapping_add(1), Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        self.subscriptions
            .store(summary.subscriptions, Ordering::Relaxed);
        self.constrained
            .store(summary.constrained, Ordering::Relaxed);
        self.applied_batches
            .store(applied_batches, Ordering::Relaxed);
        for (slot, attr) in self.attrs.iter().zip(&summary.attrs) {
            assert!(
                attr.intervals.len() <= self.max_intervals,
                "summary interval cap exceeds the cell's"
            );
            for (i, &(lo, hi)) in attr.intervals.iter().enumerate() {
                slot.bounds[2 * i].store(lo, Ordering::Relaxed);
                slot.bounds[2 * i + 1].store(hi, Ordering::Relaxed);
            }
            slot.len
                .store(attr.intervals.len() as u64, Ordering::Relaxed);
        }
        // Even epoch again; the release store publishes every field above.
        self.epoch.store(start.wrapping_add(2), Ordering::Release);
    }

    /// Takes a consistent snapshot, or `None` when the cell was never
    /// published **or** the retry budget ran out mid-write — both mean
    /// "no usable information; treat the shard as possibly matching".
    pub fn read(&self) -> Option<SummaryView> {
        for _ in 0..READ_RETRIES {
            let before = self.epoch.load(Ordering::Acquire);
            if !before.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let subscriptions = self.subscriptions.load(Ordering::Relaxed);
            let constrained = self.constrained.load(Ordering::Relaxed);
            let applied_batches = self.applied_batches.load(Ordering::Relaxed);
            let attrs: Vec<AttrSummary> = self
                .attrs
                .iter()
                .map(|slot| {
                    let len = (slot.len.load(Ordering::Relaxed) as usize).min(self.max_intervals);
                    let intervals = (0..len)
                        .map(|i| {
                            (
                                slot.bounds[2 * i].load(Ordering::Relaxed),
                                slot.bounds[2 * i + 1].load(Ordering::Relaxed),
                            )
                        })
                        .collect();
                    AttrSummary { intervals }
                })
                .collect();
            // Acquire fence pairs with the writer's final release store: if
            // the epoch still matches, every field load above happened
            // within one stable window.
            std::sync::atomic::fence(Ordering::Acquire);
            let after = self.epoch.load(Ordering::Relaxed);
            if before != after {
                std::hint::spin_loop();
                continue;
            }
            if subscriptions == NEVER_PUBLISHED {
                return None;
            }
            return Some(SummaryView {
                summary: ShardSummary {
                    subscriptions,
                    constrained,
                    max_intervals: self.max_intervals,
                    attrs,
                },
                applied_batches,
                epoch: after,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::DEFAULT_SUMMARY_INTERVALS;
    use psc_model::{Range, Schema, Subscription};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 999)
    }

    type RangePair = ((i64, i64), (i64, i64));

    fn summary_of(schema: &Schema, ranges: &[RangePair]) -> ShardSummary {
        let mut s = ShardSummary::empty(schema.len());
        for ((lo0, hi0), (lo1, hi1)) in ranges {
            let sub = Subscription::from_ranges(
                schema,
                vec![
                    Range::new(*lo0, *hi0).unwrap(),
                    Range::new(*lo1, *hi1).unwrap(),
                ],
            )
            .unwrap();
            s.widen(&sub);
        }
        s
    }

    #[test]
    fn unpublished_cell_reads_none() {
        assert!(SummaryCell::new(3, DEFAULT_SUMMARY_INTERVALS)
            .read()
            .is_none());
    }

    #[test]
    fn publish_read_round_trips_exactly() {
        let schema = schema();
        let cell = SummaryCell::new(schema.len(), DEFAULT_SUMMARY_INTERVALS);
        let summary = summary_of(&schema, &[((10, 20), (0, 999)), ((42, 42), (5, 7))]);
        cell.publish(&summary, 3);
        let view = cell.read().expect("published");
        assert_eq!(view.summary, summary);
        assert_eq!(view.applied_batches, 3);
        assert_eq!(view.epoch, 2);

        // A second publish advances the epoch and replaces the snapshot —
        // including one with *fewer* intervals (stale slots are dropped
        // by the shrunken length, not zeroed).
        let tighter = summary_of(&schema, &[((42, 42), (5, 7))]);
        cell.publish(&tighter, 4);
        let view = cell.read().expect("published");
        assert_eq!(view.summary, tighter);
        assert_eq!(view.epoch, 4);
    }

    #[test]
    fn empty_summary_round_trips_as_published() {
        let schema = schema();
        let cell = SummaryCell::new(schema.len(), DEFAULT_SUMMARY_INTERVALS);
        cell.publish(&ShardSummary::empty(schema.len()), 0);
        let view = cell.read().expect("an empty summary is information");
        assert_eq!(view.summary.subscriptions(), 0);
    }

    #[test]
    fn non_default_interval_cap_round_trips() {
        let schema = schema();
        let cell = SummaryCell::new(schema.len(), 4);
        let mut summary = ShardSummary::with_intervals(schema.len(), 4);
        for lo in [10, 100, 300, 500, 800] {
            let sub = Subscription::from_ranges(
                &schema,
                vec![Range::new(lo, lo + 5).unwrap(), Range::new(0, 999).unwrap()],
            )
            .unwrap();
            summary.widen(&sub);
        }
        assert_eq!(summary.attr(0).intervals.len(), 4, "cap enforced");
        cell.publish(&summary, 1);
        assert_eq!(cell.read().expect("published").summary, summary);
    }

    /// Hammer the seqlock: one writer republishing *internally coherent*
    /// summaries, readers asserting every snapshot is one of them — a
    /// torn mix would produce a summary matching neither.
    #[test]
    fn concurrent_reads_never_observe_torn_snapshots() {
        let schema = schema();
        let cell = Arc::new(SummaryCell::new(schema.len(), DEFAULT_SUMMARY_INTERVALS));
        let a = summary_of(&schema, &[((10, 20), (100, 200))]);
        let b = summary_of(&schema, &[((500, 600), (700, 800)), ((900, 910), (0, 3))]);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer = {
            let cell = Arc::clone(&cell);
            let (a, b) = (a.clone(), b.clone());
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = if i.is_multiple_of(2) { &a } else { &b };
                    cell.publish(s, i);
                    i += 1;
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let (a, b) = (a.clone(), b.clone());
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while seen < 10_000 && !stop.load(Ordering::Relaxed) {
                        if let Some(view) = cell.read() {
                            assert!(
                                view.summary == a || view.summary == b,
                                "torn snapshot: {:?}",
                                view.summary
                            );
                            assert_eq!(view.epoch % 2, 0);
                            seen += 1;
                        }
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
