//! Greedy content-aware subscription placement.
//!
//! Hash placement spreads subscriptions uniformly, which makes every
//! shard's attribute-space summary statistically identical — on a
//! uniform workload the router's summaries prune ~0% of shard visits
//! because every shard looks like it could match everything. Placement
//! fixes the *population*, not the test: route each new subscription to
//! the shard whose summary it would widen **least**, so shards
//! specialize into attribute-space clusters and most publications
//! provably miss most shards.
//!
//! ## The score
//!
//! For a candidate subscription with bounds `ranges` and a shard `s`
//! holding `n_s` placed subscriptions:
//!
//! ```text
//! score(s) = widening_cost(s, ranges)
//!          + LOAD_PENALTY_WEIGHT · max(0, n_s − mean population) / (mean population + 1)
//! ```
//!
//! [`ShardSummary::widening_cost`] is the sum over attributes of the
//! fraction of the attribute's domain the subscription would newly
//! force the shard's summary to admit — `0.0` when the subscription
//! fits entirely inside what the shard already covers. The load term
//! penalizes only shards **above** the mean population so a shard that
//! happens to cover a popular region cannot absorb the whole workload:
//! perfect clustering with one giant shard would route every
//! *publication* to it too, destroying the parallelism sharding exists
//! for. Underloaded shards get no bonus — an empty shard still pays the
//! subscription's full footprint, so genuine clusters are not torn
//! apart just to fill idle shards. The shard with the minimum score
//! wins (lowest index on ties, which keeps placement deterministic).
//!
//! ## The directory
//!
//! Content-aware placement severs the id→shard relationship that hash
//! placement gave for free, so the router keeps a [`PlacementDirectory`]:
//! a map from subscription id to shard, plus a per-shard *placement
//! view* — a [`ShardSummary`] of what has been placed there — that the
//! scorer reads. The directory is maintained even when placement is
//! disabled (entries then record the hash shard) so unsubscribe and
//! duplicate detection behave identically in both modes.
//!
//! The placement views are the router's own bookkeeping, distinct from
//! the authoritative summaries the shard workers publish through their
//! seqlock cells: views widen on placement and never narrow (removals
//! only decrement the population count), so they drift looser over
//! time. That only degrades *placement quality*, never correctness —
//! pruning decisions read the shard-published summaries, which
//! re-tighten on rebuild.
//!
//! Nothing here is persisted: on recovery the directory is rebuilt from
//! the per-shard WAL replay (the live set each shard recovers dictates
//! its entries and view), so the directory is exactly as durable as the
//! stores it indexes.

use super::ShardSummary;
use psc_model::{Range, Schema, SubscriptionId};
use std::collections::HashMap;

/// Weight of the overload term relative to the widening cost (which
/// contributes up to 1.0 per constrained attribute). At 0.2, a shard a
/// full mean-population above the mean pays about as much as a
/// fifth of an attribute domain of widening — enough to cap how far any
/// shard outgrows the rest without drowning the clustering signal: a
/// cluster whose per-attribute footprint sums past ~0.2 of the domain
/// eventually overflows onto a second shard instead of growing
/// unboundedly.
pub const LOAD_PENALTY_WEIGHT: f64 = 0.2;

/// The router's id→shard map plus per-shard placement views. See the
/// [module docs](self).
pub struct PlacementDirectory {
    map: HashMap<SubscriptionId, u32>,
    views: Vec<ShardSummary>,
    moves: u64,
}

impl PlacementDirectory {
    /// An empty directory for `shards` shards over `arity` attributes,
    /// with `max_intervals` intervals per attribute in each view.
    pub fn new(shards: usize, arity: usize, max_intervals: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        PlacementDirectory {
            map: HashMap::new(),
            views: (0..shards)
                .map(|_| ShardSummary::with_intervals(arity, max_intervals))
                .collect(),
            moves: 0,
        }
    }

    /// Number of live entries (placed and not yet confirmed removed).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Subscriptions routed somewhere other than their hash shard.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// The shard `id` was placed on, if it is live.
    pub fn lookup(&self, id: SubscriptionId) -> Option<usize> {
        self.map.get(&id).map(|&s| s as usize)
    }

    /// The placement view of shard `s` (test/diagnostic access).
    pub fn view(&self, s: usize) -> &ShardSummary {
        &self.views[s]
    }

    /// Chooses a shard for a new subscription and records the placement.
    ///
    /// - A duplicate id routes to its existing shard without widening
    ///   anything (the shard's store will reject it, preserving the
    ///   duplicate-rejection counters).
    /// - With `placement_enabled`, the minimum-score shard wins and a
    ///   choice differing from `hash_shard` counts as a move; otherwise
    ///   `hash_shard` is used verbatim.
    pub fn place(
        &mut self,
        id: SubscriptionId,
        schema: &Schema,
        ranges: &[Range],
        hash_shard: usize,
        placement_enabled: bool,
    ) -> usize {
        if let Some(shard) = self.lookup(id) {
            return shard;
        }
        let shard = if placement_enabled {
            let shard = self.best_shard(schema, ranges);
            if shard != hash_shard {
                self.moves += 1;
            }
            shard
        } else {
            hash_shard
        };
        self.record(id, shard, schema, ranges);
        shard
    }

    /// Re-records a placement learned from recovery: the shard already
    /// holds `id`, the directory just mirrors the fact.
    pub fn record(&mut self, id: SubscriptionId, shard: usize, schema: &Schema, ranges: &[Range]) {
        self.views[shard].widen_bounds(schema, ranges);
        self.map.insert(id, shard as u32);
    }

    /// Confirms that shard `shard` removed `id`: drops the entry and
    /// decrements the view's population (bounds stay — views never
    /// narrow). Call only after the shard acknowledged the removal, so a
    /// racing lookup never points at a shard that still holds the entry.
    pub fn confirm_removal(&mut self, id: SubscriptionId, shard: usize) {
        if self.map.remove(&id).is_some() {
            self.views[shard].note_removal();
        }
    }

    /// The minimum-score shard for a subscription with bounds `ranges`.
    fn best_shard(&self, schema: &Schema, ranges: &[Range]) -> usize {
        let total: u64 = self.views.iter().map(|v| v.subscriptions()).sum();
        let mean = total as f64 / self.views.len() as f64;
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for (s, view) in self.views.iter().enumerate() {
            let overload = (view.subscriptions() as f64 - mean).max(0.0) / (mean + 1.0);
            let score = view.widening_cost(schema, ranges) + LOAD_PENALTY_WEIGHT * overload;
            if score < best_score {
                best_score = score;
                best = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::DEFAULT_SUMMARY_INTERVALS;
    use psc_model::Subscription;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 999)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::from_ranges(
            schema,
            vec![
                Range::new(x0.0, x0.1).unwrap(),
                Range::new(x1.0, x1.1).unwrap(),
            ],
        )
        .unwrap()
    }

    fn dir(shards: usize) -> PlacementDirectory {
        PlacementDirectory::new(shards, 2, DEFAULT_SUMMARY_INTERVALS)
    }

    #[test]
    fn similar_subscriptions_cluster_on_one_shard() {
        let schema = schema();
        let mut dir = dir(4);
        // Two attribute-space clusters, interleaved arrival order.
        let low = sub(&schema, (0, 99), (0, 99));
        let high = sub(&schema, (900, 999), (900, 999));
        let mut shards_low = Vec::new();
        let mut shards_high = Vec::new();
        for i in 0..10u64 {
            shards_low.push(dir.place(SubscriptionId(2 * i), &schema, low.ranges(), 0, true));
            shards_high.push(dir.place(SubscriptionId(2 * i + 1), &schema, high.ranges(), 1, true));
        }
        assert!(
            shards_low.iter().all(|&s| s == shards_low[0]),
            "low cluster split: {shards_low:?}"
        );
        assert!(
            shards_high.iter().all(|&s| s == shards_high[0]),
            "high cluster split: {shards_high:?}"
        );
        assert_ne!(shards_low[0], shards_high[0], "clusters share a shard");
        assert_eq!(dir.len(), 20);
    }

    #[test]
    fn load_penalty_stops_one_shard_absorbing_everything() {
        let schema = schema();
        let mut dir = dir(4);
        // Every subscription is identical: widening cost is 0 on the
        // first shard after the first placement, so only the load term
        // differentiates. It must eventually push placements elsewhere.
        let s = sub(&schema, (100, 200), (100, 200));
        let mut used = std::collections::BTreeSet::new();
        for i in 0..40u64 {
            used.insert(dir.place(SubscriptionId(i), &schema, s.ranges(), 0, true));
        }
        assert!(
            used.len() > 1,
            "load penalty never engaged: all 40 on shard {used:?}"
        );
    }

    #[test]
    fn duplicate_ids_reuse_the_existing_placement() {
        let schema = schema();
        let mut dir = dir(4);
        let a = sub(&schema, (0, 99), (0, 99));
        let b = sub(&schema, (900, 999), (900, 999));
        let first = dir.place(SubscriptionId(7), &schema, a.ranges(), 2, true);
        // Same id, totally different content: must land on the same
        // shard (where the store will reject it) and widen nothing.
        let before = dir.view(first).clone();
        let again = dir.place(SubscriptionId(7), &schema, b.ranges(), 3, true);
        assert_eq!(first, again);
        assert_eq!(dir.view(first), &before, "duplicate widened the view");
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn disabled_placement_uses_the_hash_shard_and_counts_no_moves() {
        let schema = schema();
        let mut dir = dir(4);
        let s = sub(&schema, (0, 99), (0, 99));
        for i in 0..8u64 {
            let hash = (i % 4) as usize;
            assert_eq!(
                dir.place(SubscriptionId(i), &schema, s.ranges(), hash, false),
                hash
            );
        }
        assert_eq!(dir.moves(), 0);
        assert_eq!(dir.len(), 8);
        assert_eq!(dir.lookup(SubscriptionId(5)), Some(1));
    }

    #[test]
    fn removal_confirms_through_the_directory() {
        let schema = schema();
        let mut dir = dir(2);
        let s = sub(&schema, (0, 99), (0, 99));
        let shard = dir.place(SubscriptionId(1), &schema, s.ranges(), 0, true);
        assert_eq!(dir.lookup(SubscriptionId(1)), Some(shard));
        dir.confirm_removal(SubscriptionId(1), shard);
        assert_eq!(dir.lookup(SubscriptionId(1)), None);
        assert_eq!(dir.view(shard).subscriptions(), 0);
        assert!(dir.is_empty());
        // Idempotent: a second confirmation is a no-op.
        dir.confirm_removal(SubscriptionId(1), shard);
        assert_eq!(dir.view(shard).subscriptions(), 0);
    }

    #[test]
    fn moves_count_only_non_hash_choices() {
        let schema = schema();
        let mut dir = dir(2);
        let s = sub(&schema, (0, 99), (0, 99));
        // First placement: every view is empty and equally scored, so
        // shard 0 wins. Hash said 0 too — not a move.
        dir.place(SubscriptionId(1), &schema, s.ranges(), 0, true);
        assert_eq!(dir.moves(), 0);
        // Second identical subscription clusters onto shard 0 while hash
        // said 1 — a move.
        dir.place(SubscriptionId(2), &schema, s.ranges(), 1, true);
        assert_eq!(dir.moves(), 1);
    }
}
