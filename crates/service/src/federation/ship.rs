//! WAL log shipping: the replication/fail-over half of federation.
//!
//! The serving side ([`WalShipper`]) answers `WAL list` / `WAL fetch`
//! broker opcodes straight off a durable node's storage directory: per
//! shard, the verbatim `manifest.bin` bytes plus every live
//! `wal.NNNNNN.log` segment's id and current length, and arbitrary byte
//! ranges of those segments. Segments are append-only and immutable
//! after rotation (see [`crate::storage`]), which is exactly what makes
//! them shippable: a follower only ever needs to append the leader's
//! new bytes, never to reconcile rewrites. The one exception is a
//! leader restart whose recovery truncates a torn live-segment tail the
//! follower had already mirrored — so every `WAL fetch` carries the
//! fetcher's CRC-32 of its local prefix, the serving side verifies it
//! against its own bytes before answering, and on mismatch the follower
//! drops its copy of that segment and refetches it from zero. Length
//! comparison alone cannot catch this (the restarted leader may have
//! re-appended past the follower's length); the prefix CRC can.
//!
//! The tailing side ([`WalFollower`] / [`FollowerHandle`]) mirrors the
//! leader's shard directories into a replica directory through the
//! [`StorageFs`] abstraction (so crash-injection tests can power-loss
//! the replica mid-ship), heartbeats the leader, and after a configured
//! number of consecutive missed heartbeats reports the leader dead —
//! at which point [`FollowerHandle::take_over`] opens an ordinary
//! [`PubSubService`] over the replica and serves the leader's
//! subscriptions.
//!
//! Consistency contract: take-over serves a *prefix* of the leader's
//! acknowledged operations — everything shipped before the leader
//! stopped. Shipping is asynchronous, so an operation the leader acked
//! in its final unshipped moments may be missing from the replica; what
//! can never happen is a torn or reordered replica state: the prefix
//! CRC above keeps every replica segment a byte-exact prefix of the
//! leader's even across leader restarts, and recovery applies the same
//! manifest/segment validation the leader's own restart would.

use super::link::{LinkError, LinkSession};
use super::proto::{
    BrokerRequest, BrokerResponse, SegmentInfo, ShardSegments, MAX_WAL_CHUNK_BYTES,
};
use crate::service::{PubSubService, ServiceConfig, ServiceError};
use crate::storage::record::{crc32, crc32_finalize, crc32_update, CRC_INIT};
use crate::storage::{parse_segment_name, segment_file_name, RealFs, StorageFs, MANIFEST_FILE};
use psc_broker::BrokerId;
use psc_model::Schema;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serves a durable node's WAL segments to followers.
pub(crate) struct WalShipper {
    data_dir: PathBuf,
    shards: usize,
    /// Boot epoch: fresh per process start, shipped in every `WAL list`
    /// so followers can tell a restart happened (and re-verify the
    /// segment prefixes restart recovery may have truncated).
    epoch: u64,
    /// Rotated segments whose final byte has been served — the
    /// `segments_shipped` counter counts each exactly once.
    fully_shipped: Mutex<HashSet<(u32, u64)>>,
}

impl WalShipper {
    pub(crate) fn new(data_dir: PathBuf, shards: usize) -> WalShipper {
        WalShipper {
            data_dir,
            shards,
            epoch: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos() as u64),
            fully_shipped: Mutex::new(HashSet::new()),
        }
    }

    /// This process's boot epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shippable state of every shard.
    pub(crate) fn list(&self) -> std::io::Result<Vec<ShardSegments>> {
        let mut out = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let dir = self.data_dir.join(format!("shard-{shard}"));
            let manifest = match std::fs::read(dir.join(MANIFEST_FILE)) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            let mut segments = Vec::new();
            match std::fs::read_dir(&dir) {
                Ok(entries) => {
                    for entry in entries {
                        let entry = entry?;
                        let name = entry.file_name().to_string_lossy().into_owned();
                        if let Some(id) = parse_segment_name(&name) {
                            segments.push(SegmentInfo {
                                id,
                                len: entry.metadata()?.len(),
                            });
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            segments.sort_by_key(|s| s.id);
            out.push(ShardSegments {
                shard: shard as u32,
                manifest,
                segments,
            });
        }
        Ok(out)
    }

    /// Reads up to `max_len` bytes of one segment from `offset`, after
    /// verifying `prefix_crc` (the fetcher's CRC-32 of its local first
    /// `offset` bytes) against this node's own prefix. Returns `None`
    /// when the prefix diverged — the fetcher mirrored bytes a restart's
    /// torn-tail truncation since rewrote, and must refetch from zero —
    /// otherwise the bytes plus how many *rotated* segments this fetch
    /// newly completed (0 or 1) for the `segments_shipped` counter.
    pub(crate) fn fetch(
        &self,
        shard: u32,
        segment: u64,
        offset: u64,
        max_len: u32,
        prefix_crc: u32,
    ) -> std::io::Result<Option<(Vec<u8>, u64)>> {
        let dir = self.data_dir.join(format!("shard-{shard}"));
        let bytes = std::fs::read(dir.join(segment_file_name(segment)))?;
        let start = offset as usize;
        if start > bytes.len() || crc32(&bytes[..start]) != prefix_crc {
            return Ok(None);
        }
        let len = (max_len.min(MAX_WAL_CHUNK_BYTES) as usize).min(bytes.len() - start);
        let chunk = bytes[start..start + len].to_vec();

        let mut newly_completed = 0;
        if start + len == bytes.len() {
            // Only a *rotated* segment (one with a successor on disk) is
            // countably complete; the live segment's end keeps moving.
            let has_successor = std::fs::read_dir(&dir)?
                .filter_map(|e| e.ok())
                .filter_map(|e| parse_segment_name(&e.file_name().to_string_lossy()))
                .any(|id| id > segment);
            if has_successor
                && self
                    .fully_shipped
                    .lock()
                    .expect("shipped set lock")
                    .insert((shard, segment))
            {
                newly_completed = 1;
            }
        }
        Ok(Some((chunk, newly_completed)))
    }
}

/// One `sync` pass's outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Shards the leader listed.
    pub shards: usize,
    /// WAL bytes fetched and appended to the replica this pass.
    pub bytes_fetched: u64,
    /// Local segments deleted because the leader pruned them.
    pub segments_pruned: u64,
}

/// Tails a peer node's WAL segments into a local replica directory.
///
/// Synchronous API: each [`WalFollower::sync`] call converges the
/// replica to the leader's current shipped state, each
/// [`WalFollower::heartbeat`] probes liveness. [`FollowerHandle::spawn`]
/// wraps both in a background thread with missed-heartbeat detection.
pub struct WalFollower {
    link: LinkSession,
    replica_dir: PathBuf,
    fs: Arc<dyn StorageFs>,
    shards_seen: usize,
    /// The leader's boot epoch at the last *completed* sync pass.
    /// `None` before the first — the first pass (and any pass after an
    /// observed epoch change) verifies every mirrored segment prefix
    /// instead of trusting matching lengths, because a leader restart
    /// may have truncated a torn tail this replica already holds.
    leader_epoch: Option<u64>,
}

impl WalFollower {
    /// A follower tailing the node at `addr` into `replica_dir` on the
    /// real filesystem.
    pub fn connect(
        addr: SocketAddr,
        replica_dir: PathBuf,
        io_timeout: Option<Duration>,
    ) -> WalFollower {
        WalFollower::with_fs(addr, replica_dir, io_timeout, Arc::new(RealFs))
    }

    /// Same, writing the replica through an explicit [`StorageFs`] —
    /// the crash-injection seam.
    pub fn with_fs(
        addr: SocketAddr,
        replica_dir: PathBuf,
        io_timeout: Option<Duration>,
        fs: Arc<dyn StorageFs>,
    ) -> WalFollower {
        WalFollower {
            // The follower is not an overlay member; the id is only a
            // label in the leader's hello handling.
            link: LinkSession::new(BrokerId(usize::MAX), u64::MAX, addr, io_timeout),
            replica_dir,
            fs,
            shards_seen: 0,
            leader_epoch: None,
        }
    }

    /// Shard count from the last successful sync (0 before the first).
    pub fn shards_seen(&self) -> usize {
        self.shards_seen
    }

    /// The replica directory this follower writes.
    pub fn replica_dir(&self) -> &std::path::Path {
        &self.replica_dir
    }

    /// Probes the leader. An error means a missed heartbeat.
    pub fn heartbeat(&mut self) -> Result<(), LinkError> {
        self.link.ensure(Vec::new)?;
        match self
            .link
            .call(&BrokerRequest::Heartbeat { node_id: u64::MAX })?
        {
            BrokerResponse::Heartbeat { .. } => Ok(()),
            other => Err(LinkError::Wire(psc_model::wire::WireError::Shape(format!(
                "heartbeat answered with unexpected response: {other:?}"
            )))),
        }
    }

    /// One full sync pass: list the leader's shards, append every new
    /// segment byte to the replica (fsynced), mirror manifests, drop
    /// segments the leader pruned.
    pub fn sync(&mut self) -> Result<SyncReport, LinkError> {
        self.link.ensure(Vec::new)?;
        let (epoch, shards) = match self.link.call(&BrokerRequest::WalList)? {
            BrokerResponse::WalList { epoch, shards } => (epoch, shards),
            other => {
                return Err(LinkError::Wire(psc_model::wire::WireError::Shape(format!(
                    "WAL list answered with unexpected response: {other:?}"
                ))))
            }
        };
        // First contact, or the leader restarted since our last
        // completed pass: every mirrored prefix must be re-verified,
        // even in segments whose lengths happen to match.
        let verify_prefixes = self.leader_epoch != Some(epoch);
        let mut report = SyncReport {
            shards: shards.len(),
            ..SyncReport::default()
        };
        for shard in &shards {
            report.bytes_fetched += self.sync_shard(shard, verify_prefixes)?;
            report.segments_pruned += self.prune_shard(shard)?;
        }
        self.shards_seen = shards.len();
        // Only a completed pass may latch the epoch: a pass that died
        // mid-verification re-verifies everything next time.
        self.leader_epoch = Some(epoch);
        Ok(report)
    }

    fn shard_dir(&self, shard: u32) -> PathBuf {
        self.replica_dir.join(format!("shard-{shard}"))
    }

    /// The replica's current copy of one segment: its length and the
    /// streaming CRC-32 register over its bytes (extended chunk by
    /// chunk as the sync appends).
    fn local_state(&self, shard: u32, segment: u64) -> std::io::Result<(u64, u32)> {
        match self
            .fs
            .read(&self.shard_dir(shard).join(segment_file_name(segment)))
        {
            Ok(bytes) => Ok((bytes.len() as u64, crc32_update(CRC_INIT, &bytes))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok((0, CRC_INIT)),
            Err(e) => Err(e),
        }
    }

    /// Truncates the replica's copy of one segment to zero — the local
    /// prefix diverged from the leader's (a restart truncated a torn
    /// tail we had mirrored) and must be refetched from scratch.
    fn reset_segment(&self, dir: &std::path::Path, segment: u64) -> std::io::Result<()> {
        self.fs
            .create(&dir.join(segment_file_name(segment)))?
            .sync()
    }

    fn sync_shard(
        &mut self,
        shard: &ShardSegments,
        verify_prefixes: bool,
    ) -> Result<u64, LinkError> {
        let dir = self.shard_dir(shard.shard);
        self.fs.create_dir_all(&dir)?;
        self.write_manifest(shard)?;
        let mut fetched = 0u64;
        for segment in &shard.segments {
            let (mut local, mut crc_state) = self.local_state(shard.shard, segment.id)?;
            if local > segment.len {
                // The leader restarted and recovery truncated a torn
                // tail shorter than what we mirrored. Refetch from zero
                // (rare; segments never shrink otherwise).
                self.reset_segment(&dir, segment.id)?;
                local = 0;
                crc_state = CRC_INIT;
            }
            // After a leader restart even an equal-length segment may
            // hide divergence: recovery truncated a torn tail and new
            // appends grew the segment back past our length. A
            // zero-length fetch makes the leader check our prefix CRC
            // without shipping bytes.
            let mut need_probe = verify_prefixes && local > 0;
            // A same-pass prefix mismatch after a reset means the leader
            // truncated *again* mid-pass; give up and let the next pass
            // re-list rather than spin.
            let mut resets = 0;
            while local < segment.len || need_probe {
                let want =
                    (segment.len.saturating_sub(local)).min(MAX_WAL_CHUNK_BYTES as u64) as u32;
                let (prefix_ok, chunk) = match self.link.call(&BrokerRequest::WalFetch {
                    shard: shard.shard,
                    segment: segment.id,
                    offset: local,
                    max_len: want,
                    prefix_crc: crc32_finalize(crc_state),
                })? {
                    BrokerResponse::WalChunk { prefix_ok, bytes } => (prefix_ok, bytes),
                    other => {
                        return Err(LinkError::Wire(psc_model::wire::WireError::Shape(format!(
                            "WAL fetch answered with unexpected response: {other:?}"
                        ))))
                    }
                };
                if !prefix_ok {
                    // Our mirrored prefix diverged from the leader's
                    // (torn-tail truncation after a leader restart, even
                    // one the length guard above cannot see because the
                    // leader re-appended past our length). Drop the
                    // local copy and refetch the segment from zero.
                    if resets >= 1 {
                        break;
                    }
                    resets += 1;
                    self.reset_segment(&dir, segment.id)?;
                    local = 0;
                    crc_state = CRC_INIT;
                    // An empty local prefix trivially matches.
                    need_probe = false;
                    continue;
                }
                // The leader vouched for our whole mirrored prefix.
                need_probe = false;
                if chunk.is_empty() {
                    // The leader's segment shrank or vanished between
                    // list and fetch (a prune raced us); the next sync
                    // pass re-lists and reconciles.
                    break;
                }
                let mut file = self
                    .fs
                    .open_append(&dir.join(segment_file_name(segment.id)))?;
                file.write_all(&chunk)?;
                file.sync()?;
                crc_state = crc32_update(crc_state, &chunk);
                local += chunk.len() as u64;
                fetched += chunk.len() as u64;
            }
        }
        Ok(fetched)
    }

    /// Mirrors the leader's manifest bytes atomically (tmp + rename),
    /// the same discipline the storage layer itself uses.
    fn write_manifest(&self, shard: &ShardSegments) -> std::io::Result<()> {
        if shard.manifest.is_empty() {
            return Ok(());
        }
        let dir = self.shard_dir(shard.shard);
        let current = match self.fs.read(&dir.join(MANIFEST_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if current == shard.manifest {
            return Ok(());
        }
        let tmp = dir.join("manifest.tmp");
        let mut file = self.fs.create(&tmp)?;
        file.write_all(&shard.manifest)?;
        file.sync()?;
        drop(file);
        self.fs.rename(&tmp, &dir.join(MANIFEST_FILE))?;
        self.fs.sync_dir(&dir)
    }

    /// Deletes replica segments the leader no longer lists (pruned
    /// behind a snapshot there; the mirrored manifest already points
    /// past them).
    fn prune_shard(&self, shard: &ShardSegments) -> std::io::Result<u64> {
        let dir = self.shard_dir(shard.shard);
        let live: HashSet<u64> = shard.segments.iter().map(|s| s.id).collect();
        let names = match self.fs.list_dir(&dir) {
            Ok(names) => names,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut pruned = 0;
        for name in names {
            if let Some(id) = parse_segment_name(&name) {
                if !live.contains(&id) {
                    self.fs.remove_file(&dir.join(name))?;
                    pruned += 1;
                }
            }
        }
        Ok(pruned)
    }
}

struct FollowerShared {
    stop: AtomicBool,
    consecutive_misses: AtomicU64,
    syncs_completed: AtomicU64,
    sync_failures: AtomicU64,
}

/// A background WAL follower: syncs and heartbeats on an interval,
/// counts consecutive missed heartbeats, and hands the replica over to
/// a fresh [`PubSubService`] on demand.
pub struct FollowerHandle {
    shared: Arc<FollowerShared>,
    join: Option<JoinHandle<WalFollower>>,
    replica_dir: PathBuf,
    miss_threshold: u64,
}

impl FollowerHandle {
    /// Spawns a follower thread tailing `addr` into `replica_dir` every
    /// `interval`; the leader counts as dead after `miss_threshold`
    /// consecutive failed heartbeats.
    pub fn spawn(
        addr: SocketAddr,
        replica_dir: PathBuf,
        interval: Duration,
        miss_threshold: u64,
    ) -> FollowerHandle {
        let shared = Arc::new(FollowerShared {
            stop: AtomicBool::new(false),
            consecutive_misses: AtomicU64::new(0),
            syncs_completed: AtomicU64::new(0),
            sync_failures: AtomicU64::new(0),
        });
        let thread_shared = Arc::clone(&shared);
        let mut follower = WalFollower::connect(
            addr,
            replica_dir.clone(),
            Some(interval.max(Duration::from_millis(100))),
        );
        let join = std::thread::Builder::new()
            .name("psc-wal-follower".into())
            .spawn(move || {
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    // Liveness is judged on the heartbeat alone: a live
                    // leader whose shipping endpoint errors (e.g. a
                    // non-durable node with no WAL to serve) must not
                    // accumulate misses and invite a spurious take-over.
                    match follower.heartbeat() {
                        Ok(()) => {
                            thread_shared.consecutive_misses.store(0, Ordering::Relaxed);
                            match follower.sync() {
                                Ok(_) => {
                                    thread_shared
                                        .syncs_completed
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    thread_shared.sync_failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            thread_shared
                                .consecutive_misses
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(interval);
                }
                follower
            })
            .expect("spawn follower thread");
        FollowerHandle {
            shared,
            join: Some(join),
            replica_dir,
            miss_threshold,
        }
    }

    /// Whether the leader has answered within the miss threshold.
    pub fn peer_alive(&self) -> bool {
        self.shared.consecutive_misses.load(Ordering::Relaxed) < self.miss_threshold
    }

    /// Completed sync passes so far.
    pub fn syncs_completed(&self) -> u64 {
        self.shared.syncs_completed.load(Ordering::Relaxed)
    }

    /// Sync passes that failed against a leader whose heartbeat landed.
    /// Counted separately from missed heartbeats: shipping trouble is
    /// not evidence of leader death.
    pub fn sync_failures(&self) -> u64 {
        self.shared.sync_failures.load(Ordering::Relaxed)
    }

    /// Stops the tailer thread (idempotent) and returns the inner
    /// follower for further synchronous use, if the thread was running.
    pub fn stop(&mut self) -> Option<WalFollower> {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.join.take().map(|j| j.join().expect("follower thread"))
    }

    /// Fail-over: stops tailing and opens an ordinary service over the
    /// replica directory, recovering the leader's shipped subscriptions
    /// through the standard WAL/snapshot recovery path.
    ///
    /// `config.shards` must match the leader's shard count (the replica
    /// has one directory per leader shard); `data_dir` is overridden to
    /// the replica directory.
    pub fn take_over(
        mut self,
        schema: Schema,
        mut config: ServiceConfig,
    ) -> Result<PubSubService, ServiceError> {
        self.stop();
        config.data_dir = Some(self.replica_dir.clone());
        PubSubService::open(schema, config)
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
