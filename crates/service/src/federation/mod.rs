//! Federated broker mesh: N services as one content-based pub/sub system.
//!
//! A [`FederatedNode`] wraps one [`PubSubService`] in an overlay member:
//! it serves ordinary clients over both wire protocols (see
//! [`crate::wire`]) *and* speaks a broker-to-broker extension of the
//! binary protocol ([`proto`]) to its overlay neighbors. The overlay is
//! a tree (see [`psc_broker::Topology`]); each edge is a `LinkSession`
//! dialed by whichever endpoint has traffic to push.
//!
//! ## Subscription aggregation
//!
//! On subscribe — local or forwarded — a node consults its
//! [`psc_broker::CoveringPolicy`] over the set already forwarded on each
//! uplink and forwards only non-covered subscriptions; when a new
//! subscription subsumes previously forwarded ones, it replaces them
//! (forward first, then retract, so coverage never has a gap). The
//! decision machinery lives in the `mesh` module; the invariant it maintains is
//! that on every link, each subscription known at the node is either
//! *forwarded* or *suppressed by* (exactly-covered by) a forwarded one —
//! so suppressing never loses deliveries.
//!
//! ## Publication routing
//!
//! Publishes route hop-by-hop by reverse path forwarding: a node sends a
//! publication to every neighbor (except the arrival link) that has
//! forwarded it a matching interest, and merges the neighbors' match
//! sets into its own. The publisher's response therefore carries every
//! matching subscriber id mesh-wide.
//!
//! ## Log shipping and fail-over
//!
//! Durable nodes additionally serve their segmented write-ahead log over
//! `WAL list`/`WAL fetch` opcodes; a [`WalFollower`] tails a peer's
//! segments into a replica directory and [`FollowerHandle::take_over`]
//! opens a standard service over the replica after missed heartbeats.
//! See the `ship` module for the consistency contract.
//!
//! ## Concurrency discipline
//!
//! Federated nodes serve thread-per-connection (not the reactor): a
//! broker operation may need blocking round trips on downstream links,
//! which a single event-loop thread must never perform. All mesh
//! decisions are computed under the node's mesh mutex into *plans* and
//! executed after release, and per-link sessions serialize round trips;
//! on a tree overlay these locks cannot form a cycle.

mod link;
mod mesh;
pub mod proto;
mod ship;

pub use link::LinkError;
pub use proto::{BrokerRequest, BrokerResponse, SegmentInfo, ShardSegments, MAX_WAL_CHUNK_BYTES};
pub use ship::{FollowerHandle, SyncReport, WalFollower};

use crate::reactor::ReactorCounters;
use crate::service::{PubSubService, ServiceConfig};
use crate::wire::{self, BinRequest, Request, Response};
use link::LinkSession;
use mesh::{ForwardPlan, MeshState};
use psc_broker::{BrokerId, CoveringPolicy};
use psc_model::codec::{BinFrame, BinaryFramer, BINARY_PREAMBLE};
use psc_model::wire::{
    FederationStats, Frame, LineFramer, PublicationDto, SubscriptionDto, WireError,
};
use psc_model::{Schema, Subscription, SubscriptionId};
use ship::WalShipper;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection handler blocks in one read before re-checking
/// the node's shutdown flag.
const POLL_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Overlay membership and mesh policy for one [`FederatedNode`].
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// This node's overlay id.
    pub node_id: BrokerId,
    /// Listen address (use port 0 for an OS-assigned port).
    pub listen: String,
    /// Overlay neighbors: id and dial address per adjacent broker.
    pub peers: Vec<(BrokerId, SocketAddr)>,
    /// Covering policy applied when deciding what to forward.
    pub policy: CoveringPolicy,
    /// Seed for the policy's probabilistic checker.
    pub seed: u64,
    /// Heartbeat/reconnect cadence (`None` disables the background
    /// thread; links still heal lazily on use).
    pub heartbeat_interval: Option<Duration>,
    /// Crash injection: fail (and stop the node) at the N-th federation
    /// protocol boundary. `None` in production.
    pub fail_after_ops: Option<u64>,
}

impl FederationConfig {
    /// A standalone node (no peers) with the exact pairwise policy.
    pub fn new(node_id: BrokerId) -> FederationConfig {
        FederationConfig {
            node_id,
            listen: "127.0.0.1:0".to_string(),
            peers: Vec::new(),
            policy: CoveringPolicy::Pairwise,
            seed: 0x5eed_f00d,
            heartbeat_interval: Some(Duration::from_millis(500)),
            fail_after_ops: None,
        }
    }
}

/// Crash-injection counter: every federation protocol boundary calls
/// [`FailPoint::check`]; once the configured threshold is crossed the
/// node flags shutdown and the boundary reports a crash instead of
/// acking — connections drop without a response, exactly like a process
/// kill at that instant.
struct FailPoint {
    ops: AtomicU64,
    fail_at: u64,
}

impl FailPoint {
    fn new(fail_at: Option<u64>) -> FailPoint {
        FailPoint {
            ops: AtomicU64::new(0),
            fail_at: fail_at.unwrap_or(u64::MAX),
        }
    }

    /// Counts one boundary crossing; `false` means the node just
    /// "crashed" and the caller must drop the connection unacked.
    fn check(&self, shutdown: &AtomicBool) -> bool {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= self.fail_at {
            shutdown.store(true, Ordering::SeqCst);
            return false;
        }
        true
    }
}

/// Forwarding-decision counters. These count *decisions at mesh-install
/// time*, not wire sends: a reconnect resync retransmits the sent set
/// without inflating them, so `subs_suppressed / (subs_forwarded +
/// subs_suppressed)` stays an honest suppression fraction.
#[derive(Default)]
struct FedCounters {
    subs_forwarded: AtomicU64,
    subs_received: AtomicU64,
    subs_suppressed: AtomicU64,
    subs_retracted: AtomicU64,
    remote_publishes: AtomicU64,
    segments_shipped: AtomicU64,
}

struct NodeShared {
    service: Arc<PubSubService>,
    mesh: Mutex<MeshState>,
    links: Vec<Arc<LinkSession>>,
    counters: FedCounters,
    reactor: Arc<ReactorCounters>,
    shipper: Option<WalShipper>,
    node_id: BrokerId,
    shutdown: AtomicBool,
    fail: FailPoint,
    conns: Mutex<Vec<JoinHandle<()>>>,
    max_frame_bytes: usize,
}

impl NodeShared {
    fn link_to(&self, peer: BrokerId) -> Option<&Arc<LinkSession>> {
        self.links.iter().find(|l| l.peer() == peer)
    }

    fn federation_stats(&self) -> FederationStats {
        FederationStats {
            peers_connected: self.links.iter().filter(|l| l.is_connected()).count() as u64,
            subs_forwarded: self.counters.subs_forwarded.load(Ordering::Relaxed),
            subs_received: self.counters.subs_received.load(Ordering::Relaxed),
            subs_suppressed: self.counters.subs_suppressed.load(Ordering::Relaxed),
            subs_retracted: self.counters.subs_retracted.load(Ordering::Relaxed),
            remote_publishes: self.counters.remote_publishes.load(Ordering::Relaxed),
            segments_shipped: self.counters.segments_shipped.load(Ordering::Relaxed),
        }
    }

    /// Counts one install outcome's forwarding decisions.
    fn count_install(&self, plans: &[ForwardPlan], suppressed: u64) {
        let forwards: u64 = plans.iter().map(|p| p.forward.len() as u64).sum();
        let retracts: u64 = plans.iter().map(|p| p.retract.len() as u64).sum();
        self.counters
            .subs_forwarded
            .fetch_add(forwards, Ordering::Relaxed);
        self.counters
            .subs_suppressed
            .fetch_add(suppressed, Ordering::Relaxed);
        self.counters
            .subs_retracted
            .fetch_add(retracts, Ordering::Relaxed);
    }

    /// Establishes `link` if down. A fresh session runs a full resync
    /// (re-forwarding the covering-filtered sent set) *inside* the
    /// link's connection lock, before the session becomes callable, so
    /// no concurrent plan or publish can reach a restarted peer ahead
    /// of its routing-table rebuild. Callers must not hold the mesh
    /// lock (the resync closure takes it briefly).
    fn establish(&self, session: &LinkSession) -> Result<(), LinkError> {
        session.ensure(|| {
            let entries = {
                let m = self.mesh.lock().expect("mesh lock");
                m.resync_entries(session.peer())
            };
            entries
                .into_iter()
                .map(|(id, sub)| {
                    BrokerRequest::Forward(SubscriptionDto::from_subscription(id, &sub))
                })
                .collect()
        })
    }

    /// Executes planned per-link sends: forwards first, then retracts.
    /// Link failures are swallowed — a down link heals on reconnect via
    /// resync, which retransmits the authoritative sent set.
    fn execute_plans(&self, plans: Vec<ForwardPlan>) {
        for plan in plans {
            let Some(session) = self.link_to(plan.to) else {
                continue;
            };
            let _ = self.send_plan(session, &plan);
        }
    }

    fn send_plan(&self, session: &LinkSession, plan: &ForwardPlan) -> Result<(), LinkError> {
        self.establish(session)?;
        for (id, sub) in &plan.forward {
            session.call(&BrokerRequest::Forward(SubscriptionDto::from_subscription(
                *id, sub,
            )))?;
        }
        for id in &plan.retract {
            session.call(&BrokerRequest::Retract(id.0))?;
        }
        Ok(())
    }

    /// Installs a subscription (local client or forwarded by `from`)
    /// into the service and the mesh, and pushes the onward forwards.
    fn install_subscription(
        &self,
        from: Option<BrokerId>,
        id: SubscriptionId,
        sub: Subscription,
    ) -> Result<(), String> {
        let outcome = {
            let mut m = self.mesh.lock().expect("mesh lock");
            m.install(from, id, sub.clone())
        };
        if outcome.conflict {
            // Same id, different filter: an id collision (ids are
            // client-chosen), not an idempotent retransmission. Acking
            // it would leave the caller subscribed nowhere.
            return Err(format!(
                "subscription id {} is already installed with a different filter",
                id.0
            ));
        }
        if outcome.duplicate {
            // Resync retransmission or a routing cycle: already applied
            // here (exact body match), ack idempotently.
            return Ok(());
        }
        if from.is_some() {
            self.counters.subs_received.fetch_add(1, Ordering::Relaxed);
        }
        self.count_install(&outcome.plans, outcome.suppressed);
        self.service.subscribe(id, sub).map_err(|e| e.to_string())?;
        self.execute_plans(outcome.plans);
        Ok(())
    }

    /// Removes a subscription and pushes the onward retracts (plus any
    /// covering promotions). Returns whether the id was known here.
    fn remove_subscription(&self, from: Option<BrokerId>, id: SubscriptionId) -> bool {
        let (existed, plans) = {
            let mut m = self.mesh.lock().expect("mesh lock");
            m.remove(from, id)
        };
        if !existed {
            return false;
        }
        self.count_install(&plans, 0);
        self.service.unsubscribe(id);
        self.execute_plans(plans);
        true
    }

    /// Matches a publication locally and routes it to every interested
    /// neighbor (except the arrival link), merging the match sets.
    fn route_publication(
        &self,
        from: Option<BrokerId>,
        p: &psc_model::Publication,
        dto: &PublicationDto,
    ) -> Result<Vec<u64>, String> {
        let mut ids: Vec<u64> = self
            .service
            .publish(p)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(|id| id.0)
            .collect();
        let targets = {
            let m = self.mesh.lock().expect("mesh lock");
            m.publish_targets(from, p)
        };
        for to in targets {
            let Some(session) = self.link_to(to) else {
                continue;
            };
            let forwarded = self
                .establish(session)
                .and_then(|()| session.call(&BrokerRequest::Publish(dto.clone())));
            match forwarded {
                Ok(BrokerResponse::Matched(remote)) => {
                    self.counters
                        .remote_publishes
                        .fetch_add(1, Ordering::Relaxed);
                    ids.extend(remote);
                }
                Ok(other) => {
                    return Err(format!("peer {to} answered publish with {other:?}"));
                }
                Err(e) => {
                    // Deliveries beyond this link would be silently lost;
                    // surface the partition to the publisher.
                    return Err(format!("publish routing to {to} failed: {e}"));
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }
}

/// What a broker-opcode handler tells the connection loop to do.
enum BrokerReply {
    /// Answer with this response.
    Respond(BrokerResponse),
    /// Answer with a `0xFF` error frame.
    Fail(String),
    /// Injected crash: drop the connection without answering.
    Crash,
}

/// One [`PubSubService`] serving as a member of a federated mesh.
///
/// # Example
///
/// ```no_run
/// use psc_broker::BrokerId;
/// use psc_model::Schema;
/// use psc_service::federation::{FederatedNode, FederationConfig};
/// use psc_service::ServiceConfig;
///
/// let schema = Schema::uniform(2, 0, 99);
/// let node = FederatedNode::start(
///     schema,
///     ServiceConfig::with_shards(1),
///     FederationConfig::new(BrokerId(0)),
/// )?;
/// println!("serving on {}", node.local_addr());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct FederatedNode {
    shared: Arc<NodeShared>,
    addr: SocketAddr,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl FederatedNode {
    /// Opens the wrapped service (recovering from `config.data_dir` if
    /// set), seeds the mesh from the recovered subscriptions, binds the
    /// listener, and spawns the accept and heartbeat threads.
    ///
    /// Recovered subscriptions are installed into the mesh immediately
    /// but *not* pushed — no link is up yet; the first (re)connect on
    /// each link resyncs the full covering-filtered sent set instead.
    pub fn start(
        schema: Schema,
        config: ServiceConfig,
        fed: FederationConfig,
    ) -> std::io::Result<FederatedNode> {
        let max_frame_bytes = config.max_frame_bytes;
        let io_timeout = config.io_timeout;
        let shipper = config
            .data_dir
            .clone()
            .map(|dir| WalShipper::new(dir, config.shards));
        let service = PubSubService::open(schema, config).map_err(|e| {
            let kind = match &e {
                crate::ServiceError::Storage { kind, .. } => *kind,
                _ => std::io::ErrorKind::InvalidData,
            };
            std::io::Error::new(kind, e.to_string())
        })?;
        let neighbors: Vec<BrokerId> = fed.peers.iter().map(|&(id, _)| id).collect();
        let links: Vec<Arc<LinkSession>> = fed
            .peers
            .iter()
            .map(|&(id, addr)| {
                Arc::new(LinkSession::new(id, fed.node_id.0 as u64, addr, io_timeout))
            })
            .collect();
        let mut mesh = MeshState::new(fed.node_id, neighbors, fed.policy, fed.seed);
        // Seed the mesh from WAL/snapshot recovery, deterministically by
        // id. Plans are discarded — no link is up yet; the first connect
        // on each link resyncs the covering-filtered sent set instead.
        // The decision counters are kept so tables and counters agree.
        let mut recovered: Vec<(SubscriptionId, Subscription)> = service
            .snapshot()
            .into_iter()
            .map(|(id, (sub, _covered))| (id, sub))
            .collect();
        recovered.sort_by_key(|(id, _)| id.0);
        let counters = FedCounters::default();
        for (id, sub) in recovered {
            let outcome = mesh.install(None, id, sub);
            let forwards: u64 = outcome.plans.iter().map(|p| p.forward.len() as u64).sum();
            counters
                .subs_forwarded
                .fetch_add(forwards, Ordering::Relaxed);
            counters
                .subs_suppressed
                .fetch_add(outcome.suppressed, Ordering::Relaxed);
        }
        let shared = Arc::new(NodeShared {
            counters,
            reactor: Arc::new(ReactorCounters::default()),
            shipper,
            node_id: fed.node_id,
            shutdown: AtomicBool::new(false),
            fail: FailPoint::new(fed.fail_after_ops),
            conns: Mutex::new(Vec::new()),
            max_frame_bytes,
            links,
            service: Arc::new(service),
            mesh: Mutex::new(mesh),
        });

        let listener = TcpListener::bind(&fed.listen as &str)?;
        let addr = listener.local_addr()?;
        let mut threads = Vec::new();
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("psc-fed-accept-{}", fed.node_id))
                .spawn(move || accept_loop(listener, accept_shared))?,
        );
        if let Some(interval) = fed.heartbeat_interval {
            let beat_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("psc-fed-heartbeat-{}", fed.node_id))
                    .spawn(move || heartbeat_loop(beat_shared, interval))?,
            );
        }
        Ok(FederatedNode {
            shared,
            addr,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's overlay id.
    pub fn node_id(&self) -> BrokerId {
        self.shared.node_id
    }

    /// The wrapped service — handy for in-process assertions.
    pub fn service(&self) -> &Arc<PubSubService> {
        &self.shared.service
    }

    /// A snapshot of the mesh counters.
    pub fn federation_stats(&self) -> FederationStats {
        self.shared.federation_stats()
    }

    /// Re-points the link to `peer` (it restarted on a new address) and
    /// tears its session down so the next use reconnects and resyncs.
    pub fn set_peer_addr(&self, peer: BrokerId, addr: SocketAddr) {
        if let Some(session) = self.shared.link_to(peer) {
            session.set_addr(addr);
        }
    }

    /// Forces every link up now (connect + resync + heartbeat), instead
    /// of waiting for the heartbeat thread or the next use. Returns the
    /// number of live links after the pass.
    pub fn resync(&self) -> usize {
        let mut live = 0;
        for session in &self.shared.links {
            let beat = self.shared.establish(session).and_then(|()| {
                session.call(&BrokerRequest::Heartbeat {
                    node_id: self.shared.node_id.0 as u64,
                })
            });
            if beat.is_ok() {
                live += 1;
            }
        }
        live
    }

    /// The forwarded and suppressed tables for the link to `peer`, with
    /// subscription bodies — the covered-forwarding invariant check in
    /// the property tests reads both.
    #[allow(clippy::type_complexity)]
    pub fn link_tables(
        &self,
        peer: BrokerId,
    ) -> (
        Vec<(SubscriptionId, Subscription)>,
        Vec<(SubscriptionId, Subscription)>,
    ) {
        let m = self.shared.mesh.lock().expect("mesh lock");
        (m.forwarded_entries(peer), m.suppressed_entries(peer))
    }

    /// Stops serving: flags shutdown, wakes the accept loop, disconnects
    /// every link, and joins all threads. Idempotent.
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        for session in &self.shared.links {
            session.disconnect();
        }
        let mut threads = self.threads.lock().expect("threads lock");
        for t in threads.drain(..) {
            let _ = t.join();
        }
        let mut conns = self.shared.conns.lock().expect("conns lock");
        for t in conns.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for FederatedNode {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<NodeShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("psc-fed-conn".into())
            .spawn(move || serve_connection(&conn_shared, stream));
        if let Ok(handle) = handle {
            let mut conns = shared.conns.lock().expect("conns lock");
            // Reap finished handlers so long-lived nodes don't grow the
            // handle list without bound.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
}

fn heartbeat_loop(shared: Arc<NodeShared>, interval: Duration) {
    let tick = Duration::from_millis(25).min(interval);
    let mut elapsed = interval; // fire immediately on start
    while !shared.shutdown.load(Ordering::SeqCst) {
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            for session in &shared.links {
                let _ = shared.establish(session).and_then(|()| {
                    session.call(&BrokerRequest::Heartbeat {
                        node_id: shared.node_id.0 as u64,
                    })
                });
            }
        }
        std::thread::sleep(tick);
        elapsed += tick;
    }
}

fn serve_connection(shared: &Arc<NodeShared>, stream: TcpStream) {
    shared.reactor.record_accepted();
    let _ = run_connection(shared, stream);
    shared.reactor.record_closed();
}

fn run_connection(shared: &Arc<NodeShared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_READ_TIMEOUT))?;
    // Sniff the first byte: the binary preamble's magic never appears in
    // JSON, so one peek routes the connection to the right protocol.
    let mut first = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.peek(&mut first) {
            Ok(0) => return Ok(()),
            Ok(_) => break,
            Err(e) if would_block(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    if first[0] == BINARY_PREAMBLE[0] {
        serve_binary(shared, stream)
    } else {
        serve_json(shared, stream)
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads some bytes, treating poll timeouts as empty reads so the loop
/// can observe shutdown. `Ok(0)` means the peer closed.
fn poll_read(
    shared: &NodeShared,
    stream: &mut TcpStream,
    buf: &mut [u8],
) -> std::io::Result<Option<usize>> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Ok(None);
    }
    match stream.read(buf) {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(e) if would_block(&e) => Ok(Some(0)),
        Err(e) => Err(e),
    }
}

fn serve_binary(shared: &Arc<NodeShared>, mut stream: TcpStream) -> std::io::Result<()> {
    // Consume the 5-byte preamble (the first byte was only peeked).
    let mut preamble = [0u8; BINARY_PREAMBLE.len()];
    let mut have = 0;
    while have < preamble.len() {
        match poll_read(shared, &mut stream, &mut preamble[have..])? {
            None => return Ok(()),
            Some(n) => have += n,
        }
    }
    if preamble != BINARY_PREAMBLE {
        return Ok(()); // not our protocol; drop quietly
    }
    let mut ready = Vec::with_capacity(8);
    wire::encode_ready_frame(&mut ready);
    stream.write_all(&ready)?;

    let mut framer = BinaryFramer::new(shared.max_frame_bytes);
    let mut peer: Option<BrokerId> = None;
    let mut out = Vec::with_capacity(256);
    let mut buf = vec![0u8; 16 * 1024];
    loop {
        while framer.has_frames() {
            let started = Instant::now();
            let payload = match framer.next_frame().expect("frame ready") {
                BinFrame::Frame(payload) => payload.to_vec(),
                BinFrame::TooLong { len } => {
                    out.clear();
                    encode_error_frame(
                        &mut out,
                        &format!("binary frame of {len} bytes exceeds the cap"),
                    );
                    stream.write_all(&out)?;
                    continue;
                }
            };
            if payload
                .first()
                .copied()
                .is_some_and(BrokerRequest::is_broker_opcode)
            {
                match handle_broker_frame(shared, &mut peer, &payload) {
                    BrokerReply::Respond(response) => {
                        shared.reactor.record_request();
                        out.clear();
                        response.encode_binary(&mut out);
                        stream.write_all(&out)?;
                    }
                    BrokerReply::Fail(message) => {
                        out.clear();
                        encode_error_frame(&mut out, &message);
                        stream.write_all(&out)?;
                    }
                    BrokerReply::Crash => return Ok(()),
                }
                continue;
            }
            let decoded = wire::decode_binary_request(&payload, shared.service.schema());
            shared.reactor.record_decode_binary(started.elapsed());
            let (response, publish_started) = match decoded {
                Ok(BinRequest::Publish(p)) => {
                    let dto = PublicationDto::from_publication(&p);
                    let response = match shared.route_publication(None, &p, &dto) {
                        Ok(ids) => Response::Matched(ids),
                        Err(message) => Response::Error(message),
                    };
                    (response, Some(started))
                }
                Ok(BinRequest::Plain(request)) => (dispatch_client(shared, request), None),
                Err(e) => (Response::Error(e.to_string()), None),
            };
            shared.reactor.record_request();
            let deliver_started = Instant::now();
            out.clear();
            response.encode_binary(&mut out);
            stream.write_all(&out)?;
            shared.reactor.record_deliver(deliver_started.elapsed());
            if let Some(started) = publish_started {
                shared.reactor.record_end_to_end(started.elapsed());
            }
        }
        match poll_read(shared, &mut stream, &mut buf)? {
            None => return Ok(()),
            Some(n) => framer.feed(&buf[..n]),
        }
    }
}

fn serve_json(shared: &Arc<NodeShared>, mut stream: TcpStream) -> std::io::Result<()> {
    let mut framer = LineFramer::new(shared.max_frame_bytes);
    let mut out = Vec::with_capacity(256);
    let mut buf = vec![0u8; 16 * 1024];
    loop {
        while let Some(frame) = framer.next_frame() {
            let started = Instant::now();
            let line = match frame {
                Frame::Line(line) => line,
                Frame::TooLong { len } => {
                    out.clear();
                    Response::Error(format!("request line of {len} bytes exceeds the cap"))
                        .encode_json_into(&mut out);
                    stream.write_all(&out)?;
                    continue;
                }
            };
            if line.is_empty() {
                continue;
            }
            let decoded = Request::decode(&line);
            shared.reactor.record_decode(started.elapsed());
            let is_publish = matches!(decoded, Ok(Request::Publish(_)));
            let response = match decoded {
                Ok(request) => dispatch_client(shared, request),
                Err(e) => Response::Error(e.to_string()),
            };
            shared.reactor.record_request();
            let deliver_started = Instant::now();
            out.clear();
            response.encode_json_into(&mut out);
            stream.write_all(&out)?;
            shared.reactor.record_deliver(deliver_started.elapsed());
            if is_publish {
                shared.reactor.record_end_to_end(started.elapsed());
            }
        }
        match poll_read(shared, &mut stream, &mut buf)? {
            None => return Ok(()),
            Some(n) => framer.feed(&buf[..n]),
        }
    }
}

fn encode_error_frame(out: &mut Vec<u8>, message: &str) {
    Response::Error(message.to_string()).encode_binary(out);
}

/// Handles one client request on a federated node: subscriptions and
/// publications additionally ride the mesh; everything else behaves as
/// on a plain server.
fn dispatch_client(shared: &Arc<NodeShared>, request: Request) -> Response {
    match request {
        Request::Subscribe(dto) => match dto.into_subscription(shared.service.schema()) {
            Ok((id, sub)) => match shared.install_subscription(None, id, sub) {
                Ok(()) => Response::Queued,
                Err(message) => Response::Error(message),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Unsubscribe(id) => {
            Response::Removed(shared.remove_subscription(None, SubscriptionId(id)))
        }
        Request::Publish(dto) => match dto.clone().into_publication(shared.service.schema()) {
            Ok(p) => match shared.route_publication(None, &p, &dto) {
                Ok(ids) => Response::Matched(ids),
                Err(message) => Response::Error(message),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Stats => {
            let mut response =
                crate::server::dispatch(Request::Stats, &shared.service, Some(&shared.reactor));
            if let Response::Stats { federation, .. } = &mut response {
                *federation = Some(shared.federation_stats());
            }
            response
        }
        other => crate::server::dispatch(other, &shared.service, Some(&shared.reactor)),
    }
}

fn handle_broker_frame(
    shared: &Arc<NodeShared>,
    peer: &mut Option<BrokerId>,
    payload: &[u8],
) -> BrokerReply {
    let request = match BrokerRequest::decode_binary(payload) {
        Ok(request) => request,
        Err(e) => return BrokerReply::Fail(wire_error_text(&e)),
    };
    match request {
        BrokerRequest::Hello { node_id } => {
            *peer = Some(BrokerId(node_id as usize));
            BrokerReply::Respond(BrokerResponse::Hello {
                node_id: shared.node_id.0 as u64,
                shards: shared.service.shard_count() as u64,
            })
        }
        BrokerRequest::Heartbeat { .. } => BrokerReply::Respond(BrokerResponse::Heartbeat {
            node_id: shared.node_id.0 as u64,
        }),
        BrokerRequest::Forward(dto) => {
            if !shared.fail.check(&shared.shutdown) {
                return BrokerReply::Crash;
            }
            let (id, sub) = match dto.into_subscription(shared.service.schema()) {
                Ok(pair) => pair,
                Err(e) => return BrokerReply::Fail(wire_error_text(&e)),
            };
            match shared.install_subscription(*peer, id, sub) {
                Ok(()) => {
                    if !shared.fail.check(&shared.shutdown) {
                        return BrokerReply::Crash;
                    }
                    BrokerReply::Respond(BrokerResponse::Forwarded)
                }
                Err(message) => BrokerReply::Fail(message),
            }
        }
        BrokerRequest::Retract(id) => {
            if !shared.fail.check(&shared.shutdown) {
                return BrokerReply::Crash;
            }
            let existed = shared.remove_subscription(*peer, SubscriptionId(id));
            if !shared.fail.check(&shared.shutdown) {
                return BrokerReply::Crash;
            }
            BrokerReply::Respond(BrokerResponse::Retracted(existed))
        }
        BrokerRequest::Publish(dto) => {
            if !shared.fail.check(&shared.shutdown) {
                return BrokerReply::Crash;
            }
            let p = match dto.clone().into_publication(shared.service.schema()) {
                Ok(p) => p,
                Err(e) => return BrokerReply::Fail(wire_error_text(&e)),
            };
            match shared.route_publication(*peer, &p, &dto) {
                Ok(ids) => BrokerReply::Respond(BrokerResponse::Matched(ids)),
                Err(message) => BrokerReply::Fail(message),
            }
        }
        BrokerRequest::WalList => match &shared.shipper {
            None => BrokerReply::Fail("node is not durable; no WAL to ship".into()),
            Some(shipper) => match shipper.list() {
                Ok(shards) => BrokerReply::Respond(BrokerResponse::WalList {
                    epoch: shipper.epoch(),
                    shards,
                }),
                Err(e) => BrokerReply::Fail(format!("WAL list failed: {e}")),
            },
        },
        BrokerRequest::WalFetch {
            shard,
            segment,
            offset,
            max_len,
            prefix_crc,
        } => {
            if !shared.fail.check(&shared.shutdown) {
                return BrokerReply::Crash;
            }
            match &shared.shipper {
                None => BrokerReply::Fail("node is not durable; no WAL to ship".into()),
                Some(shipper) => match shipper.fetch(shard, segment, offset, max_len, prefix_crc) {
                    Ok(Some((bytes, newly_completed))) => {
                        shared
                            .counters
                            .segments_shipped
                            .fetch_add(newly_completed, Ordering::Relaxed);
                        BrokerReply::Respond(BrokerResponse::WalChunk {
                            prefix_ok: true,
                            bytes,
                        })
                    }
                    // The fetcher's local prefix diverged (torn tail
                    // mirrored before a restart's truncation): tell it
                    // to refetch from zero.
                    Ok(None) => BrokerReply::Respond(BrokerResponse::WalChunk {
                        prefix_ok: false,
                        bytes: Vec::new(),
                    }),
                    Err(e) => BrokerReply::Fail(format!("WAL fetch failed: {e}")),
                },
            }
        }
    }
}

fn wire_error_text(e: &WireError) -> String {
    e.to_string()
}
