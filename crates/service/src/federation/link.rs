//! Outbound broker sessions — one per overlay link.
//!
//! A [`LinkSession`] owns the dialing side of one mesh edge: a binary
//! connection (same preamble/Ready handshake as a client, see
//! [`crate::wire`]) over which broker opcodes run as synchronous round
//! trips. The whole round trip holds the session's mutex, so requests
//! on one link serialize; on a tree overlay the hop-by-hop forwarding
//! direction always points away from the originating node, so these
//! per-link locks cannot form a cycle.
//!
//! Failure model: any I/O or protocol error tears the connection down
//! (`connected` drops to `false`) and surfaces to the caller. The node
//! re-establishes lazily on the next use — and a fresh session runs the
//! caller's *resync* (re-forwarding the covering-filtered sent set)
//! inside [`LinkSession::ensure`], under the same connection lock that
//! guards round trips, so a restarted peer rebuilds its routing tables
//! before any other thread's traffic can ride the link.

use super::proto::{BrokerRequest, BrokerResponse};
use psc_broker::BrokerId;
use psc_model::codec::{BinFrame, BinaryFramer, ByteReader, BINARY_PREAMBLE};
use psc_model::wire::WireError;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Largest broker response frame a link accepts (WAL chunks dominate;
/// the cap leaves generous headroom over [`super::proto::MAX_WAL_CHUNK_BYTES`]).
const MAX_LINK_FRAME_BYTES: usize = 1 << 20;

/// Errors surfaced by broker-link round trips.
#[derive(Debug)]
pub enum LinkError {
    /// Connecting, reading, or writing the session socket failed.
    Io(std::io::Error),
    /// The peer's bytes did not decode as a broker response.
    Wire(WireError),
    /// The peer answered with an error frame — e.g. an old,
    /// pre-federation node rejecting a broker opcode it does not know.
    Remote(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Io(e) => write!(f, "link i/o error: {e}"),
            LinkError::Wire(e) => write!(f, "link protocol error: {e}"),
            LinkError::Remote(message) => write!(f, "peer error: {message}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<std::io::Error> for LinkError {
    fn from(e: std::io::Error) -> Self {
        LinkError::Io(e)
    }
}

impl From<WireError> for LinkError {
    fn from(e: WireError) -> Self {
        LinkError::Wire(e)
    }
}

struct Conn {
    stream: TcpStream,
    framer: BinaryFramer,
}

/// The dialing end of one overlay link.
pub(crate) struct LinkSession {
    peer: BrokerId,
    node_id: u64,
    addr: Mutex<SocketAddr>,
    io_timeout: Option<Duration>,
    conn: Mutex<Option<Conn>>,
    connected: AtomicBool,
}

impl LinkSession {
    pub(crate) fn new(
        peer: BrokerId,
        node_id: u64,
        addr: SocketAddr,
        io_timeout: Option<Duration>,
    ) -> LinkSession {
        LinkSession {
            peer,
            node_id,
            addr: Mutex::new(addr),
            io_timeout,
            conn: Mutex::new(None),
            connected: AtomicBool::new(false),
        }
    }

    /// The peer this link dials.
    pub(crate) fn peer(&self) -> BrokerId {
        self.peer
    }

    /// Whether the session is currently established.
    pub(crate) fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    /// Re-points the link at a new address (a peer restarted elsewhere)
    /// and tears down any current session so the next use reconnects.
    pub(crate) fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().expect("link addr lock") = addr;
        self.disconnect();
    }

    /// Drops the current session, if any.
    pub(crate) fn disconnect(&self) {
        *self.conn.lock().expect("link conn lock") = None;
        self.connected.store(false, Ordering::Relaxed);
    }

    /// Establishes the session if it is down: TCP connect, binary
    /// preamble, Ready frame, broker hello — then the caller's resync
    /// requests, still under the connection lock, so no concurrent
    /// [`LinkSession::call`] can interleave traffic ahead of the resync.
    /// The fresh session only becomes visible (and callable) once every
    /// resync round trip succeeded; a restarted peer therefore never
    /// sees a plan or publish before its routing tables are rebuilt.
    ///
    /// `resync` is invoked only when this call created a fresh session;
    /// it returns the requests to replay (the covering-filtered sent
    /// set for an overlay link, empty for a plain WAL follower).
    pub(crate) fn ensure(
        &self,
        resync: impl FnOnce() -> Vec<BrokerRequest>,
    ) -> Result<(), LinkError> {
        let mut guard = self.conn.lock().expect("link conn lock");
        if guard.is_some() {
            return Ok(());
        }
        let addr = *self.addr.lock().expect("link addr lock");
        let mut stream = match self.io_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        stream.write_all(&BINARY_PREAMBLE)?;
        let mut framer = BinaryFramer::new(MAX_LINK_FRAME_BYTES);
        // Wait for the server's Ready frame, exactly like a binary
        // client connect.
        loop {
            if framer.has_frames() {
                match framer.next_frame().expect("frame ready") {
                    BinFrame::Frame(payload) if crate::wire::is_ready_payload(payload) => break,
                    _ => {
                        return Err(LinkError::Wire(WireError::Shape(
                            "peer did not acknowledge the binary protocol".into(),
                        )))
                    }
                }
            }
            let mut buf = [0u8; 1024];
            let n = read_chunk(&mut stream, &mut buf)?;
            framer.feed(&buf[..n]);
        }
        let mut conn = Conn { stream, framer };
        let hello = round_trip(
            &mut conn,
            &BrokerRequest::Hello {
                node_id: self.node_id,
            },
        )?;
        match hello {
            BrokerResponse::Hello { .. } => {}
            other => {
                return Err(LinkError::Wire(WireError::Shape(format!(
                    "broker hello answered with unexpected response: {other:?}"
                ))))
            }
        }
        for request in resync() {
            round_trip(&mut conn, &request)?;
        }
        *guard = Some(conn);
        self.connected.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// One synchronous broker round trip. The session must be
    /// established ([`LinkSession::ensure`]); any failure tears it down
    /// so the next use reconnects and resyncs.
    pub(crate) fn call(&self, request: &BrokerRequest) -> Result<BrokerResponse, LinkError> {
        let mut guard = self.conn.lock().expect("link conn lock");
        let conn = guard.as_mut().ok_or_else(|| {
            LinkError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "broker link is not established",
            ))
        })?;
        match round_trip(conn, request) {
            Ok(response) => Ok(response),
            Err(e) => {
                *guard = None;
                self.connected.store(false, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

fn read_chunk(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    let n = stream.read(buf).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for the peer broker's response",
            )
        } else {
            e
        }
    })?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer broker closed the connection",
        ));
    }
    Ok(n)
}

fn round_trip(conn: &mut Conn, request: &BrokerRequest) -> Result<BrokerResponse, LinkError> {
    let mut out = Vec::with_capacity(64);
    request.encode_binary(&mut out);
    conn.stream.write_all(&out)?;
    loop {
        if conn.framer.has_frames() {
            return match conn.framer.next_frame().expect("frame ready") {
                BinFrame::Frame(payload) => decode_reply(payload),
                BinFrame::TooLong { len } => Err(LinkError::Wire(WireError::Shape(format!(
                    "broker response frame of {len} bytes exceeds the link cap"
                )))),
            };
        }
        let mut buf = [0u8; 16 * 1024];
        let n = read_chunk(&mut conn.stream, &mut buf)?;
        conn.framer.feed(&buf[..n]);
    }
}

/// Decodes one reply frame: a `0xFF` error frame (the shape an old node
/// answers unknown opcodes with) becomes [`LinkError::Remote`]; anything
/// else must be a broker response.
fn decode_reply(payload: &[u8]) -> Result<BrokerResponse, LinkError> {
    if payload.first() == Some(&0xFF) {
        let mut r = ByteReader::new(&payload[1..]);
        let message = r
            .str()
            .map_err(|e| LinkError::Wire(WireError::Shape(e.to_string())))?;
        return Err(LinkError::Remote(message));
    }
    Ok(BrokerResponse::decode_binary(payload)?)
}
