//! The broker-to-broker wire protocol — binary-only opcodes layered on
//! the client protocol's framing.
//!
//! A broker session starts exactly like a binary client session (the
//! 5-byte preamble, the server's Ready frame — see [`crate::wire`]),
//! then speaks request opcodes `0x10`–`0x16` instead of the client's
//! `0x01`–`0x06`. Keeping one framing layer means an old, pre-federation
//! node answers a broker opcode with an ordinary `0xFF` error frame
//! ("unknown binary request opcode") instead of desyncing — the
//! version-skew story for mixed meshes falls out of the existing strict
//! decoder.
//!
//! | Opcode | Request | Payload after the opcode byte |
//! |---|---|---|
//! | `0x10` | broker hello | `node_id: u64` |
//! | `0x11` | forward subscription | `id: u64`, `count: u32`, `count` × (`lo: i64`, `hi: i64`) |
//! | `0x12` | retract subscription | `id: u64` |
//! | `0x13` | remote publish | `count: u32`, `count` × `value: i64` |
//! | `0x14` | WAL list | — |
//! | `0x15` | WAL fetch | `shard: u32`, `segment: u64`, `offset: u64`, `max_len: u32`, `prefix_crc: u32` |
//! | `0x16` | heartbeat | `node_id: u64` |
//!
//! | Opcode | Response | Payload after the opcode byte |
//! |---|---|---|
//! | `0x90` | broker hello | `node_id: u64`, `shards: u64` |
//! | `0x91` | forwarded | — |
//! | `0x92` | retracted | `existed: u8` |
//! | `0x93` | matched | `count: u32`, `count` × `id: u64` (ascending) |
//! | `0x94` | WAL list | `epoch: u64`, `shards: u32`, per shard: `shard: u32`, `manifest: bytes`, `count: u32`, `count` × (`segment: u64`, `len: u64`) |
//! | `0x95` | WAL chunk | `prefix_ok: u8`, `bytes` (`u32` length + raw bytes) |
//! | `0x96` | heartbeat | `node_id: u64` |
//! | `0xFF` | error | `message: str` (shared with the client protocol) |
//!
//! Subscriptions ride as raw `(lo, hi)` range lists (the
//! [`SubscriptionDto`] shape) and are validated against the receiving
//! node's schema at dispatch, mirroring the client subscribe path.

use psc_model::codec::{self, ByteReader, CodecError};
use psc_model::wire::{PublicationDto, SubscriptionDto, WireError};

/// Broker request/response opcodes (client opcodes live in
/// [`crate::wire`]).
pub(crate) mod bop {
    /// Broker session handshake.
    pub const HELLO: u8 = 0x10;
    /// Forward a subscription over this link.
    pub const FORWARD: u8 = 0x11;
    /// Retract a previously forwarded subscription.
    pub const RETRACT: u8 = 0x12;
    /// Route a publication over this link.
    pub const PUBLISH: u8 = 0x13;
    /// List WAL segments available for shipping.
    pub const WAL_LIST: u8 = 0x14;
    /// Fetch a byte range of one WAL segment.
    pub const WAL_FETCH: u8 = 0x15;
    /// Liveness probe.
    pub const HEARTBEAT: u8 = 0x16;

    /// Response to [`HELLO`].
    pub const R_HELLO: u8 = 0x90;
    /// Response to [`FORWARD`].
    pub const R_FORWARDED: u8 = 0x91;
    /// Response to [`RETRACT`].
    pub const R_RETRACTED: u8 = 0x92;
    /// Response to [`PUBLISH`].
    pub const R_MATCHED: u8 = 0x93;
    /// Response to [`WAL_LIST`].
    pub const R_WAL_LIST: u8 = 0x94;
    /// Response to [`WAL_FETCH`].
    pub const R_WAL_CHUNK: u8 = 0x95;
    /// Response to [`HEARTBEAT`].
    pub const R_HEARTBEAT: u8 = 0x96;
}

/// Largest WAL byte range one `WAL_FETCH` may request — keeps a single
/// shipping response bounded so follower and leader never frame
/// megabyte-scale payloads in one allocation burst.
pub const MAX_WAL_CHUNK_BYTES: u32 = 256 * 1024;

/// One broker-to-broker request.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerRequest {
    /// Opens a broker session; `node_id` identifies the dialing node.
    Hello {
        /// Overlay id of the dialing broker.
        node_id: u64,
    },
    /// Forwards a subscription over this link (covering already applied
    /// by the sender).
    Forward(SubscriptionDto),
    /// Retracts a previously forwarded subscription by id.
    Retract(u64),
    /// Routes a publication over this link; the receiver answers with
    /// every subscriber id it (or brokers beyond it) matched.
    Publish(PublicationDto),
    /// Asks for the shippable WAL state: per shard, the manifest bytes
    /// and each live segment's id and current length.
    WalList,
    /// Fetches up to `max_len` bytes of one WAL segment from `offset`.
    WalFetch {
        /// Shard index on the serving node.
        shard: u32,
        /// Segment id (the `NNNNNN` in `wal.NNNNNN.log`).
        segment: u64,
        /// Byte offset to read from.
        offset: u64,
        /// Read cap, clamped to [`MAX_WAL_CHUNK_BYTES`] by the server.
        max_len: u32,
        /// IEEE CRC-32 of the fetcher's local copy of the segment's
        /// first `offset` bytes. The server verifies it against its own
        /// prefix and answers `prefix_ok: false` on mismatch — the
        /// divergence signal after a leader restart truncated a torn
        /// tail the fetcher had already mirrored.
        prefix_crc: u32,
    },
    /// Liveness probe carrying the prober's node id.
    Heartbeat {
        /// Overlay id of the probing broker.
        node_id: u64,
    },
}

/// One broker-to-broker response. The error case rides the client
/// protocol's `0xFF` frame and surfaces as
/// [`LinkError::Remote`](super::LinkError).
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerResponse {
    /// Session accepted.
    Hello {
        /// Overlay id of the answering broker.
        node_id: u64,
        /// Shard count of the answering node's service.
        shards: u64,
    },
    /// Forward applied (idempotent for already-seen ids).
    Forwarded,
    /// Retract applied; `true` when the id was installed here.
    Retracted(bool),
    /// Subscriber ids matched at or beyond the answering node.
    Matched(Vec<u64>),
    /// Shippable WAL state, one entry per shard. `epoch` identifies the
    /// serving process's boot: a follower that sees it change knows the
    /// leader restarted — and restart recovery may have truncated a torn
    /// live-segment tail the follower mirrored — so it must re-verify
    /// every mirrored segment prefix, even ones whose lengths match.
    WalList {
        /// Boot epoch of the serving process (fresh per start).
        epoch: u64,
        /// Per-shard shippable state.
        shards: Vec<ShardSegments>,
    },
    /// Raw WAL bytes (possibly empty when the offset is at the end).
    /// `prefix_ok: false` means the fetcher's `prefix_crc` did not match
    /// the server's segment prefix (or the offset lies beyond the
    /// segment): the fetcher's local copy diverged and must be refetched
    /// from zero; `bytes` is empty in that case.
    WalChunk {
        /// Whether the fetcher's declared prefix matches the server's.
        prefix_ok: bool,
        /// The fetched bytes (empty on mismatch or end-of-segment).
        bytes: Vec<u8>,
    },
    /// Liveness answer.
    Heartbeat {
        /// Overlay id of the answering broker.
        node_id: u64,
    },
}

/// Shippable WAL state of one shard, as carried by a WAL-list response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSegments {
    /// Shard index on the serving node.
    pub shard: u32,
    /// Verbatim `manifest.bin` bytes (magic + framed oldest-live id).
    pub manifest: Vec<u8>,
    /// Live segments, ascending by id.
    pub segments: Vec<SegmentInfo>,
}

/// One live WAL segment's shipping coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment id (the `NNNNNN` in `wal.NNNNNN.log`).
    pub id: u64,
    /// Current byte length on the serving node.
    pub len: u64,
}

fn codec_err(e: CodecError) -> WireError {
    WireError::Shape(e.to_string())
}

impl BrokerRequest {
    /// Appends this request as one binary frame (length header
    /// included) to `out`.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::write_frame(out, |p| match self {
            BrokerRequest::Hello { node_id } => {
                codec::put_u8(p, bop::HELLO);
                codec::put_u64(p, *node_id);
            }
            BrokerRequest::Forward(dto) => {
                codec::put_u8(p, bop::FORWARD);
                codec::put_u64(p, dto.id);
                codec::put_u32(p, dto.ranges.len() as u32);
                for (lo, hi) in &dto.ranges {
                    codec::put_i64(p, *lo);
                    codec::put_i64(p, *hi);
                }
            }
            BrokerRequest::Retract(id) => {
                codec::put_u8(p, bop::RETRACT);
                codec::put_u64(p, *id);
            }
            BrokerRequest::Publish(dto) => {
                codec::put_u8(p, bop::PUBLISH);
                codec::put_u32(p, dto.values.len() as u32);
                for v in &dto.values {
                    codec::put_i64(p, *v);
                }
            }
            BrokerRequest::WalList => codec::put_u8(p, bop::WAL_LIST),
            BrokerRequest::WalFetch {
                shard,
                segment,
                offset,
                max_len,
                prefix_crc,
            } => {
                codec::put_u8(p, bop::WAL_FETCH);
                codec::put_u32(p, *shard);
                codec::put_u64(p, *segment);
                codec::put_u64(p, *offset);
                codec::put_u32(p, *max_len);
                codec::put_u32(p, *prefix_crc);
            }
            BrokerRequest::Heartbeat { node_id } => {
                codec::put_u8(p, bop::HEARTBEAT);
                codec::put_u64(p, *node_id);
            }
        });
    }

    /// Decodes one binary frame payload, strict about trailing bytes
    /// like the client decoder.
    pub fn decode_binary(payload: &[u8]) -> Result<BrokerRequest, WireError> {
        let mut r = ByteReader::new(payload);
        let op = r.u8().map_err(codec_err)?;
        let request = match op {
            bop::HELLO => BrokerRequest::Hello {
                node_id: r.u64().map_err(codec_err)?,
            },
            bop::FORWARD => {
                let id = r.u64().map_err(codec_err)?;
                let count = r.u32().map_err(codec_err)? as usize;
                // Same allocation guard as the client decoder: a range
                // costs 16 encoded bytes.
                if count > r.remaining() / 16 {
                    return Err(WireError::Shape(
                        "forward range count exceeds payload size".into(),
                    ));
                }
                let mut ranges = Vec::with_capacity(count);
                for _ in 0..count {
                    let lo = r.i64().map_err(codec_err)?;
                    let hi = r.i64().map_err(codec_err)?;
                    ranges.push((lo, hi));
                }
                BrokerRequest::Forward(SubscriptionDto { id, ranges })
            }
            bop::RETRACT => BrokerRequest::Retract(r.u64().map_err(codec_err)?),
            bop::PUBLISH => {
                let count = r.u32().map_err(codec_err)? as usize;
                if count > r.remaining() / 8 {
                    return Err(WireError::Shape(
                        "publish value count exceeds payload size".into(),
                    ));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(r.i64().map_err(codec_err)?);
                }
                BrokerRequest::Publish(PublicationDto { values })
            }
            bop::WAL_LIST => BrokerRequest::WalList,
            bop::WAL_FETCH => BrokerRequest::WalFetch {
                shard: r.u32().map_err(codec_err)?,
                segment: r.u64().map_err(codec_err)?,
                offset: r.u64().map_err(codec_err)?,
                max_len: r.u32().map_err(codec_err)?,
                prefix_crc: r.u32().map_err(codec_err)?,
            },
            bop::HEARTBEAT => BrokerRequest::Heartbeat {
                node_id: r.u64().map_err(codec_err)?,
            },
            other => {
                return Err(WireError::Shape(format!(
                    "unknown binary broker request opcode 0x{other:02X}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(WireError::Shape(format!(
                "binary broker request has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(request)
    }

    /// Whether `first_byte` is in the broker-opcode range — the server's
    /// demultiplexing test between client and broker frames.
    pub(crate) fn is_broker_opcode(first_byte: u8) -> bool {
        (bop::HELLO..=bop::HEARTBEAT).contains(&first_byte)
    }
}

impl BrokerResponse {
    /// Appends this response as one binary frame (length header
    /// included) to `out`.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::write_frame(out, |p| match self {
            BrokerResponse::Hello { node_id, shards } => {
                codec::put_u8(p, bop::R_HELLO);
                codec::put_u64(p, *node_id);
                codec::put_u64(p, *shards);
            }
            BrokerResponse::Forwarded => codec::put_u8(p, bop::R_FORWARDED),
            BrokerResponse::Retracted(existed) => {
                codec::put_u8(p, bop::R_RETRACTED);
                codec::put_u8(p, u8::from(*existed));
            }
            BrokerResponse::Matched(ids) => {
                codec::put_u8(p, bop::R_MATCHED);
                codec::put_u32(p, ids.len() as u32);
                for &id in ids {
                    codec::put_u64(p, id);
                }
            }
            BrokerResponse::WalList { epoch, shards } => {
                codec::put_u8(p, bop::R_WAL_LIST);
                codec::put_u64(p, *epoch);
                codec::put_u32(p, shards.len() as u32);
                for s in shards {
                    codec::put_u32(p, s.shard);
                    codec::put_bytes(p, &s.manifest);
                    codec::put_u32(p, s.segments.len() as u32);
                    for seg in &s.segments {
                        codec::put_u64(p, seg.id);
                        codec::put_u64(p, seg.len);
                    }
                }
            }
            BrokerResponse::WalChunk { prefix_ok, bytes } => {
                codec::put_u8(p, bop::R_WAL_CHUNK);
                codec::put_u8(p, u8::from(*prefix_ok));
                codec::put_bytes(p, bytes);
            }
            BrokerResponse::Heartbeat { node_id } => {
                codec::put_u8(p, bop::R_HEARTBEAT);
                codec::put_u64(p, *node_id);
            }
        });
    }

    /// Decodes one binary frame payload. A `0xFF` client error frame is
    /// not handled here — the link layer surfaces it as a remote error
    /// before calling this.
    pub fn decode_binary(payload: &[u8]) -> Result<BrokerResponse, WireError> {
        let mut r = ByteReader::new(payload);
        let op = r.u8().map_err(codec_err)?;
        let response = match op {
            bop::R_HELLO => BrokerResponse::Hello {
                node_id: r.u64().map_err(codec_err)?,
                shards: r.u64().map_err(codec_err)?,
            },
            bop::R_FORWARDED => BrokerResponse::Forwarded,
            bop::R_RETRACTED => BrokerResponse::Retracted(r.u8().map_err(codec_err)? != 0),
            bop::R_MATCHED => {
                let count = r.u32().map_err(codec_err)? as usize;
                if count > r.remaining() / 8 {
                    return Err(WireError::Shape(
                        "matched id count exceeds payload size".into(),
                    ));
                }
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(r.u64().map_err(codec_err)?);
                }
                BrokerResponse::Matched(ids)
            }
            bop::R_WAL_LIST => {
                let epoch = r.u64().map_err(codec_err)?;
                let count = r.u32().map_err(codec_err)? as usize;
                // A shard entry costs at least 12 encoded bytes (shard,
                // manifest length, segment count).
                if count > r.remaining() / 12 {
                    return Err(WireError::Shape(
                        "WAL shard count exceeds payload size".into(),
                    ));
                }
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    let shard = r.u32().map_err(codec_err)?;
                    let manifest = r.byte_vec().map_err(codec_err)?;
                    let seg_count = r.u32().map_err(codec_err)? as usize;
                    if seg_count > r.remaining() / 16 {
                        return Err(WireError::Shape(
                            "WAL segment count exceeds payload size".into(),
                        ));
                    }
                    let mut segments = Vec::with_capacity(seg_count);
                    for _ in 0..seg_count {
                        segments.push(SegmentInfo {
                            id: r.u64().map_err(codec_err)?,
                            len: r.u64().map_err(codec_err)?,
                        });
                    }
                    shards.push(ShardSegments {
                        shard,
                        manifest,
                        segments,
                    });
                }
                BrokerResponse::WalList { epoch, shards }
            }
            bop::R_WAL_CHUNK => BrokerResponse::WalChunk {
                prefix_ok: r.u8().map_err(codec_err)? != 0,
                bytes: r.byte_vec().map_err(codec_err)?,
            },
            bop::R_HEARTBEAT => BrokerResponse::Heartbeat {
                node_id: r.u64().map_err(codec_err)?,
            },
            other => {
                return Err(WireError::Shape(format!(
                    "unknown binary broker response opcode 0x{other:02X}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(WireError::Shape(format!(
                "binary broker response has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_frame(buf: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(buf.len(), 4 + len, "exactly one frame");
        &buf[4..]
    }

    #[test]
    fn broker_requests_round_trip() {
        let cases = [
            BrokerRequest::Hello { node_id: 3 },
            BrokerRequest::Forward(SubscriptionDto {
                id: 42,
                ranges: vec![(0, 9), (-5, 5)],
            }),
            BrokerRequest::Retract(42),
            BrokerRequest::Publish(PublicationDto {
                values: vec![3, -4],
            }),
            BrokerRequest::WalList,
            BrokerRequest::WalFetch {
                shard: 1,
                segment: 7,
                offset: 4096,
                max_len: 65536,
                prefix_crc: 0xDEAD_BEEF,
            },
            BrokerRequest::Heartbeat { node_id: 9 },
        ];
        for case in cases {
            let mut buf = Vec::new();
            case.encode_binary(&mut buf);
            let decoded = BrokerRequest::decode_binary(strip_frame(&buf)).expect("decode");
            assert_eq!(decoded, case);
        }
    }

    #[test]
    fn broker_responses_round_trip() {
        let cases = [
            BrokerResponse::Hello {
                node_id: 2,
                shards: 4,
            },
            BrokerResponse::Forwarded,
            BrokerResponse::Retracted(true),
            BrokerResponse::Matched(vec![1, 2, 3]),
            BrokerResponse::WalList {
                epoch: 0x1234_5678_9ABC_DEF0,
                shards: vec![ShardSegments {
                    shard: 0,
                    manifest: vec![0xAB, 0xCD],
                    segments: vec![
                        SegmentInfo { id: 0, len: 128 },
                        SegmentInfo { id: 1, len: 64 },
                    ],
                }],
            },
            BrokerResponse::WalChunk {
                prefix_ok: true,
                bytes: vec![9, 8, 7],
            },
            BrokerResponse::WalChunk {
                prefix_ok: false,
                bytes: Vec::new(),
            },
            BrokerResponse::Heartbeat { node_id: 2 },
        ];
        for case in cases {
            let mut buf = Vec::new();
            case.encode_binary(&mut buf);
            let decoded = BrokerResponse::decode_binary(strip_frame(&buf)).expect("decode");
            assert_eq!(decoded, case);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        BrokerRequest::Retract(1).encode_binary(&mut buf);
        let mut payload = strip_frame(&buf).to_vec();
        payload.push(0);
        assert!(BrokerRequest::decode_binary(&payload).is_err());

        let mut buf = Vec::new();
        BrokerResponse::Forwarded.encode_binary(&mut buf);
        let mut payload = strip_frame(&buf).to_vec();
        payload.push(0);
        assert!(BrokerResponse::decode_binary(&payload).is_err());
    }

    #[test]
    fn hostile_counts_cannot_trigger_huge_allocations() {
        // FORWARD claiming 2^31 ranges in a 12-byte payload.
        let mut payload = vec![bop::FORWARD];
        payload.extend_from_slice(&42u64.to_le_bytes());
        payload.extend_from_slice(&0x8000_0000u32.to_le_bytes());
        assert!(BrokerRequest::decode_binary(&payload).is_err());

        // WAL list claiming 2^31 shards.
        let mut payload = vec![bop::R_WAL_LIST];
        payload.extend_from_slice(&7u64.to_le_bytes()); // epoch
        payload.extend_from_slice(&0x8000_0000u32.to_le_bytes());
        assert!(BrokerResponse::decode_binary(&payload).is_err());
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert!(BrokerRequest::decode_binary(&[0x7F]).is_err());
        assert!(BrokerResponse::decode_binary(&[0x7F]).is_err());
        assert!(BrokerRequest::is_broker_opcode(bop::HELLO));
        assert!(BrokerRequest::is_broker_opcode(bop::HEARTBEAT));
        assert!(!BrokerRequest::is_broker_opcode(0x01));
        assert!(!BrokerRequest::is_broker_opcode(0x90));
    }
}
